//===- Flatten.cpp - reg2mem: QCircuit IR to a flat circuit (§7) ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "qcirc/Flatten.h"

#include <map>

using namespace asdf;

namespace {

/// A classical bit reference: either a measured cbit or a constant.
struct CbitRef {
  bool IsConst = false;
  bool ConstVal = false;
  int Cbit = -1;
};

class Flattener {
public:
  Flattener(DiagnosticEngine &Diags) : Diags(Diags) {}

  std::optional<Circuit> run(IRFunction &F);

private:
  DiagnosticEngine &Diags;
  Circuit C;
  std::map<Value *, unsigned> QubitIdx;
  std::map<Value *, std::vector<unsigned>> BundleIdx;
  std::map<Value *, CbitRef> BitIdx;
  std::map<Value *, std::vector<CbitRef>> BitBundleIdx;
  std::vector<unsigned> FreePool;
  /// Active classical condition (from enclosing if regions).
  int CondBit = -1;
  bool CondVal = true;

  unsigned allocQubit() {
    if (!FreePool.empty()) {
      unsigned Q = FreePool.back();
      FreePool.pop_back();
      return Q;
    }
    return C.NumQubits++;
  }

  bool fail(const std::string &Msg) {
    Diags.error(SourceLoc(), "flatten: " + Msg);
    return false;
  }

  void emit(CircuitInstr I) {
    I.CondBit = CondBit;
    I.CondVal = CondVal;
    C.append(std::move(I));
  }

  bool flattenBlock(Block &B);
  bool flattenOp(Op *O);
};

bool Flattener::flattenOp(Op *O) {
  switch (O->Kind) {
  case OpKind::QAlloc:
    QubitIdx[O->result(0)] = allocQubit();
    return true;
  case OpKind::QFree: {
    unsigned Q = QubitIdx.at(O->operand(0));
    emit(CircuitInstr::reset(Q));
    FreePool.push_back(Q);
    return true;
  }
  case OpKind::QFreeZ:
    FreePool.push_back(QubitIdx.at(O->operand(0)));
    return true;
  case OpKind::Gate: {
    std::vector<unsigned> Controls, Targets;
    for (unsigned I = 0; I < O->numOperands(); ++I) {
      unsigned Q = QubitIdx.at(O->operand(I));
      (I < O->NumControls ? Controls : Targets).push_back(Q);
      QubitIdx[O->result(I)] = Q;
    }
    emit(CircuitInstr::gate(O->GateAttr, std::move(Controls),
                            std::move(Targets), O->ParamAttr));
    return true;
  }
  case OpKind::Measure1: {
    unsigned Q = QubitIdx.at(O->operand(0));
    unsigned Bit = C.NumBits++;
    emit(CircuitInstr::measure(Q, Bit));
    QubitIdx[O->result(0)] = Q;
    CbitRef Ref;
    Ref.Cbit = static_cast<int>(Bit);
    BitIdx[O->result(1)] = Ref;
    return true;
  }
  case OpKind::QbPack: {
    std::vector<unsigned> Qs;
    for (Value *V : O->Operands)
      Qs.push_back(QubitIdx.at(V));
    BundleIdx[O->result(0)] = std::move(Qs);
    return true;
  }
  case OpKind::QbUnpack: {
    const std::vector<unsigned> &Qs = BundleIdx.at(O->operand(0));
    for (unsigned I = 0; I < O->numResults(); ++I)
      QubitIdx[O->result(I)] = Qs[I];
    return true;
  }
  case OpKind::BitPack: {
    std::vector<CbitRef> Bits;
    for (Value *V : O->Operands)
      Bits.push_back(BitIdx.at(V));
    BitBundleIdx[O->result(0)] = std::move(Bits);
    return true;
  }
  case OpKind::BitUnpack: {
    const std::vector<CbitRef> &Bits = BitBundleIdx.at(O->operand(0));
    for (unsigned I = 0; I < O->numResults(); ++I)
      BitIdx[O->result(I)] = Bits[I];
    return true;
  }
  case OpKind::BitConst: {
    std::vector<CbitRef> Bits;
    for (bool Bit : O->BitsAttr) {
      CbitRef Ref;
      Ref.IsConst = true;
      Ref.ConstVal = Bit;
      Bits.push_back(Ref);
    }
    BitBundleIdx[O->result(0)] = std::move(Bits);
    return true;
  }
  case OpKind::ConstF:
    return true; // Gate params are attributes; nothing to do.
  case OpKind::If: {
    CbitRef Cond = BitIdx.at(O->operand(0));
    if (Cond.IsConst) {
      // Statically known condition: flatten only the taken branch.
      Block &Taken = *O->Regions[Cond.ConstVal ? 0 : 1];
      if (!flattenBlock(Taken))
        return false;
      Op *Yield = Taken.terminator();
      for (unsigned I = 0; I < O->numResults(); ++I) {
        Value *Y = Yield->operand(I);
        if (Y->Ty.isQubit())
          QubitIdx[O->result(I)] = QubitIdx.at(Y);
        else if (Y->Ty.isQBundle())
          BundleIdx[O->result(I)] = BundleIdx.at(Y);
      }
      return true;
    }
    if (CondBit >= 0)
      return fail("nested classical conditions are not supported");
    // Flatten both regions under opposite conditions; their yields must
    // land on identical physical registers.
    for (unsigned RI = 0; RI < 2; ++RI) {
      CondBit = Cond.Cbit;
      CondVal = RI == 0;
      if (!flattenBlock(*O->Regions[RI]))
        return false;
      CondBit = -1;
      CondVal = true;
    }
    Op *Y0 = O->Regions[0]->terminator();
    Op *Y1 = O->Regions[1]->terminator();
    for (unsigned I = 0; I < O->numResults(); ++I) {
      Value *A = Y0->operand(I);
      Value *B = Y1->operand(I);
      if (A->Ty.isQubit()) {
        if (QubitIdx.at(A) != QubitIdx.at(B))
          return fail("if branches disagree on qubit registers");
        QubitIdx[O->result(I)] = QubitIdx.at(A);
      } else if (A->Ty.isQBundle()) {
        if (BundleIdx.at(A) != BundleIdx.at(B))
          return fail("if branches disagree on qubit registers");
        BundleIdx[O->result(I)] = BundleIdx.at(A);
      } else {
        return fail("unsupported if result kind");
      }
    }
    return true;
  }
  case OpKind::Ret: {
    for (Value *V : O->Operands) {
      if (V->Ty.isQBundle()) {
        const std::vector<unsigned> &Qs = BundleIdx.at(V);
        C.OutputQubits.insert(C.OutputQubits.end(), Qs.begin(), Qs.end());
      } else if (V->Ty.isQubit()) {
        C.OutputQubits.push_back(QubitIdx.at(V));
      } else if (V->Ty.isBitBundle()) {
        for (const CbitRef &R : BitBundleIdx.at(V))
          C.OutputBits.push_back(R.IsConst ? (R.ConstVal ? -2 : -3)
                                           : R.Cbit);
      }
    }
    return true;
  }
  case OpKind::Yield:
    return true;
  case OpKind::Call:
  case OpKind::CallIndirect:
  case OpKind::CallableCreate:
  case OpKind::CallableAdj:
  case OpKind::CallableCtl:
  case OpKind::CallableInvoke:
    return fail("call ops remain; OpenQASM 3 generation depends on inlining "
                "succeeding (§7)");
  default:
    return fail(std::string("unexpected op '") + opKindName(O->Kind) +
                "' after QCircuit conversion");
  }
}

bool Flattener::flattenBlock(Block &B) {
  for (auto &O : B.Ops)
    if (!flattenOp(O.get()))
      return false;
  return true;
}

std::optional<Circuit> Flattener::run(IRFunction &F) {
  // Entry arguments: allocate registers for any qubit inputs.
  for (Value &Arg : F.Body.Args) {
    if (Arg.Ty.isQBundle()) {
      std::vector<unsigned> Qs;
      for (unsigned I = 0; I < Arg.Ty.dim(); ++I)
        Qs.push_back(allocQubit());
      BundleIdx[&Arg] = std::move(Qs);
    } else if (Arg.Ty.isQubit()) {
      QubitIdx[&Arg] = allocQubit();
    } else if (Arg.Ty.isBitBundle()) {
      std::vector<CbitRef> Bits(Arg.Ty.dim());
      for (CbitRef &R : Bits) {
        R.IsConst = true;
        R.ConstVal = false;
      }
      BitBundleIdx[&Arg] = std::move(Bits);
    }
  }
  if (!flattenBlock(F.Body))
    return std::nullopt;
  return std::move(C);
}

} // namespace

std::optional<Circuit> asdf::flattenToCircuit(Module &M,
                                              const std::string &Entry,
                                              DiagnosticEngine &Diags) {
  IRFunction *F = M.lookup(Entry);
  if (!F) {
    Diags.error(SourceLoc(), "no entry function '" + Entry + "'");
    return std::nullopt;
  }
  Flattener FL(Diags);
  std::optional<Circuit> C = FL.run(*F);
  if (C)
    C->ParamNames = M.FloatParams;
  return C;
}
