//===- Peephole.cpp - QCircuit IR optimizations (§6.5) --------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "qcirc/Peephole.h"

#include "synth/GateEmitter.h"

#include <array>
#include <cmath>
#include <functional>

using namespace asdf;

namespace {

bool isParamGate(GateKind K) {
  return K == GateKind::P || K == GateKind::RX || K == GateKind::RY ||
         K == GateKind::RZ;
}

/// True if applying \p B right after \p A yields the identity.
bool gatesCancel(const Op *A, const Op *B) {
  if (A->Kind != OpKind::Gate || B->Kind != OpKind::Gate)
    return false;
  if (A->NumControls != B->NumControls ||
      A->numOperands() != B->numOperands())
    return false;
  // B's operand i must be A's result i (same wires, same roles).
  for (unsigned I = 0; I < B->numOperands(); ++I)
    if (B->operand(I) != const_cast<Op *>(A)->result(I))
      return false;
  GateKind KA = A->GateAttr, KB = B->GateAttr;
  if (isHermitianGate(KA))
    return KA == KB;
  if ((KA == GateKind::S && KB == GateKind::Sdg) ||
      (KA == GateKind::Sdg && KB == GateKind::S) ||
      (KA == GateKind::T && KB == GateKind::Tdg) ||
      (KA == GateKind::Tdg && KB == GateKind::T))
    return true;
  if (isParamGate(KA) && KA == KB) {
    const GateParam &PA = A->ParamAttr, &PB = B->ParamAttr;
    if (PA.isSymbolic() != PB.isSymbolic())
      return false;
    if (PA.isSymbolic())
      // Symbolic angles cancel only when they sum to zero for *every*
      // binding: same parameter, exactly opposite scales, near-zero
      // constant term.
      return PA.Index == PB.Index && PA.Scale + PB.Scale == 0.0 &&
             std::abs(PA.Offset + PB.Offset) < 1e-12;
    return std::abs(PA.concrete() + PB.concrete()) < 1e-12;
  }
  return false;
}

/// Erases the pair (A, B) where B consumes all of A's results, rewiring
/// B's results to A's operands.
void erasePair(Op *A, Op *B) {
  for (unsigned I = 0; I < B->numResults(); ++I)
    B->result(I)->replaceAllUsesWith(A->operand(I));
  B->erase();
  A->erase();
}

/// Matches an uncontrolled single-target gate of kind \p K.
bool isPlainGate(const Op *O, GateKind K) {
  return O->Kind == OpKind::Gate && O->GateAttr == K &&
         O->NumControls == 0 && O->numOperands() == 1;
}

/// One peephole step over a block; returns true if a rewrite fired.
bool peepholeBlockOnce(Block &B) {
  for (auto &OPtr : B.Ops) {
    Op *O = OPtr.get();
    // Recurse into regions first.
    for (auto &R : O->Regions)
      if (R && peepholeBlockOnce(*R))
        return true;
    if (O->Kind != OpKind::Gate)
      continue;

    // (1) Adjacent inverse pairs: find a user of result 0 that is a gate
    // consuming all results in order.
    Value *R0 = O->result(0);
    if (R0->hasOneUse()) {
      Op *Next = R0->singleUser();
      if (gatesCancel(O, Next)) {
        erasePair(O, Next);
        return true;
      }
    }

    // (2) H X H -> Z and H Z H -> X.
    if (isPlainGate(O, GateKind::H) && O->result(0)->hasOneUse()) {
      Op *Mid = O->result(0)->singleUser();
      if ((isPlainGate(Mid, GateKind::X) || isPlainGate(Mid, GateKind::Z)) &&
          Mid->result(0)->hasOneUse()) {
        Op *Last = Mid->result(0)->singleUser();
        if (isPlainGate(Last, GateKind::H)) {
          GateKind NewKind = Mid->GateAttr == GateKind::X ? GateKind::Z
                                                          : GateKind::X;
          Builder Bld(O->ParentBlock, O);
          std::vector<Value *> New =
              Bld.gate(NewKind, {}, {O->operand(0)});
          Last->result(0)->replaceAllUsesWith(New.front());
          Last->erase();
          Mid->erase();
          O->erase();
          return true;
        }
      }
    }

    // (3) Relaxed peephole (Fig. 10): multi-controlled X whose target is a
    // freshly prepared |-> that is immediately unprepared and freed becomes
    // a multi-controlled Z on the controls.
    if (O->GateAttr == GateKind::X && O->NumControls >= 1) {
      unsigned TargetIdx = O->NumControls;
      Op *HPrep = O->operand(TargetIdx)->DefOp;
      if (HPrep && isPlainGate(HPrep, GateKind::H)) {
        Op *XPrep = HPrep->operand(0)->DefOp;
        if (XPrep && isPlainGate(XPrep, GateKind::X)) {
          Op *Alloc = XPrep->operand(0)->DefOp;
          Value *TOut = O->result(TargetIdx);
          if (Alloc && Alloc->Kind == OpKind::QAlloc && TOut->hasOneUse()) {
            Op *HPost = TOut->singleUser();
            if (isPlainGate(HPost, GateKind::H) &&
                HPost->result(0)->hasOneUse()) {
              Op *XPost = HPost->result(0)->singleUser();
              if (isPlainGate(XPost, GateKind::X) &&
                  XPost->result(0)->hasOneUse()) {
                Op *Free = XPost->result(0)->singleUser();
                if (Free->Kind == OpKind::QFreeZ) {
                  // Rebuild as MCZ: the last control becomes the target.
                  std::vector<Value *> Controls, Targets;
                  for (unsigned I = 0; I + 1 < O->NumControls; ++I)
                    Controls.push_back(O->operand(I));
                  Targets.push_back(O->operand(O->NumControls - 1));
                  Builder Bld(O->ParentBlock, O);
                  std::vector<Value *> New =
                      Bld.gate(GateKind::Z, Controls, Targets);
                  for (unsigned I = 0; I < O->NumControls; ++I)
                    O->result(I)->replaceAllUsesWith(New[I]);
                  Free->erase();
                  XPost->erase();
                  HPost->erase();
                  O->erase();
                  HPrep->erase();
                  XPrep->erase();
                  Alloc->erase();
                  return true;
                }
              }
            }
          }
        }
      }
    }
  }
  return false;
}

} // namespace

bool asdf::peepholeOptimize(Module &M) {
  bool Changed = false;
  bool Fired = true;
  while (Fired) {
    Fired = false;
    for (auto &F : M.Functions)
      if (peepholeBlockOnce(F->Body)) {
        Fired = true;
        Changed = true;
        break;
      }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Multi-control decomposition (§6.5)
//===----------------------------------------------------------------------===//

namespace {

/// Emits a textbook 7-T Toffoli (CCX) on wires (C1, C2, T).
void emitCCX(GateEmitter &E, unsigned C1, unsigned C2, unsigned T) {
  E.gate(GateKind::H, {}, {T});
  E.gate(GateKind::X, {C2}, {T});
  E.gate(GateKind::Tdg, {}, {T});
  E.gate(GateKind::X, {C1}, {T});
  E.gate(GateKind::T, {}, {T});
  E.gate(GateKind::X, {C2}, {T});
  E.gate(GateKind::Tdg, {}, {T});
  E.gate(GateKind::X, {C1}, {T});
  E.gate(GateKind::T, {}, {C2});
  E.gate(GateKind::T, {}, {T});
  E.gate(GateKind::H, {}, {T});
  E.gate(GateKind::X, {C1}, {C2});
  E.gate(GateKind::T, {}, {C1});
  E.gate(GateKind::Tdg, {}, {C2});
  E.gate(GateKind::X, {C1}, {C2});
}

/// Emits the Margolus relative-phase Toffoli (RCCX, 4 T gates); Inverse
/// replays the adjoint. Safe when compute/uncompute pairs enclose uses, as
/// in Selinger's controlled-iX scheme.
void emitRCCX(GateEmitter &E, unsigned C1, unsigned C2, unsigned T,
              bool Inverse) {
  if (!Inverse) {
    E.gate(GateKind::H, {}, {T});
    E.gate(GateKind::T, {}, {T});
    E.gate(GateKind::X, {C2}, {T});
    E.gate(GateKind::Tdg, {}, {T});
    E.gate(GateKind::X, {C1}, {T});
    E.gate(GateKind::T, {}, {T});
    E.gate(GateKind::X, {C2}, {T});
    E.gate(GateKind::Tdg, {}, {T});
    E.gate(GateKind::H, {}, {T});
  } else {
    E.gate(GateKind::H, {}, {T});
    E.gate(GateKind::T, {}, {T});
    E.gate(GateKind::X, {C2}, {T});
    E.gate(GateKind::Tdg, {}, {T});
    E.gate(GateKind::X, {C1}, {T});
    E.gate(GateKind::T, {}, {T});
    E.gate(GateKind::X, {C2}, {T});
    E.gate(GateKind::Tdg, {}, {T});
    E.gate(GateKind::H, {}, {T});
  }
}

/// Emits an n-controlled X via a compute/uncompute AND-ancilla chain.
/// Selinger mode uses RCCX blocks (relative phases cancel); naive mode uses
/// full Toffolis everywhere.
void emitMCX(GateEmitter &E, const std::vector<unsigned> &Controls,
             unsigned Target, McDecompose Mode) {
  unsigned N = Controls.size();
  if (N == 0) {
    E.gate(GateKind::X, {}, {Target});
    return;
  }
  if (N == 1) {
    E.gate(GateKind::X, {Controls[0]}, {Target});
    return;
  }
  if (N == 2) {
    emitCCX(E, Controls[0], Controls[1], Target);
    return;
  }
  // Chain: a1 = c1 & c2; a_i = a_{i-1} & c_{i+1}; final CCX onto target.
  std::vector<unsigned> Ancillas;
  std::vector<std::array<unsigned, 3>> ChainSteps;
  unsigned Prev = Controls[0];
  for (unsigned I = 1; I + 1 < N; ++I) {
    unsigned Anc = E.allocAncilla();
    Ancillas.push_back(Anc);
    ChainSteps.push_back({Prev, Controls[I], Anc});
    if (Mode == McDecompose::Selinger)
      emitRCCX(E, Prev, Controls[I], Anc, /*Inverse=*/false);
    else
      emitCCX(E, Prev, Controls[I], Anc);
    Prev = Anc;
  }
  emitCCX(E, Prev, Controls[N - 1], Target);
  for (auto It = ChainSteps.rbegin(); It != ChainSteps.rend(); ++It) {
    if (Mode == McDecompose::Selinger)
      emitRCCX(E, (*It)[0], (*It)[1], (*It)[2], /*Inverse=*/true);
    else
      emitCCX(E, (*It)[0], (*It)[1], (*It)[2]);
  }
  for (auto It = Ancillas.rbegin(); It != Ancillas.rend(); ++It)
    E.freeAncillaZ(*It);
}

/// Reduces an n-controlled U (n >= 2) to a single-controlled U by
/// computing the AND of the controls into one ancilla.
void withControlAncilla(GateEmitter &E, const std::vector<unsigned> &Controls,
                        McDecompose Mode,
                        const std::function<void(unsigned)> &Fn) {
  unsigned Anc = E.allocAncilla();
  emitMCX(E, Controls, Anc, Mode);
  Fn(Anc);
  emitMCX(E, Controls, Anc, Mode);
  E.freeAncillaZ(Anc);
}

/// Decomposes one multi-controlled gate op in place; returns true if it
/// rewrote something.
bool decomposeOp(Op *O, McDecompose Mode) {
  if (O->Kind != OpKind::Gate)
    return false;
  unsigned NC = O->NumControls;
  GateKind K = O->GateAttr;
  bool NeedsWork = false;
  if (K == GateKind::Swap)
    NeedsWork = NC >= 1;
  else if (K == GateKind::X || K == GateKind::Z)
    NeedsWork = NC >= 2;
  else if (K == GateKind::P || K == GateKind::H || K == GateKind::Y ||
           K == GateKind::S || K == GateKind::Sdg || K == GateKind::T ||
           K == GateKind::Tdg || K == GateKind::RX || K == GateKind::RY ||
           K == GateKind::RZ)
    NeedsWork = NC >= 2;
  if (!NeedsWork)
    return false;

  Builder B(O->ParentBlock, O);
  std::vector<Value *> Operand;
  for (Value *V : O->Operands)
    Operand.push_back(V);
  GateEmitter E(B, Operand);
  std::vector<unsigned> Controls, Targets;
  for (unsigned I = 0; I < O->numOperands(); ++I)
    (I < NC ? Controls : Targets).push_back(I);

  if (K == GateKind::Swap) {
    // ctl-SWAP(a, b) = CX(b,a) MCX(ctls+a -> b) CX(b,a).
    unsigned A = Targets[0], T = Targets[1];
    E.gate(GateKind::X, {T}, {A});
    std::vector<unsigned> C2 = Controls;
    C2.push_back(A);
    emitMCX(E, C2, T, Mode);
    E.gate(GateKind::X, {T}, {A});
  } else if (K == GateKind::X) {
    emitMCX(E, Controls, Targets[0], Mode);
  } else if (K == GateKind::Z) {
    // MCZ = H-conjugated MCX.
    E.gate(GateKind::H, {}, {Targets[0]});
    emitMCX(E, Controls, Targets[0], Mode);
    E.gate(GateKind::H, {}, {Targets[0]});
  } else {
    // Generic controlled-U: collapse controls into one ancilla.
    GateKind Kind = K;
    GateParam Param = O->ParamAttr;
    unsigned T = Targets[0];
    withControlAncilla(E, Controls, Mode, [&](unsigned Anc) {
      E.gate(Kind, {Anc}, {T}, Param);
    });
  }

  for (unsigned I = 0; I < O->numResults(); ++I)
    O->result(I)->replaceAllUsesWith(E.wire(I));
  O->erase();
  return true;
}

void decomposeBlock(Block &B, McDecompose Mode) {
  std::vector<Op *> Ops;
  for (auto &O : B.Ops)
    Ops.push_back(O.get());
  for (Op *O : Ops) {
    for (auto &R : O->Regions)
      if (R)
        decomposeBlock(*R, Mode);
    decomposeOp(O, Mode);
  }
}

} // namespace

void asdf::decomposeMultiControls(Module &M, McDecompose Mode) {
  for (auto &F : M.Functions)
    decomposeBlock(F.get()->Body, Mode);
}
