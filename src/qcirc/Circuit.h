//===- Circuit.h - Flat quantum circuit representation (§7) ---------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat, imperative circuit produced by the reg2mem-style conversion of
/// QCircuit IR (§7): SSA qubit values become register indices. This is the
/// common currency of the backends (OpenQASM 3, QIR Base Profile), the
/// state-vector simulator, the resource estimator, and the baseline
/// circuit-oriented compilers.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_QCIRC_CIRCUIT_H
#define ASDF_QCIRC_CIRCUIT_H

#include "ir/IR.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asdf {

/// One flat circuit instruction.
struct CircuitInstr {
  enum class Kind {
    Gate,    ///< Apply GateAttr with controls/targets.
    Measure, ///< Measure Targets[0] into classical bit Cbit.
    Reset,   ///< Reset Targets[0] to |0>.
  };

  Kind TheKind = Kind::Gate;
  GateKind Gate = GateKind::X;
  /// Concrete gate angle in radians. Meaningless when ParamIdx >= 0 (the
  /// instruction is symbolic and must be bound before execution).
  double Param = 0.0;
  /// Symbolic angle: index into Circuit::ParamNames, or -1 for concrete.
  /// When set, the bound angle is (ParamScale * value + ParamOfs) degrees,
  /// converted to radians — see GateParam.
  int ParamIdx = -1;
  double ParamScale = 1.0;
  double ParamOfs = 0.0;
  std::vector<unsigned> Controls;
  std::vector<unsigned> Targets;
  int Cbit = -1; ///< Measure destination.
  /// Classical condition: execute only if classical bit CondBit == CondVal
  /// (teleportation-style feed-forward). -1 means unconditional.
  int CondBit = -1;
  bool CondVal = true;

  bool isSymbolic() const { return ParamIdx >= 0; }

  /// The concrete radians angle under parameter values \p Vals (degrees).
  double boundParam(const std::vector<double> &Vals) const {
    if (ParamIdx < 0)
      return Param;
    return degreesToRadians(ParamScale * Vals[ParamIdx] + ParamOfs);
  }

  static CircuitInstr gate(GateKind G, std::vector<unsigned> Controls,
                           std::vector<unsigned> Targets,
                           GateParam Param = GateParam()) {
    CircuitInstr I;
    I.TheKind = Kind::Gate;
    I.Gate = G;
    I.Controls = std::move(Controls);
    I.Targets = std::move(Targets);
    if (Param.isSymbolic()) {
      I.ParamIdx = Param.Index;
      I.ParamScale = Param.Scale;
      I.ParamOfs = Param.Offset;
    } else {
      I.Param = Param.concrete();
    }
    return I;
  }
  static CircuitInstr measure(unsigned Qubit, unsigned Cbit) {
    CircuitInstr I;
    I.TheKind = Kind::Measure;
    I.Targets = {Qubit};
    I.Cbit = static_cast<int>(Cbit);
    return I;
  }
  static CircuitInstr reset(unsigned Qubit) {
    CircuitInstr I;
    I.TheKind = Kind::Reset;
    I.Targets = {Qubit};
    return I;
  }

  std::string str() const;
};

/// Aggregate gate statistics used by the evaluation (§8.3).
struct CircuitStats {
  uint64_t Total = 0;
  uint64_t TCount = 0;        ///< T and Tdg gates.
  uint64_t CxCount = 0;       ///< Singly-controlled X.
  uint64_t CliffordCount = 0; ///< Non-T gates.
  uint64_t MeasureCount = 0;
  uint64_t MultiControlled = 0; ///< Gates with >= 2 controls (undecomposed).
  uint64_t TwoQubitCount = 0;   ///< Gates touching >= 2 qubits.
  uint64_t Depth = 0;           ///< Gate depth (qubit-conflict layering).
  uint64_t TDepth = 0;          ///< T-layer depth.
};

/// A flat quantum circuit over indexed qubits and classical bits.
struct Circuit {
  unsigned NumQubits = 0;
  unsigned NumBits = 0;
  std::vector<CircuitInstr> Instrs;
  /// Registers returned by the entry function (filled by flattening): qubit
  /// registers if it returns qubits, classical bits if it returns bits.
  std::vector<unsigned> OutputQubits;
  std::vector<int> OutputBits;
  /// Float-parameter names ($name placeholders) in declaration order;
  /// CircuitInstr::ParamIdx indexes here. Empty => fully concrete.
  std::vector<std::string> ParamNames;

  void append(CircuitInstr I) { Instrs.push_back(std::move(I)); }

  unsigned numParams() const { return ParamNames.size(); }
  bool isParametric() const { return !ParamNames.empty(); }

  /// Computes gate statistics; rotation-style gates (P/RX/RY/RZ with
  /// non-Clifford angles) are counted as T-equivalents per the standard
  /// resource-estimation convention (each costs ~one magic-state layer).
  CircuitStats stats() const;

  /// Maximum number of qubits simultaneously alive (== NumQubits here;
  /// provided for API symmetry with the estimator).
  unsigned width() const { return NumQubits; }

  std::string str() const;
};

/// Returns a fully concrete copy of \p C with every symbolic angle bound to
/// \p Vals (parameter values in degrees, one per ParamNames entry). The
/// result has empty ParamNames and bitwise-matches the circuit that a
/// recompile with the literals substituted would produce.
Circuit bindCircuit(const Circuit &C, const std::vector<double> &Vals);

} // namespace asdf

#endif // ASDF_QCIRC_CIRCUIT_H
