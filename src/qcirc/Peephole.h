//===- Peephole.h - QCircuit IR optimizations (§6.5) ----------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gate-level optimizations on the QCircuit dataflow DAG (§6.5):
///
///  - cancellation of adjacent inverse gate pairs (Hermitian gates, S/Sdg,
///    T/Tdg, P(t)/P(-t)) — e.g. the back-to-back controlled-Hs of Fig. 7;
///  - HXH -> Z and HZH -> X rewriting;
///  - the relaxed peephole of Liu, Bello, and Zhou (Fig. 10): a
///    multi-controlled X targeting a |-> ancilla becomes a multi-controlled
///    Z without the ancilla (crucial for f.sign oracles);
///  - Selinger-style decomposition of multi-controlled gates into
///    Clifford+T, or a naive Toffoli chain for comparison (§6.5 / §8.3).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_QCIRC_PEEPHOLE_H
#define ASDF_QCIRC_PEEPHOLE_H

#include "ir/IR.h"

namespace asdf {

/// Runs cancellation/HXH/relaxed-peephole rewrites to fixpoint.
/// Returns true if anything changed.
bool peepholeOptimize(Module &M);

/// How multi-controlled gates are decomposed to Clifford+T.
enum class McDecompose {
  Selinger, ///< Relative-phase (RCCX) ancilla chain, ~8 T per control.
  Naive,    ///< Full-Toffoli V-chain, ~14 T per control.
};

/// Decomposes every gate with >= 2 controls (and controlled SWAPs) into
/// single- and zero-control gates plus ancillas.
void decomposeMultiControls(Module &M, McDecompose Mode);

} // namespace asdf

#endif // ASDF_QCIRC_PEEPHOLE_H
