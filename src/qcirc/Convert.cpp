//===- Convert.cpp - Qwerty IR to QCircuit IR conversion (§6.1) -----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "qcirc/Convert.h"

#include "classical/LogicNetwork.h"
#include "classical/ReversibleSynth.h"
#include "synth/BasisSynth.h"

#include <functional>
#include <map>

using namespace asdf;

namespace {

class Converter {
public:
  Converter(Module &M, const Program &Prog, DiagnosticEngine &Diags)
      : M(M), Prog(Prog), Diags(Diags) {}

  bool run();

private:
  Module &M;
  const Program &Prog;
  DiagnosticEngine &Diags;
  std::map<std::string, LogicNetwork> NetworkCache;

  bool convertBlock(Block &B);
  bool convertOp(Op *O);
  const LogicNetwork *networkFor(const std::string &Name);

  bool fail(const std::string &Msg) {
    Diags.error(SourceLoc(), Msg);
    return false;
  }
};

const LogicNetwork *Converter::networkFor(const std::string &Name) {
  auto It = NetworkCache.find(Name);
  if (It != NetworkCache.end())
    return &It->second;
  FunctionDef *F = Prog.lookup(Name);
  if (!F || !F->isClassical()) {
    Diags.error(SourceLoc(),
                "embed_classical references unknown classical function '" +
                    Name + "'");
    return nullptr;
  }
  std::optional<LogicNetwork> Net = buildLogicNetwork(*F, Diags);
  if (!Net)
    return nullptr;
  auto [NewIt, Inserted] = NetworkCache.emplace(Name, std::move(*Net));
  (void)Inserted;
  return &NewIt->second;
}

/// Sets up predicate controls for an embedded oracle whose leading
/// predicate qubits follow basis \p Pred. Non-std predicate elements are
/// conjugated into std by standardization gates, which \p Teardown undoes.
/// Only separable predicate elements are supported here; fully general
/// predicates flow through qbtrans synthesis instead.
bool setupPredControls(GateEmitter &E, const Basis &Pred,
                       std::vector<ControlSpec> &Controls,
                       std::vector<std::function<void()>> &Teardown) {
  unsigned Offset = 0;
  for (const BasisElement &El : Pred.elements()) {
    if (El.isBuiltin()) {
      // A fully-spanning builtin predicate is an identity predicate; it
      // should have been canonicalized away, but is harmless: no controls.
      Offset += El.dim();
      continue;
    }
    const BasisLiteral &Lit = El.literalValue();
    unsigned Off = Offset;
    if (Lit.Prim != PrimitiveBasis::Std) {
      PrimitiveBasis Prim = Lit.Prim;
      unsigned Dim = Lit.Dim;
      emitStandardizePrim(E, Prim, Off, Dim, /*ToStd=*/true, {});
      Teardown.push_back([&E, Prim, Off, Dim] {
        emitStandardizePrim(E, Prim, Off, Dim, /*ToStd=*/false, {});
      });
    }
    if (Lit.Vectors.size() == 1) {
      uint64_t Bits = Lit.Vectors.front().Eigenbits;
      for (unsigned I = 0; I < Lit.Dim; ++I)
        Controls.push_back(ControlSpec(Off + I, !bitAt(Bits, Lit.Dim, I)));
    } else {
      // Span-membership indicator ancilla (orthogonal vectors: XOR is OR).
      unsigned Anc = E.allocAncilla();
      for (const BasisVector &V : Lit.Vectors) {
        std::vector<ControlSpec> C;
        for (unsigned I = 0; I < Lit.Dim; ++I)
          C.push_back(ControlSpec(Off + I, !bitAt(V.Eigenbits, Lit.Dim, I)));
        E.gateCtl(GateKind::X, C, {Anc});
      }
      Controls.push_back(ControlSpec(Anc));
      BasisLiteral LitCopy = Lit;
      Teardown.push_back([&E, LitCopy, Off, Anc] {
        for (const BasisVector &V : LitCopy.Vectors) {
          std::vector<ControlSpec> C;
          for (unsigned I = 0; I < LitCopy.Dim; ++I)
            C.push_back(
                ControlSpec(Off + I, !bitAt(V.Eigenbits, LitCopy.Dim, I)));
          E.gateCtl(GateKind::X, C, {Anc});
        }
        E.freeAncillaZ(Anc);
      });
    }
    Offset += El.dim();
  }
  return true;
}

bool Converter::convertOp(Op *O) {
  Builder B(O->ParentBlock, O);
  switch (O->Kind) {
  case OpKind::QbPrep: {
    // qalloc + X (minus eigenstate) + H/S (primitive basis) per qubit.
    std::vector<Value *> Qs;
    for (unsigned I = 0; I < O->DimAttr; ++I) {
      Value *Q = B.qalloc();
      if (O->MinusAttr)
        Q = B.gate(GateKind::X, {}, {Q}).front();
      switch (O->PrimAttr) {
      case PrimitiveBasis::Std:
        break;
      case PrimitiveBasis::Pm:
        Q = B.gate(GateKind::H, {}, {Q}).front();
        break;
      case PrimitiveBasis::Ij:
        Q = B.gate(GateKind::H, {}, {Q}).front();
        Q = B.gate(GateKind::S, {}, {Q}).front();
        break;
      case PrimitiveBasis::Fourier:
        return fail("cannot prepare a fourier eigenstate qubit-by-qubit");
      }
      Qs.push_back(Q);
    }
    Value *Bundle = B.qbpack(Qs);
    O->result(0)->replaceAllUsesWith(Bundle);
    O->erase();
    return true;
  }

  case OpKind::QbTrans: {
    std::vector<Value *> Qs = B.qbunpack(O->operand(0));
    GateEmitter E(B, Qs);
    if (!synthesizeTranslation(E, O->BasisAttr, O->BasisAttr2))
      return fail("basis translation synthesis failed for " +
                  O->BasisAttr.str() + " >> " + O->BasisAttr2.str());
    Value *Bundle = B.qbpack(E.take(Qs.size()));
    O->result(0)->replaceAllUsesWith(Bundle);
    O->erase();
    return true;
  }

  case OpKind::QbMeas: {
    // Destandardize each element to std, then measure every qubit.
    std::vector<Value *> Qs = B.qbunpack(O->operand(0));
    GateEmitter E(B, Qs);
    unsigned Offset = 0;
    for (const BasisElement &El : O->BasisAttr.elements()) {
      PrimitiveBasis Prim =
          El.isBuiltin() ? El.prim() : El.literalValue().Prim;
      emitStandardizePrim(E, Prim, Offset, El.dim(), /*ToStd=*/true, {});
      Offset += El.dim();
    }
    std::vector<Value *> Bits;
    for (unsigned I = 0; I < Qs.size(); ++I) {
      auto [NewQ, Bit] = B.measure1(E.wire(I));
      B.qfree(NewQ);
      Bits.push_back(Bit);
    }
    Value *Bundle = B.bitpack(Bits);
    O->result(0)->replaceAllUsesWith(Bundle);
    O->erase();
    return true;
  }

  case OpKind::QbDiscard:
  case OpKind::QbDiscardZ: {
    std::vector<Value *> Qs = B.qbunpack(O->operand(0));
    for (Value *Q : Qs) {
      if (O->Kind == OpKind::QbDiscard)
        B.qfree(Q);
      else
        B.qfreez(Q);
    }
    O->erase();
    return true;
  }

  case OpKind::QbId: {
    O->result(0)->replaceAllUsesWith(O->operand(0));
    O->erase();
    return true;
  }

  case OpKind::EmbedClassical: {
    const LogicNetwork *Net = networkFor(O->SymbolAttr);
    if (!Net)
      return false;
    unsigned PredDim = O->BasisAttr.dim();
    unsigned NIn = Net->numInputs();
    unsigned NOut = Net->numOutputs();
    unsigned Total = O->operand(0)->Ty.dim();
    bool IsXor = O->EmbedAttr == EmbedKind::Xor;
    if (Total != PredDim + NIn + (IsXor ? NOut : 0))
      return fail("embed_classical operand width mismatch for @" +
                  O->SymbolAttr);

    std::vector<Value *> Qs = B.qbunpack(O->operand(0));
    GateEmitter E(B, Qs);
    std::vector<ControlSpec> Preds;
    std::vector<std::function<void()>> Teardown;
    if (PredDim &&
        !setupPredControls(E, O->BasisAttr, Preds, Teardown))
      return false;
    std::vector<unsigned> In, Out;
    for (unsigned I = 0; I < NIn; ++I)
      In.push_back(PredDim + I);
    bool Ok;
    if (IsXor) {
      for (unsigned I = 0; I < NOut; ++I)
        Out.push_back(PredDim + NIn + I);
      Ok = emitXorEmbedding(E, *Net, In, Out, Preds);
    } else {
      Ok = emitSignEmbedding(E, *Net, In, Preds);
    }
    if (!Ok)
      return fail("oracle synthesis failed for @" + O->SymbolAttr);
    for (auto It = Teardown.rbegin(); It != Teardown.rend(); ++It)
      (*It)();
    Value *Bundle = B.qbpack(E.take(Total));
    O->result(0)->replaceAllUsesWith(Bundle);
    O->erase();
    return true;
  }

  case OpKind::Call: {
    // Direct calls survive as calls to (specialized) symbols; the
    // specializations were generated before conversion (§6.2).
    if (O->AdjFlag || !O->BasisAttr.empty()) {
      std::string Spec = O->SymbolAttr;
      if (O->AdjFlag)
        Spec += "__adj";
      unsigned Ctrls = O->BasisAttr.dim();
      if (Ctrls)
        Spec += "__ctl" + std::to_string(Ctrls);
      if (!M.lookup(Spec))
        return fail("missing specialization '" + Spec +
                    "'; run specialization generation or inlining");
      O->SymbolAttr = Spec;
      O->AdjFlag = false;
      O->BasisAttr = Basis();
    }
    return true;
  }

  case OpKind::FuncConst: {
    Builder Bld(O->ParentBlock, O);
    Value *C = Bld.callableCreate(O->SymbolAttr, O->result(0)->Ty);
    O->result(0)->replaceAllUsesWith(C);
    O->erase();
    return true;
  }
  case OpKind::FuncAdj: {
    Builder Bld(O->ParentBlock, O);
    Value *C = Bld.callableAdj(O->operand(0));
    O->result(0)->replaceAllUsesWith(C);
    O->erase();
    return true;
  }
  case OpKind::FuncPred: {
    Builder Bld(O->ParentBlock, O);
    Value *C = Bld.callableCtl(O->operand(0), O->BasisAttr);
    O->result(0)->replaceAllUsesWith(C);
    O->erase();
    return true;
  }
  case OpKind::CallIndirect: {
    Builder Bld(O->ParentBlock, O);
    std::vector<Value *> Args(O->Operands.begin() + 1, O->Operands.end());
    std::vector<Value *> Rs = Bld.callableInvoke(O->operand(0), Args);
    for (unsigned I = 0; I < O->numResults(); ++I)
      O->result(I)->replaceAllUsesWith(Rs[I]);
    O->erase();
    return true;
  }

  default:
    return true; // Already QCircuit-compatible (gates, bits, if, ret...).
  }
}

bool Converter::convertBlock(Block &B) {
  // Snapshot the op list: conversion inserts before and erases the current
  // op, so we walk a copy of pointers.
  std::vector<Op *> Ops;
  for (auto &O : B.Ops)
    Ops.push_back(O.get());
  for (Op *O : Ops) {
    for (auto &R : O->Regions)
      if (R && !convertBlock(*R))
        return false;
    if (!convertOp(O))
      return false;
  }
  return true;
}

bool Converter::run() {
  for (auto &F : M.Functions)
    if (!convertBlock(F->Body))
      return false;
  return true;
}

} // namespace

bool asdf::convertToQCircuit(Module &M, const Program &Prog,
                             DiagnosticEngine &Diags) {
  Converter C(M, Prog, Diags);
  return C.run();
}
