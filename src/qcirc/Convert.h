//===- Convert.h - Qwerty IR to QCircuit IR conversion (§6.1) -------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dialect conversion of §6: qbprep becomes qallocs plus H/S/X gates;
/// qbtrans invokes basis-translation synthesis (§6.3); qbmeas
/// destandardizes and measures; embed_classical synthesizes oracles from
/// logic networks (§6.4); function-value ops become QIR callable ops.
/// Conversion happens in place, per function.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_QCIRC_CONVERT_H
#define ASDF_QCIRC_CONVERT_H

#include "ast/AST.h"
#include "ir/IR.h"

namespace asdf {

/// Converts every function of \p M from Qwerty ops to QCircuit ops.
/// \p Prog supplies classical function definitions for embed_classical.
bool convertToQCircuit(Module &M, const Program &Prog,
                       DiagnosticEngine &Diags);

} // namespace asdf

#endif // ASDF_QCIRC_CONVERT_H
