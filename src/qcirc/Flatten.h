//===- Flatten.h - reg2mem: QCircuit IR to a flat circuit (§7) ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts a fully inlined QCircuit-IR function into a flat Circuit by
/// assigning register indices to SSA qubit values — the reg2mem process of
/// QSSA used for OpenQASM 3 export and the QIR Base Profile (§7). Freed
/// qubits return to a pool so ancillas reuse registers. scf.if regions
/// become classically-conditioned instructions (dynamic circuits).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_QCIRC_FLATTEN_H
#define ASDF_QCIRC_FLATTEN_H

#include "ir/IR.h"
#include "qcirc/Circuit.h"

#include <optional>
#include <string>

namespace asdf {

/// Flattens \p Entry of \p M. Fails (with diagnostics) if calls or callable
/// ops remain — OpenQASM 3 generation depends on inlining succeeding, as
/// the paper notes (§7).
std::optional<Circuit> flattenToCircuit(Module &M, const std::string &Entry,
                                        DiagnosticEngine &Diags);

} // namespace asdf

#endif // ASDF_QCIRC_FLATTEN_H
