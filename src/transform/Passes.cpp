//===- Passes.cpp - Qwerty IR transformation passes (§5.4, §6.2) ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Passes.h"

#include "transform/AdjointPred.h"

#include <functional>
#include <map>

using namespace asdf;

namespace {

/// Moves the contents of \p Src into \p Dst's body, converting a trailing
/// Yield into Ret and recording result types.
void moveBlockIntoFunction(Block &Src, IRFunction &Dst) {
  Dst.Body.Args = std::move(Src.Args);
  for (Value &A : Dst.Body.Args)
    A.DefBlock = &Dst.Body;
  Dst.Body.Ops = std::move(Src.Ops);
  for (auto &O : Dst.Body.Ops)
    O->ParentBlock = &Dst.Body;
  Op *Term = Dst.Body.terminator();
  assert(Term->Kind == OpKind::Yield || Term->Kind == OpKind::Ret);
  Dst.ResultTypes.clear();
  for (Value *V : Term->Operands)
    Dst.ResultTypes.push_back(V->Ty);
  if (Term->Kind == OpKind::Yield) {
    Builder B(&Dst.Body, Term);
    B.ret(Term->Operands);
    Term->erase();
  }
}

/// Clones \p Src into a fresh standalone block ending in Yield.
std::unique_ptr<Block> cloneToStandalone(const Block &Src) {
  auto NB = std::make_unique<Block>();
  ValueMap Map;
  for (Value &A : const_cast<Block &>(Src).Args)
    Map[&A] = NB->addArg(A.Ty);
  Builder B(NB.get());
  cloneBlockBody(B, const_cast<Block &>(Src), Map, /*SkipTerminator=*/true);
  Op *Term = const_cast<Block &>(Src).Ops.back().get();
  std::vector<Value *> Outs;
  for (Value *V : Term->Operands) {
    auto It = Map.find(V);
    Outs.push_back(It != Map.end() ? It->second : V);
  }
  B.yield(Outs);
  return NB;
}

/// Builds the (possibly adjointed/predicated) body for a callee (§6.2).
std::unique_ptr<Block> buildSpecializedBlock(const Block &Source, bool Adj,
                                             const Basis &Pred) {
  std::unique_ptr<Block> Work = cloneToStandalone(Source);
  if (Adj) {
    Work = adjointBlock(*Work);
    if (!Work)
      return nullptr;
  }
  if (!Pred.empty()) {
    Work = predicateBlock(*Work, Pred);
    if (!Work)
      return nullptr;
  }
  return Work;
}

/// All-ones std predicate basis of width \p N (QIR callable controls).
Basis allOnesPred(unsigned N) {
  assert(N > 0 && N <= MaxLiteralDim);
  uint64_t Ones = N == 64 ? ~uint64_t(0) : ((uint64_t(1) << N) - 1);
  return Basis::literal(
      BasisLiteral({BasisVector(PrimitiveBasis::Std, N, Ones)}));
}

} // namespace

//===----------------------------------------------------------------------===//
// Lambda lifting
//===----------------------------------------------------------------------===//

void asdf::liftLambdas(Module &M) {
  bool Changed = true;
  unsigned Counter = 0;
  while (Changed) {
    Changed = false;
    for (auto &F : M.Functions) {
      // Find a lambda op anywhere in this function.
      Op *Lambda = nullptr;
      std::function<void(Block &)> Find = [&](Block &B) {
        for (auto &O : B.Ops) {
          if (Lambda)
            return;
          if (O->Kind == OpKind::Lambda) {
            Lambda = O.get();
            return;
          }
          for (auto &R : O->Regions)
            if (R)
              Find(*R);
        }
      };
      Find(F->Body);
      if (!Lambda)
        continue;

      // createUnique may reallocate M.Functions, invalidating F — read
      // everything needed from F first.
      SourceLoc ParentLoc = F->Loc;
      IRFunction *Lifted =
          M.createUnique(F->Name + "__lambda" + std::to_string(Counter++));
      Lifted->IsLambdaLifted = true;
      Lifted->Loc = ParentLoc;
      moveBlockIntoFunction(*Lambda->Regions[0], *Lifted);
      Lambda->Regions.clear();

      Builder B(Lambda->ParentBlock, Lambda);
      Value *Const = B.funcConst(Lifted->Name, Lambda->result(0)->Ty);
      Lambda->result(0)->replaceAllUsesWith(Const);
      Lambda->erase();
      Changed = true;
      break; // Module functions vector may have reallocated; restart.
    }
  }
}

//===----------------------------------------------------------------------===//
// Canonicalization patterns
//===----------------------------------------------------------------------===//

namespace {

/// Resolves a function value back to (symbol, adj, predBasis); returns false
/// if the chain does not bottom out at a func_const.
bool resolveFuncChain(Value *Callee, std::string &Symbol, bool &Adj,
                      Basis &Pred) {
  Adj = false;
  Pred = Basis();
  std::vector<Basis> Preds;
  while (true) {
    Op *Def = Callee->DefOp;
    if (!Def)
      return false;
    switch (Def->Kind) {
    case OpKind::FuncConst:
      Symbol = Def->SymbolAttr;
      // Outermost predicate qubits come first.
      for (const Basis &P : Preds)
        Pred = Pred.tensor(P);
      return true;
    case OpKind::FuncAdj:
      Adj = !Adj;
      Callee = Def->operand(0);
      continue;
    case OpKind::FuncPred:
      Preds.push_back(Def->BasisAttr);
      Callee = Def->operand(0);
      continue;
    default:
      return false;
    }
  }
}

/// Erases a pure op if all its results are dead; recursively erases newly
/// dead defs. Returns true if anything was erased.
bool eraseIfDead(Op *O) {
  if (!O->isPure())
    return false;
  for (Value &R : O->Results)
    if (!R.Uses.empty())
      return false;
  std::vector<Value *> Operands = O->Operands;
  O->erase();
  for (Value *V : Operands)
    if (V->DefOp && V->Uses.empty())
      eraseIfDead(V->DefOp);
  return true;
}

/// One canonicalization step on a block; returns true if a rewrite fired.
bool canonicalizeBlockOnce(Block &B, Module &M) {
  for (auto It = B.Ops.begin(); It != B.Ops.end(); ++It) {
    Op *O = It->get();

    // qbid %x -> %x.
    if (O->Kind == OpKind::QbId) {
      O->result(0)->replaceAllUsesWith(O->operand(0));
      O->erase();
      return true;
    }

    // func_adj(func_adj(x)) -> x.
    if (O->Kind == OpKind::FuncAdj) {
      Op *Inner = O->operand(0)->DefOp;
      if (Inner && Inner->Kind == OpKind::FuncAdj) {
        O->result(0)->replaceAllUsesWith(Inner->operand(0));
        O->erase();
        eraseIfDead(Inner);
        return true;
      }
    }

    // qbunpack(qbpack(xs)) -> xs.
    if (O->Kind == OpKind::QbUnpack || O->Kind == OpKind::BitUnpack) {
      Op *Pack = O->operand(0)->DefOp;
      OpKind PackKind =
          O->Kind == OpKind::QbUnpack ? OpKind::QbPack : OpKind::BitPack;
      if (Pack && Pack->Kind == PackKind) {
        for (unsigned I = 0; I < O->numResults(); ++I)
          O->result(I)->replaceAllUsesWith(Pack->operand(I));
        O->erase();
        // The pack's result is now unused (it was linear with one use).
        if (Pack->Results[0].Uses.empty()) {
          Pack->erase();
        }
        return true;
      }
    }

    // qbpack(qbunpack(x)) -> x when complete and in order.
    if (O->Kind == OpKind::QbPack || O->Kind == OpKind::BitPack) {
      if (O->numOperands() > 0) {
        Op *Unpack = O->operand(0)->DefOp;
        OpKind UnpackKind = O->Kind == OpKind::QbPack ? OpKind::QbUnpack
                                                      : OpKind::BitUnpack;
        if (Unpack && Unpack->Kind == UnpackKind &&
            Unpack->numResults() == O->numOperands()) {
          bool InOrder = true;
          for (unsigned I = 0; I < O->numOperands(); ++I)
            InOrder = InOrder && O->operand(I) == Unpack->result(I);
          if (InOrder) {
            O->result(0)->replaceAllUsesWith(Unpack->operand(0));
            O->erase();
            if (std::all_of(Unpack->Results.begin(), Unpack->Results.end(),
                            [](Value &R) { return R.Uses.empty(); }))
              Unpack->erase();
            return true;
          }
        }
      }
    }

    // call_indirect(func chain bottoming at func_const @f) -> call @f.
    if (O->Kind == OpKind::CallIndirect) {
      std::string Symbol;
      bool Adj = false;
      Basis Pred;
      if (resolveFuncChain(O->operand(0), Symbol, Adj, Pred)) {
        std::vector<Value *> Args(O->Operands.begin() + 1,
                                  O->Operands.end());
        std::vector<IRType> ResultTypes;
        for (Value &R : O->Results)
          ResultTypes.push_back(R.Ty);
        Builder Bld(&B, O);
        Op *NewCall = Bld.createOp(OpKind::Call, Args, ResultTypes);
        NewCall->SymbolAttr = Symbol;
        NewCall->AdjFlag = Adj;
        NewCall->BasisAttr = Pred;
        Value *Chain = O->operand(0);
        for (unsigned I = 0; I < O->numResults(); ++I)
          O->result(I)->replaceAllUsesWith(NewCall->result(I));
        O->erase();
        if (Chain->DefOp)
          eraseIfDead(Chain->DefOp);
        return true;
      }
    }

    // Appendix C: push call_indirect/func_adj/func_pred whose function
    // operand is an scf.if result into both forks.
    if (O->Kind == OpKind::CallIndirect || O->Kind == OpKind::FuncAdj ||
        O->Kind == OpKind::FuncPred) {
      Value *FuncVal = O->operand(0);
      Op *IfDef = FuncVal->DefOp;
      if (IfDef && IfDef->Kind == OpKind::If && FuncVal->hasOneUse() &&
          IfDef->numResults() == 1 && IfDef->ParentBlock == &B) {
        std::vector<IRType> NewTypes;
        for (Value &R : O->Results)
          NewTypes.push_back(R.Ty);
        Builder Bld(&B, O);
        Op *NewIf = Bld.createOp(OpKind::If, {IfDef->operand(0)}, NewTypes);
        NewIf->Regions = std::move(IfDef->Regions);
        IfDef->Regions.clear();
        for (auto &R : NewIf->Regions)
          R->ParentOp = NewIf;
        for (auto &R : NewIf->Regions) {
          Op *Yield = R->terminator();
          assert(Yield->Kind == OpKind::Yield);
          Value *BranchFunc = Yield->operand(0);
          Builder RB(R.get(), Yield);
          std::vector<Value *> NewOuts;
          switch (O->Kind) {
          case OpKind::CallIndirect: {
            std::vector<Value *> Args(O->Operands.begin() + 1,
                                      O->Operands.end());
            NewOuts = RB.callIndirect(BranchFunc, Args);
            break;
          }
          case OpKind::FuncAdj:
            NewOuts = {RB.funcAdj(BranchFunc)};
            break;
          case OpKind::FuncPred:
            NewOuts = {RB.funcPred(BranchFunc, O->BasisAttr)};
            break;
          default:
            break;
          }
          Yield->dropOperands();
          for (Value *V : NewOuts)
            Yield->addOperand(V);
        }
        // O's operands other than the function value are now consumed
        // inside the regions; drop O.
        for (unsigned I = 0; I < O->numResults(); ++I)
          O->result(I)->replaceAllUsesWith(NewIf->result(I));
        O->erase();
        IfDef->erase();
        return true;
      }
    }

    // DCE for pure ops.
    if (eraseIfDead(O))
      return true;

    // Recurse into regions.
    for (auto &R : O->Regions)
      if (R && canonicalizeBlockOnce(*R, M))
        return true;
  }
  return false;
}

} // namespace

bool asdf::canonicalizeIR(Module &M) {
  bool Changed = false;
  bool Fired = true;
  while (Fired) {
    Fired = false;
    for (auto &F : M.Functions)
      if (canonicalizeBlockOnce(F->Body, M)) {
        Fired = true;
        Changed = true;
        break;
      }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Inlining
//===----------------------------------------------------------------------===//

bool asdf::inlineOneCall(Module &M) {
  for (auto &F : M.Functions) {
    Op *Call = nullptr;
    std::function<void(Block &)> Find = [&](Block &B) {
      for (auto &O : B.Ops) {
        if (Call)
          return;
        if (O->Kind == OpKind::Call && M.lookup(O->SymbolAttr) &&
            M.lookup(O->SymbolAttr) != F.get()) {
          Call = O.get();
          return;
        }
        for (auto &R : O->Regions)
          if (R)
            Find(*R);
      }
    };
    Find(F->Body);
    if (!Call)
      continue;

    IRFunction *Callee = M.lookup(Call->SymbolAttr);
    std::unique_ptr<Block> Body = buildSpecializedBlock(
        Callee->Body, Call->AdjFlag, Call->BasisAttr);
    if (!Body)
      return false;

    ValueMap Map;
    assert(Body->numArgs() == Call->numOperands() &&
           "inline argument count mismatch");
    for (unsigned I = 0; I < Body->numArgs(); ++I)
      Map[Body->arg(I)] = Call->operand(I);
    Builder B(Call->ParentBlock, Call);
    cloneBlockBody(B, *Body, Map, /*SkipTerminator=*/true);
    Op *Term = Body->terminator();
    for (unsigned I = 0; I < Call->numResults(); ++I) {
      Value *Mapped = Term->operand(I);
      auto It = Map.find(Mapped);
      Call->result(I)->replaceAllUsesWith(It != Map.end() ? It->second
                                                          : Mapped);
    }
    // Tear down the temporary body before erasing the call.
    while (!Body->Ops.empty()) {
      Op *Last = Body->Ops.back().get();
      Last->dropOperands();
      Last->Regions.clear();
      Body->Ops.pop_back();
    }
    Call->erase();
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Dead function elimination and pipelines
//===----------------------------------------------------------------------===//

void asdf::removeDeadFunctions(Module &M, const std::set<std::string> &Keep) {
  std::set<std::string> Live = Keep;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto &F : M.Functions) {
      if (!Live.count(F->Name))
        continue;
      std::function<void(Block &)> Walk = [&](Block &B) {
        for (auto &O : B.Ops) {
          if ((O->Kind == OpKind::FuncConst ||
               O->Kind == OpKind::Call ||
               O->Kind == OpKind::CallableCreate) &&
              !O->SymbolAttr.empty() && !Live.count(O->SymbolAttr)) {
            Live.insert(O->SymbolAttr);
            Changed = true;
          }
          for (auto &R : O->Regions)
            if (R)
              Walk(*R);
        }
      };
      Walk(F->Body);
    }
  }
  for (auto It = M.Functions.begin(); It != M.Functions.end();) {
    if (!Live.count((*It)->Name)) {
      // Drop the body cleanly before destruction.
      Block &B = (*It)->Body;
      while (!B.Ops.empty()) {
        Op *Last = B.Ops.back().get();
        Last->dropOperands();
        Last->Regions.clear();
        B.Ops.pop_back();
      }
      It = M.Functions.erase(It);
    } else {
      ++It;
    }
  }
}

void asdf::runQwertyOptPipeline(Module &M,
                                const std::set<std::string> &Keep) {
  liftLambdas(M);
  bool Changed = true;
  while (Changed) {
    Changed = canonicalizeIR(M);
    while (inlineOneCall(M)) {
      Changed = true;
      canonicalizeIR(M);
    }
  }
  removeDeadFunctions(M, Keep);
}

void asdf::runQwertyNoOptPipeline(Module &M) { liftLambdas(M); }

//===----------------------------------------------------------------------===//
// Function specialization analysis (§6.2, Algorithm D5)
//===----------------------------------------------------------------------===//

std::string asdf::specSymbol(const SpecKey &Key) {
  const auto &[Name, Adj, Ctrls] = Key;
  std::string S = Name;
  if (Adj)
    S += "__adj";
  if (Ctrls)
    S += "__ctl" + std::to_string(Ctrls);
  return S;
}

std::set<SpecKey> asdf::analyzeSpecializations(Module &M,
                                               const std::string &EntryName) {
  // Collect direct specialization requirements of a *forward* invocation of
  // each function (the callable-value labeling analysis of §6.2).
  std::map<std::string, std::set<SpecKey>> DirectCallees;
  for (auto &F : M.Functions) {
    std::set<SpecKey> &Callees = DirectCallees[F->Name];
    std::function<void(Block &)> Walk = [&](Block &B) {
      for (auto &O : B.Ops) {
        if (O->Kind == OpKind::Call)
          Callees.insert(
              {O->SymbolAttr, O->AdjFlag, O->BasisAttr.dim()});
        else if (O->Kind == OpKind::CallIndirect) {
          std::string Symbol;
          bool Adj = false;
          Basis Pred;
          if (resolveFuncChain(O->operand(0), Symbol, Adj, Pred))
            Callees.insert({Symbol, Adj, Pred.dim()});
        }
        for (auto &R : O->Regions)
          if (R)
            Walk(*R);
      }
    };
    Walk(F->Body);
  }

  // Algorithm D5: iterate to a fixpoint over transitive specializations.
  std::set<SpecKey> V;
  std::set<std::pair<SpecKey, SpecKey>> E;
  for (auto &F : M.Functions)
    V.insert({F->Name, false, 0});
  for (auto &[Name, Callees] : DirectCallees)
    for (const SpecKey &Callee : Callees) {
      V.insert(Callee);
      E.insert({{Name, false, 0}, Callee});
    }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::set<SpecKey> NewV = V;
    std::set<std::pair<SpecKey, SpecKey>> NewE = E;
    for (auto &F : M.Functions) {
      SpecKey Fwd{F->Name, false, 0};
      for (const auto &[From, To] : E) {
        if (From != Fwd)
          continue;
        const auto &[CalleeName, CalleeAdj, CalleeCtrls] = To;
        for (const SpecKey &U : V) {
          if (std::get<0>(U) != F->Name)
            continue;
          SpecKey Trans{CalleeName, std::get<1>(U) ^ CalleeAdj,
                        std::get<2>(U) + CalleeCtrls};
          if (NewV.insert(Trans).second)
            Changed = true;
          if (NewE.insert({U, Trans}).second)
            Changed = true;
        }
      }
    }
    V = std::move(NewV);
    E = std::move(NewE);
  }

  // DFS from the entry point; drop unreachable nodes.
  std::set<SpecKey> Reached;
  std::vector<SpecKey> Stack{{EntryName, false, 0}};
  while (!Stack.empty()) {
    SpecKey Cur = Stack.back();
    Stack.pop_back();
    if (!Reached.insert(Cur).second)
      continue;
    for (const auto &[From, To] : E)
      if (From == Cur)
        Stack.push_back(To);
  }
  // Keep only specializations of functions that actually exist in the
  // module (embed symbols etc. are external).
  std::set<SpecKey> Out;
  for (const SpecKey &K : Reached)
    if (M.lookup(std::get<0>(K)))
      Out.insert(K);
  return Out;
}

bool asdf::generateSpecializations(Module &M, const std::set<SpecKey> &Specs) {
  for (const SpecKey &Key : Specs) {
    const auto &[Name, Adj, Ctrls] = Key;
    if (!Adj && Ctrls == 0)
      continue; // Forward form already exists.
    IRFunction *Orig = M.lookup(Name);
    if (!Orig)
      return false;
    if (M.lookup(specSymbol(Key)))
      continue;
    Basis Pred = Ctrls ? allOnesPred(Ctrls) : Basis();
    std::unique_ptr<Block> Body =
        buildSpecializedBlock(Orig->Body, Adj, Pred);
    if (!Body)
      return false;
    IRFunction *Spec = M.create(specSymbol(Key));
    Spec->IsSpecialization = true;
    Spec->Loc = Orig->Loc;
    moveBlockIntoFunction(*Body, *Spec);
  }
  return true;
}
