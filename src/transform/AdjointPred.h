//===- AdjointPred.h - Adjoint and predication of basic blocks ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the two block-level function-specialization transforms:
///
///  - **Adjoint** (§5.2): traverses the def-use DAG backwards from the block
///    terminator, building an adjoint of each op to produce a reversed block.
///    "Stationary" classical ops (constants, function values) stay in place.
///
///  - **Predication** (§5.3): rebuilds ops in place with an extra predicate
///    basis. Because dataflow renaming can effect qubit swaps that would
///    escape per-op predication, an intraprocedural dataflow analysis maps
///    every value to the qubit indices it carries; any net permutation is
///    undone with an uncontrolled SWAP and redone with a predicated SWAP
///    (the trick of Fig. 5).
///
/// Both transforms also work on QCircuit-dialect blocks (gates, qalloc/
/// qfreez), which is how specializations are produced after lowering.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_TRANSFORM_ADJOINTPRED_H
#define ASDF_TRANSFORM_ADJOINTPRED_H

#include "ir/IR.h"

#include <memory>
#include <optional>
#include <vector>

namespace asdf {

/// Builds a new standalone block computing the adjoint of \p Source.
/// \p Source must end in Ret or Yield and contain only reversible ops;
/// the result ends in Yield. Returns null if an op is not adjointable.
std::unique_ptr<Block> adjointBlock(const Block &Source);

/// Builds a new standalone block computing \p Source predicated on \p Pred:
/// the new block takes/returns a qbundle widened by dim(Pred) leading
/// predicate qubits and only acts when those qubits lie in span(Pred).
/// \p Source must be a reversible single-qbundle-arg block. Returns null on
/// non-predicatable ops.
std::unique_ptr<Block> predicateBlock(const Block &Source, const Basis &Pred);

/// The §5.3 dataflow analysis: returns, for the block's terminator operand,
/// the list of argument qubit indices each output position carries (the
/// renaming permutation), or std::nullopt if the block is not a pure
/// qubit-flow block. Exposed for testing.
std::optional<std::vector<unsigned>>
computeRenamingPermutation(const Block &Source);

} // namespace asdf

#endif // ASDF_TRANSFORM_ADJOINTPRED_H
