//===- Passes.h - Qwerty IR transformation passes (§5.4, §6.2) ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass pipeline of §5.4: (1) lift all lambdas to module functions
/// referenced by func_const; (2) canonicalize, turning
/// call_indirect(func_const @f) into call @f (folding func_adj/func_pred
/// chains into adj/pred call attributes, and pushing call_indirects into
/// scf.if forks per Appendix C); (3) inline direct calls, generating
/// adjoint/predicated block specializations on demand, re-running the
/// canonicalizer until fixpoint.
///
/// When inlining is disabled (the Asdf (No Opt) configuration of Table 1),
/// function-specialization analysis (§6.2, Algorithm D5) determines which
/// specializations must be emitted for the QIR callables path.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_TRANSFORM_PASSES_H
#define ASDF_TRANSFORM_PASSES_H

#include "ir/IR.h"

#include <set>
#include <string>
#include <tuple>

namespace asdf {

/// Lifts every lambda op in \p M to a module-level function referenced by a
/// func_const (§5.4 step 1).
void liftLambdas(Module &M);

/// Runs canonicalization patterns and DCE to fixpoint on \p M (§5.4 step 2).
/// Returns true if anything changed.
bool canonicalizeIR(Module &M);

/// Inlines at most one direct call; returns true if one was inlined. Calls
/// marked adj/pred are specialized via adjointBlock/predicateBlock first.
bool inlineOneCall(Module &M);

/// Removes functions that are never referenced (directly or via func_const/
/// callable_create) from any function in \p Keep or its transitive callees.
void removeDeadFunctions(Module &M, const std::set<std::string> &Keep);

/// The full §5.4 pipeline: lift, then alternate canonicalize + inline to
/// fixpoint, then drop dead functions (entry points in \p Keep survive).
void runQwertyOptPipeline(Module &M, const std::set<std::string> &Keep);

/// The no-opt pipeline: lambda lifting only, leaving call_indirect ops in
/// place to lower to QIR callables.
void runQwertyNoOptPipeline(Module &M);

/// A required function specialization (§6.2): function name, adjoint flag,
/// and number of predicate/control qubits.
using SpecKey = std::tuple<std::string, bool, unsigned>;

/// Algorithm D5: computes the set of specializations reachable from
/// \p EntryName, including transitive specialized calls.
std::set<SpecKey> analyzeSpecializations(Module &M,
                                         const std::string &EntryName);

/// Generates IR functions for every non-forward specialization in \p Specs,
/// named f__adj, f__ctl<N>, f__adj_ctl<N>. Predicates for generated ctl
/// specializations are all-ones std bases of the given width (the QIR
/// callable convention; Appendix G). Returns false if a body cannot be
/// specialized.
bool generateSpecializations(Module &M, const std::set<SpecKey> &Specs);

/// The mangled symbol for a specialization.
std::string specSymbol(const SpecKey &Key);

} // namespace asdf

#endif // ASDF_TRANSFORM_PASSES_H
