//===- AdjointPred.cpp - Adjoint and predication of basic blocks ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/AdjointPred.h"

#include <algorithm>
#include <map>

using namespace asdf;

namespace {

/// Looks a value up in the map, defaulting to itself (for values defined
/// outside the block being transformed).
Value *lookup(ValueMap &Map, Value *V) {
  auto It = Map.find(V);
  return It != Map.end() ? It->second : V;
}

/// The two-vector swap basis {'01','10'} (std).
BasisLiteral swapLiteral(bool Reversed) {
  BasisVector V01(PrimitiveBasis::Std, 2, 0b01);
  BasisVector V10(PrimitiveBasis::Std, 2, 0b10);
  if (Reversed)
    return BasisLiteral({V10, V01});
  return BasisLiteral({V01, V10});
}

} // namespace

//===----------------------------------------------------------------------===//
// Adjoint (§5.2)
//===----------------------------------------------------------------------===//

/// Emits the adjoint of \p O into \p B. Values in \p Map are "reversed
/// wires": Map[result] is the adjoint op's *input* and Map[operand] becomes
/// its *output*. Returns false for non-adjointable ops.
static bool buildAdjointOp(Builder &B, Op *O, ValueMap &Map) {
  switch (O->Kind) {
  case OpKind::QbTrans: {
    // ~(b1 >> b2) = b2 >> b1; vector phases travel with their vectors.
    Value *In = lookup(Map, O->result(0));
    Value *Out = B.qbtrans(In, O->BasisAttr2, O->BasisAttr);
    Map[O->operand(0)] = Out;
    return true;
  }
  case OpKind::QbId: {
    Map[O->operand(0)] = B.qbid(lookup(Map, O->result(0)));
    return true;
  }
  case OpKind::EmbedClassical: {
    // Both U_f (XOR target) and the sign oracle are self-adjoint.
    Value *In = lookup(Map, O->result(0));
    Value *Out = B.embedClassical(In, O->SymbolAttr, O->EmbedAttr);
    Out->DefOp->BasisAttr = O->BasisAttr;
    Map[O->operand(0)] = Out;
    return true;
  }
  case OpKind::QbPack: {
    // Adjoint of packing is unpacking.
    std::vector<Value *> Qs = B.qbunpack(lookup(Map, O->result(0)));
    for (unsigned I = 0; I < O->numOperands(); ++I)
      Map[O->operand(I)] = Qs[I];
    return true;
  }
  case OpKind::QbUnpack: {
    std::vector<Value *> Qs;
    for (unsigned I = 0; I < O->numResults(); ++I)
      Qs.push_back(lookup(Map, O->result(I)));
    Map[O->operand(0)] = B.qbpack(Qs);
    return true;
  }
  case OpKind::Call: {
    // call @f -> call adj @f (§5): the Adjointable interface of calls.
    std::vector<Value *> Ins;
    for (unsigned I = 0; I < O->numResults(); ++I)
      Ins.push_back(lookup(Map, O->result(I)));
    std::vector<IRType> ResultTypes;
    for (Value *V : O->Operands)
      ResultTypes.push_back(V->Ty);
    Op *New = B.createOp(OpKind::Call, Ins, ResultTypes);
    New->SymbolAttr = O->SymbolAttr;
    New->AdjFlag = !O->AdjFlag;
    New->BasisAttr = O->BasisAttr;
    for (unsigned I = 0; I < O->numOperands(); ++I)
      Map[O->operand(I)] = New->result(I);
    return true;
  }
  case OpKind::CallIndirect: {
    // The function value is stationary; wrap it in func_adj.
    Value *Func = B.funcAdj(lookup(Map, O->operand(0)));
    std::vector<Value *> Ins;
    for (unsigned I = 0; I < O->numResults(); ++I)
      Ins.push_back(lookup(Map, O->result(I)));
    std::vector<Value *> Results = B.callIndirect(Func, Ins);
    for (unsigned I = 1; I < O->numOperands(); ++I)
      Map[O->operand(I)] = Results[I - 1];
    return true;
  }
  case OpKind::Gate: {
    std::vector<Value *> Controls, Targets;
    for (unsigned I = 0; I < O->numResults(); ++I) {
      Value *V = lookup(Map, O->result(I));
      if (I < O->NumControls)
        Controls.push_back(V);
      else
        Targets.push_back(V);
    }
    GateKind Adj = adjointGateKind(O->GateAttr);
    GateParam Param = O->ParamAttr;
    if (O->GateAttr == GateKind::P || O->GateAttr == GateKind::RX ||
        O->GateAttr == GateKind::RY || O->GateAttr == GateKind::RZ)
      Param = Param.negated();
    std::vector<Value *> Results = B.gate(Adj, Controls, Targets, Param);
    for (unsigned I = 0; I < O->numOperands(); ++I)
      Map[O->operand(I)] = Results[I];
    return true;
  }
  case OpKind::QAlloc: {
    // Adjoint of allocating |0> is freeing a qubit known to be |0>.
    B.qfreez(lookup(Map, O->result(0)));
    return true;
  }
  case OpKind::QFreeZ: {
    Map[O->operand(0)] = B.qalloc();
    return true;
  }
  default:
    // qbprep/qbmeas/qbdiscard/measure/if are irreversible; call sites should
    // have been rejected by the type checker.
    return false;
  }
}

std::unique_ptr<Block> asdf::adjointBlock(const Block &Source) {
  assert(!Source.Ops.empty());
  Op *Term = Source.Ops.back().get();
  assert((Term->Kind == OpKind::Ret || Term->Kind == OpKind::Yield) &&
         "adjointBlock requires a terminated block");

  auto NB = std::make_unique<Block>();
  Builder B(NB.get());
  ValueMap Map;

  // Stationary ops stay in place: clone them in forward order first so
  // function values and constants are available (Fig. 4).
  for (const auto &O : Source.Ops)
    if (O->isStationary())
      cloneOp(B, O.get(), Map);

  // The original outputs become the new inputs.
  for (Value *V : Term->Operands)
    Map[V] = NB->addArg(V->Ty);

  // Traverse the def-use DAG backwards, building adjoints top-down.
  for (auto It = Source.Ops.rbegin(); It != Source.Ops.rend(); ++It) {
    Op *O = It->get();
    if (O == Term || O->isStationary())
      continue;
    if (!buildAdjointOp(B, O, Map))
      return nullptr;
  }

  // The original inputs become the new outputs.
  std::vector<Value *> Outs;
  for (Value &Arg : const_cast<Block &>(Source).Args)
    Outs.push_back(lookup(Map, &Arg));
  B.yield(Outs);
  return NB;
}

//===----------------------------------------------------------------------===//
// Renaming-permutation dataflow analysis (§5.3)
//===----------------------------------------------------------------------===//

std::optional<std::vector<unsigned>>
asdf::computeRenamingPermutation(const Block &Source) {
  // Maps each qubit-carrying value to the argument indices it represents.
  std::map<const Value *, std::vector<unsigned>> Indices;
  unsigned Next = 0;
  for (const Value &Arg : Source.Args) {
    if (!Arg.Ty.isLinear())
      continue;
    std::vector<unsigned> Ix;
    unsigned N = Arg.Ty.isQubit() ? 1 : Arg.Ty.dim();
    for (unsigned I = 0; I < N; ++I)
      Ix.push_back(Next++);
    Indices[&Arg] = std::move(Ix);
  }

  Op *Term = const_cast<Block &>(Source).Ops.back().get();
  for (const auto &OPtr : Source.Ops) {
    Op *O = OPtr.get();
    if (O == Term || O->isStationary())
      continue;
    switch (O->Kind) {
    case OpKind::QbUnpack: {
      const auto &In = Indices.at(O->operand(0));
      for (unsigned I = 0; I < O->numResults(); ++I)
        Indices[O->result(I)] = {In[I]};
      break;
    }
    case OpKind::QbPack: {
      std::vector<unsigned> Out;
      for (Value *V : O->Operands) {
        const auto &In = Indices.at(V);
        Out.insert(Out.end(), In.begin(), In.end());
      }
      Indices[O->result(0)] = std::move(Out);
      break;
    }
    case OpKind::QbTrans:
    case OpKind::QbId:
    case OpKind::EmbedClassical: {
      // These ops act on qubits without renumbering positions.
      Indices[O->result(0)] = Indices.at(O->operand(0));
      break;
    }
    case OpKind::Call: {
      unsigned R = 0;
      for (Value *V : O->Operands) {
        if (!V->Ty.isLinear())
          continue;
        Indices[O->result(R)] = Indices.at(V);
        ++R;
      }
      break;
    }
    case OpKind::CallIndirect: {
      // Operand 0 is the function value.
      if (O->numResults() == 1 && O->numOperands() == 2)
        Indices[O->result(0)] = Indices.at(O->operand(1));
      else
        return std::nullopt;
      break;
    }
    case OpKind::Gate: {
      for (unsigned I = 0; I < O->numOperands(); ++I)
        Indices[O->result(I)] = Indices.at(O->operand(I));
      break;
    }
    case OpKind::QAlloc:
      // Fresh ancilla: give it fresh indices.
      Indices[O->result(0)] = {Next++};
      break;
    case OpKind::QFreeZ:
    case OpKind::QFree:
      break;
    default:
      return std::nullopt;
    }
  }

  std::vector<unsigned> Final;
  for (Value *V : Term->Operands) {
    auto It = Indices.find(V);
    if (It == Indices.end())
      return std::nullopt;
    Final.insert(Final.end(), It->second.begin(), It->second.end());
  }
  return Final;
}

//===----------------------------------------------------------------------===//
// Predication (§5.3)
//===----------------------------------------------------------------------===//

namespace {

/// State threaded through predication: the predicate qubits (updated by each
/// predicated op).
struct PredState {
  std::vector<Value *> PredQs;
  const Basis &Pred;
};

/// Widens \p Bundle by prefixing the predicate qubits; returns the widened
/// bundle value.
Value *widen(Builder &B, PredState &PS, Value *Bundle) {
  std::vector<Value *> Qs = PS.PredQs;
  std::vector<Value *> Rest = B.qbunpack(Bundle);
  Qs.insert(Qs.end(), Rest.begin(), Rest.end());
  return B.qbpack(Qs);
}

/// Splits a widened bundle back into refreshed predicate qubits and the
/// narrow bundle.
Value *narrow(Builder &B, PredState &PS, Value *Wide, unsigned RestDim) {
  std::vector<Value *> Qs = B.qbunpack(Wide);
  unsigned M = PS.PredQs.size();
  PS.PredQs.assign(Qs.begin(), Qs.begin() + M);
  std::vector<Value *> Rest(Qs.begin() + M, Qs.end());
  (void)RestDim;
  return B.qbpack(Rest);
}

bool buildPredicatedOp(Builder &B, Op *O, ValueMap &Map, PredState &PS) {
  switch (O->Kind) {
  case OpKind::QbPack: {
    std::vector<Value *> Ins;
    for (Value *V : O->Operands)
      Ins.push_back(lookup(Map, V));
    Map[O->result(0)] = B.qbpack(Ins);
    return true;
  }
  case OpKind::QbUnpack: {
    std::vector<Value *> Outs = B.qbunpack(lookup(Map, O->operand(0)));
    for (unsigned I = 0; I < O->numResults(); ++I)
      Map[O->result(I)] = Outs[I];
    return true;
  }
  case OpKind::QbId: {
    Map[O->result(0)] = B.qbid(lookup(Map, O->operand(0)));
    return true;
  }
  case OpKind::QbTrans: {
    // Add the predicate to both sides: b & (b1 >> b2) = b+b1 >> b+b2.
    unsigned RestDim = O->operand(0)->Ty.dim();
    Value *Wide = widen(B, PS, lookup(Map, O->operand(0)));
    Value *NewWide = B.qbtrans(Wide, PS.Pred.tensor(O->BasisAttr),
                               PS.Pred.tensor(O->BasisAttr2));
    Map[O->result(0)] = narrow(B, PS, NewWide, RestDim);
    return true;
  }
  case OpKind::EmbedClassical: {
    unsigned RestDim = O->operand(0)->Ty.dim();
    Value *Wide = widen(B, PS, lookup(Map, O->operand(0)));
    Value *NewWide =
        B.embedClassical(Wide, O->SymbolAttr, O->EmbedAttr);
    NewWide->DefOp->BasisAttr = PS.Pred.tensor(O->BasisAttr);
    Map[O->result(0)] = narrow(B, PS, NewWide, RestDim);
    return true;
  }
  case OpKind::Call: {
    assert(O->numOperands() == 1 && O->numResults() == 1 &&
           "predicating a call with a non-qbundle signature");
    unsigned RestDim = O->operand(0)->Ty.dim();
    Value *Wide = widen(B, PS, lookup(Map, O->operand(0)));
    Op *New = B.createOp(OpKind::Call, {Wide}, {Wide->Ty});
    New->SymbolAttr = O->SymbolAttr;
    New->AdjFlag = O->AdjFlag;
    New->BasisAttr = PS.Pred.tensor(O->BasisAttr);
    Map[O->result(0)] = narrow(B, PS, New->result(0), RestDim);
    return true;
  }
  case OpKind::CallIndirect: {
    assert(O->numOperands() == 2 && O->numResults() == 1);
    Value *Func = B.funcPred(lookup(Map, O->operand(0)), PS.Pred);
    unsigned RestDim = O->operand(1)->Ty.dim();
    Value *Wide = widen(B, PS, lookup(Map, O->operand(1)));
    std::vector<Value *> Results = B.callIndirect(Func, {Wide});
    Map[O->result(0)] = narrow(B, PS, Results.front(), RestDim);
    return true;
  }
  case OpKind::Gate: {
    // QCircuit-level predication: add predicate qubits as controls. Only
    // all-ones std predicates are supported here (QIR callable controls);
    // general bases are handled at the Qwerty level via qbtrans attributes.
    std::vector<Value *> Controls = PS.PredQs;
    std::vector<Value *> Targets;
    for (unsigned I = 0; I < O->numOperands(); ++I) {
      Value *V = lookup(Map, O->operand(I));
      if (I < O->NumControls)
        Controls.push_back(V);
      else
        Targets.push_back(V);
    }
    std::vector<Value *> Results =
        B.gate(O->GateAttr, Controls, Targets, O->ParamAttr);
    unsigned M = PS.PredQs.size();
    for (unsigned I = 0; I < M; ++I)
      PS.PredQs[I] = Results[I];
    for (unsigned I = 0; I < O->numOperands(); ++I)
      Map[O->operand(I)] = Results[M + I];
    return true;
  }
  case OpKind::QAlloc: {
    // Ancillas are allocated unconditionally in both spaces.
    Map[O->result(0)] = B.qalloc();
    return true;
  }
  case OpKind::QFreeZ: {
    B.qfreez(lookup(Map, O->operand(0)));
    return true;
  }
  default:
    return false;
  }
}

} // namespace

std::unique_ptr<Block> asdf::predicateBlock(const Block &Source,
                                            const Basis &Pred) {
  assert(!Source.Ops.empty());
  Op *Term = const_cast<Block &>(Source).Ops.back().get();
  assert((Term->Kind == OpKind::Ret || Term->Kind == OpKind::Yield) &&
         "predicateBlock requires a terminated block");
  assert(Source.Args.size() == 1 && Term->numOperands() == 1 &&
         "predicateBlock requires a single-qbundle signature");

  // Run the renaming analysis on the *unpredicated* block first (Fig. 5).
  std::optional<std::vector<unsigned>> Perm =
      computeRenamingPermutation(Source);
  if (!Perm)
    return nullptr;

  unsigned M = Pred.dim();
  unsigned N = const_cast<Block &>(Source).Args.front().Ty.dim();

  auto NB = std::make_unique<Block>();
  Builder B(NB.get());
  Value *WideArg = NB->addArg(IRType::qbundle(M + N));
  std::vector<Value *> Qs = B.qbunpack(WideArg);
  PredState PS{{Qs.begin(), Qs.begin() + M}, Pred};
  Value *Rest = B.qbpack({Qs.begin() + M, Qs.end()});

  ValueMap Map;
  Map[&const_cast<Block &>(Source).Args.front()] = Rest;

  for (const auto &OPtr : Source.Ops) {
    Op *O = OPtr.get();
    if (O == Term)
      continue;
    if (O->isStationary()) {
      cloneOp(B, O, Map);
      continue;
    }
    if (!buildPredicatedOp(B, O, Map, PS))
      return nullptr;
  }

  Value *Out = lookup(Map, Term->operand(0));

  // Undo renaming-based swaps outside the predicated space (§5.3): for each
  // transposition that sorts the permutation, emit an unconditional SWAP
  // (undo everywhere) followed by a predicated SWAP (redo inside the
  // predicate span). Ancilla indices cannot appear in outputs of a
  // well-formed reversible block, so every entry is < N.
  std::vector<unsigned> P = *Perm;
  bool Identity = true;
  for (unsigned I = 0; I < P.size(); ++I)
    Identity = Identity && P[I] == I;
  std::vector<Value *> OutQs;
  if (!Identity) {
    OutQs = B.qbunpack(Out);
    for (unsigned Pos = 0; Pos < P.size(); ++Pos) {
      while (P[Pos] != Pos) {
        // Find the position currently holding wire `Pos`.
        unsigned Other = Pos;
        for (unsigned J = Pos + 1; J < P.size(); ++J)
          if (P[J] == Pos) {
            Other = J;
            break;
          }
        assert(Other != Pos && "malformed permutation");
        // Unconditional SWAP undoing the logical swap everywhere.
        Value *Pair = B.qbpack({OutQs[Pos], OutQs[Other]});
        Value *Swapped =
            B.qbtrans(Pair, Basis::literal(swapLiteral(false)),
                      Basis::literal(swapLiteral(true)));
        std::vector<Value *> Un = B.qbunpack(Swapped);
        // Predicated SWAP redoing it inside span(Pred).
        std::vector<Value *> WideQs = PS.PredQs;
        WideQs.push_back(Un[0]);
        WideQs.push_back(Un[1]);
        Value *WidePair = B.qbpack(WideQs);
        Value *CtlSwapped = B.qbtrans(
            WidePair, Pred.tensor(Basis::literal(swapLiteral(false))),
            Pred.tensor(Basis::literal(swapLiteral(true))));
        std::vector<Value *> Un2 = B.qbunpack(CtlSwapped);
        PS.PredQs.assign(Un2.begin(), Un2.begin() + M);
        OutQs[Pos] = Un2[M];
        OutQs[Other] = Un2[M + 1];
        std::swap(P[Pos], P[Other]);
      }
    }
  } else {
    OutQs = B.qbunpack(Out);
  }

  // Yield the widened bundle: predicate qubits first.
  std::vector<Value *> FinalQs = PS.PredQs;
  FinalQs.insert(FinalQs.end(), OutQs.begin(), OutQs.end());
  B.yield({B.qbpack(FinalQs)});
  return NB;
}
