//===- Baselines.h - Circuit-oriented baseline compilers (§8) -------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gate-level implementations of the five benchmark algorithms in the style
/// of each baseline compiler of §8.1, reproducing the structural choices
/// the paper attributes to them:
///
///  - **Qiskit** (textbook): oracles as gates; multi-controls decomposed
///    with a V-chain of full 7-T Toffolis; IQFT with SWAP gates.
///  - **Quipper**: oracles synthesized from classical logic with an ancilla
///    per intermediate XOR (its Bennett-style synthesis); full-Toffoli
///    multi-controls; renaming-based IQFT swaps (no SWAP gates).
///  - **Q#**: oracles as gates; multi-controls decomposed with Selinger's
///    controlled-iX (RCCX) scheme — the same scheme Asdf uses; IQFT with
///    SWAP gates.
///
/// A common `transpileO3` pass (standing in for the Qiskit -O3 transpiler
/// of the evaluation methodology) is applied to every compiler's output,
/// including Asdf's.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_BASELINES_BASELINES_H
#define ASDF_BASELINES_BASELINES_H

#include "qcirc/Circuit.h"

namespace asdf {

/// Which baseline compiler's style to imitate.
enum class BaselineStyle { Qiskit, Quipper, QSharp };

/// The five benchmark algorithms of §8.1.
enum class BenchAlgorithm { BV, DJ, Grover, Simon, PeriodFinding };

const char *benchAlgorithmName(BenchAlgorithm A);
const char *baselineStyleName(BaselineStyle S);

/// Builds the benchmark circuit for oracle input size \p N. Grover runs
/// min(floor(pi/4 sqrt(2^N)), 12) iterations (the paper's cap).
Circuit buildBaselineCircuit(BenchAlgorithm Alg, BaselineStyle Style,
                             unsigned N);

/// Number of Grover iterations used for input size \p N (capped at 12).
unsigned groverIterations(unsigned N);

/// A gate-cancellation + rotation-merging cleanup pass applied to every
/// compiler's output before estimation (the paper's step (2)).
Circuit transpileO3(const Circuit &C);

} // namespace asdf

#endif // ASDF_BASELINES_BASELINES_H
