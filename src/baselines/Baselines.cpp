//===- Baselines.cpp - Circuit-oriented baseline compilers (§8) -----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include <array>
#include <cmath>
#include <set>

using namespace asdf;

const char *asdf::benchAlgorithmName(BenchAlgorithm A) {
  switch (A) {
  case BenchAlgorithm::BV:
    return "bv";
  case BenchAlgorithm::DJ:
    return "dj";
  case BenchAlgorithm::Grover:
    return "grover";
  case BenchAlgorithm::Simon:
    return "simon";
  case BenchAlgorithm::PeriodFinding:
    return "period";
  }
  return "?";
}

const char *asdf::baselineStyleName(BaselineStyle S) {
  switch (S) {
  case BaselineStyle::Qiskit:
    return "Qiskit";
  case BaselineStyle::Quipper:
    return "Quipper";
  case BaselineStyle::QSharp:
    return "Q#";
  }
  return "?";
}

unsigned asdf::groverIterations(unsigned N) {
  double Optimal = std::floor(M_PI / 4.0 * std::sqrt(std::pow(2.0, N)));
  return static_cast<unsigned>(std::min(Optimal, 12.0));
}

namespace {

/// Imperative circuit construction helper.
class CB {
public:
  Circuit C;

  unsigned alloc() { return C.NumQubits++; }
  /// Ancilla pool: `using` blocks in Q#/Qiskit reuse scratch registers.
  std::vector<unsigned> Pool;
  unsigned allocAncilla() {
    if (!Pool.empty()) {
      unsigned Q = Pool.back();
      Pool.pop_back();
      return Q;
    }
    return alloc();
  }
  void freeAncilla(unsigned Q) { Pool.push_back(Q); }
  std::vector<unsigned> allocN(unsigned N) {
    std::vector<unsigned> Qs;
    for (unsigned I = 0; I < N; ++I)
      Qs.push_back(alloc());
    return Qs;
  }
  unsigned measure(unsigned Q) {
    unsigned Bit = C.NumBits++;
    C.append(CircuitInstr::measure(Q, Bit));
    return Bit;
  }
  void g(GateKind K, std::vector<unsigned> Controls,
         std::vector<unsigned> Targets, double Param = 0.0) {
    C.append(CircuitInstr::gate(K, std::move(Controls), std::move(Targets),
                                Param));
  }
  void h(unsigned Q) { g(GateKind::H, {}, {Q}); }
  void x(unsigned Q) { g(GateKind::X, {}, {Q}); }
  void cx(unsigned Ctl, unsigned Tgt) { g(GateKind::X, {Ctl}, {Tgt}); }

  /// Full 7-T Toffoli.
  void ccx(unsigned C1, unsigned C2, unsigned T) {
    h(T);
    cx(C2, T);
    g(GateKind::Tdg, {}, {T});
    cx(C1, T);
    g(GateKind::T, {}, {T});
    cx(C2, T);
    g(GateKind::Tdg, {}, {T});
    cx(C1, T);
    g(GateKind::T, {}, {C2});
    g(GateKind::T, {}, {T});
    h(T);
    cx(C1, C2);
    g(GateKind::T, {}, {C1});
    g(GateKind::Tdg, {}, {C2});
    cx(C1, C2);
  }

  /// Margolus relative-phase Toffoli (4 T); self-adjoint gate list.
  void rccx(unsigned C1, unsigned C2, unsigned T) {
    h(T);
    g(GateKind::T, {}, {T});
    cx(C2, T);
    g(GateKind::Tdg, {}, {T});
    cx(C1, T);
    g(GateKind::T, {}, {T});
    cx(C2, T);
    g(GateKind::Tdg, {}, {T});
    h(T);
  }

  /// Multi-controlled X via an AND-ancilla chain. Selinger (Q#/Asdf) uses
  /// RCCX blocks; the others full Toffolis.
  void mcx(const std::vector<unsigned> &Controls, unsigned T,
           bool Selinger) {
    unsigned N = Controls.size();
    if (N == 0) {
      x(T);
      return;
    }
    if (N == 1) {
      cx(Controls[0], T);
      return;
    }
    if (N == 2) {
      ccx(Controls[0], Controls[1], T);
      return;
    }
    std::vector<unsigned> Ancillas;
    std::vector<std::array<unsigned, 3>> Steps;
    unsigned Prev = Controls[0];
    for (unsigned I = 1; I + 1 < N; ++I) {
      unsigned A = allocAncilla();
      Ancillas.push_back(A);
      Steps.push_back({Prev, Controls[I], A});
      if (Selinger)
        rccx(Prev, Controls[I], A);
      else
        ccx(Prev, Controls[I], A);
      Prev = A;
    }
    ccx(Prev, Controls[N - 1], T);
    for (auto It = Steps.rbegin(); It != Steps.rend(); ++It) {
      if (Selinger)
        rccx((*It)[0], (*It)[1], (*It)[2]);
      else
        ccx((*It)[0], (*It)[1], (*It)[2]);
    }
    for (unsigned A : Ancillas)
      freeAncilla(A);
  }

  /// Multi-controlled Z: H-conjugated MCX.
  void mcz(const std::vector<unsigned> &Controls, unsigned T,
           bool Selinger) {
    h(T);
    mcx(Controls, T, Selinger);
    h(T);
  }

  /// Inverse QFT on \p Qs. \p RenamingSwaps follows Quipper: omit SWAP
  /// gates and leave the bit-reversal to relabeling (the measurement order
  /// is permuted by the caller).
  void iqft(const std::vector<unsigned> &Qs, bool RenamingSwaps) {
    unsigned N = Qs.size();
    if (!RenamingSwaps)
      for (unsigned I = 0; I < N / 2; ++I)
        g(GateKind::Swap, {}, {Qs[I], Qs[N - 1 - I]});
    for (unsigned J = N; J-- > 0;) {
      for (unsigned K = N; K-- > J + 1;)
        g(GateKind::P, {Qs[K]}, {Qs[J]},
          -M_PI / double(uint64_t(1) << (K - J)));
      h(Qs[J]);
    }
  }
};

/// Oracle target preparation: |-> for phase kickback.
unsigned prepMinus(CB &B) {
  unsigned T = B.alloc();
  B.x(T);
  B.h(T);
  return T;
}

/// Quipper-style xor_reduce cone: an ancilla per intermediate XOR (§8.3).
/// Returns the wire carrying the XOR of \p Terms; ancillas are uncomputed
/// by \p Uncompute at the end.
unsigned quipperXorChain(CB &B, const std::vector<unsigned> &Terms,
                         std::vector<std::pair<unsigned, unsigned>> &Log) {
  unsigned Prev = Terms[0];
  for (unsigned I = 1; I < Terms.size(); ++I) {
    unsigned A = B.allocAncilla();
    B.cx(Prev, A);
    B.cx(Terms[I], A);
    Log.push_back({Prev, A});
    Log.push_back({Terms[I], A});
    Prev = A;
  }
  return Prev;
}

void uncomputeLog(CB &B,
                  const std::vector<std::pair<unsigned, unsigned>> &Log) {
  for (auto It = Log.rbegin(); It != Log.rend(); ++It)
    B.cx(It->first, It->second);
  // Each chain ancilla appears twice in the log; free each once.
  std::set<unsigned> Freed;
  for (const auto &[Src, Anc] : Log)
    if (Freed.insert(Anc).second)
      B.freeAncilla(Anc);
}

/// B-V / D-J: phase oracle for the inner product with \p Secret.
void innerProductOracle(CB &B, const std::vector<unsigned> &X,
                        const std::vector<bool> &Secret, unsigned Target,
                        BaselineStyle Style) {
  std::vector<unsigned> Terms;
  for (unsigned I = 0; I < X.size(); ++I)
    if (Secret[I])
      Terms.push_back(X[I]);
  if (Terms.empty())
    return;
  if (Style == BaselineStyle::Quipper) {
    std::vector<std::pair<unsigned, unsigned>> Log;
    unsigned Result = quipperXorChain(B, Terms, Log);
    B.cx(Result, Target);
    uncomputeLog(B, Log);
    return;
  }
  for (unsigned Q : Terms)
    B.cx(Q, Target);
}

Circuit buildBVLike(unsigned N, BaselineStyle Style,
                    const std::vector<bool> &Secret) {
  CB B;
  std::vector<unsigned> X = B.allocN(N);
  unsigned Target = prepMinus(B);
  for (unsigned Q : X)
    B.h(Q);
  innerProductOracle(B, X, Secret, Target, Style);
  for (unsigned Q : X)
    B.h(Q);
  // Unprepare the |-> ancilla.
  B.h(Target);
  B.x(Target);
  for (unsigned Q : X)
    B.measure(Q);
  return B.C;
}

Circuit buildGrover(unsigned N, BaselineStyle Style) {
  bool Selinger = Style == BaselineStyle::QSharp;
  CB B;
  std::vector<unsigned> X = B.allocN(N);
  for (unsigned Q : X)
    B.h(Q);
  unsigned Iters = groverIterations(N);
  for (unsigned It = 0; It < Iters; ++It) {
    // Oracle: flip the phase of |1...1> (MCZ on the register).
    std::vector<unsigned> Controls(X.begin(), X.end() - 1);
    B.mcz(Controls, X.back(), Selinger);
    // Diffuser.
    for (unsigned Q : X)
      B.h(Q);
    for (unsigned Q : X)
      B.x(Q);
    B.mcz(Controls, X.back(), Selinger);
    for (unsigned Q : X)
      B.x(Q);
    for (unsigned Q : X)
      B.h(Q);
  }
  for (unsigned Q : X)
    B.measure(Q);
  return B.C;
}

Circuit buildSimon(unsigned N, BaselineStyle Style) {
  // f(x) = x & mask with mask = 1...10 (secret s = 0...01).
  CB B;
  std::vector<unsigned> X = B.allocN(N);
  std::vector<unsigned> Y = B.allocN(N);
  for (unsigned Q : X)
    B.h(Q);
  if (Style == BaselineStyle::Quipper) {
    // Quipper routes each copied bit through an ancilla.
    for (unsigned I = 0; I + 1 < N; ++I) {
      unsigned A = B.allocAncilla();
      B.cx(X[I], A);
      B.cx(A, Y[I]);
      B.cx(X[I], A);
      B.freeAncilla(A);
    }
  } else {
    for (unsigned I = 0; I + 1 < N; ++I)
      B.cx(X[I], Y[I]);
  }
  for (unsigned Q : X)
    B.h(Q);
  for (unsigned Q : X)
    B.measure(Q);
  return B.C;
}

Circuit buildPeriod(unsigned N, BaselineStyle Style) {
  // QFT-based period finding with a bitmask oracle f(x) = x & mask.
  CB B;
  std::vector<unsigned> X = B.allocN(N);
  std::vector<unsigned> Y = B.allocN(N);
  for (unsigned Q : X)
    B.h(Q);
  if (Style == BaselineStyle::Quipper) {
    for (unsigned I = 0; I + 1 < N; ++I) {
      unsigned A = B.allocAncilla();
      B.cx(X[I], A);
      B.cx(A, Y[I]);
      B.cx(X[I], A);
      B.freeAncilla(A);
    }
  } else {
    for (unsigned I = 0; I + 1 < N; ++I)
      B.cx(X[I], Y[I]);
  }
  B.iqft(X, /*RenamingSwaps=*/Style == BaselineStyle::Quipper);
  if (Style == BaselineStyle::Quipper)
    for (auto It = X.rbegin(); It != X.rend(); ++It)
      B.measure(*It);
  else
    for (unsigned Q : X)
      B.measure(Q);
  return B.C;
}

} // namespace

Circuit asdf::buildBaselineCircuit(BenchAlgorithm Alg, BaselineStyle Style,
                                   unsigned N) {
  switch (Alg) {
  case BenchAlgorithm::BV: {
    std::vector<bool> Secret;
    for (unsigned I = 0; I < N; ++I)
      Secret.push_back(I % 2 == 0); // 1010...
    return buildBVLike(N, Style, Secret);
  }
  case BenchAlgorithm::DJ: {
    std::vector<bool> Secret(N, true); // Balanced: XOR of all bits.
    return buildBVLike(N, Style, Secret);
  }
  case BenchAlgorithm::Grover:
    return buildGrover(N, Style);
  case BenchAlgorithm::Simon:
    return buildSimon(N, Style);
  case BenchAlgorithm::PeriodFinding:
    return buildPeriod(N, Style);
  }
  return Circuit();
}

//===----------------------------------------------------------------------===//
// The common -O3-style transpiler pass
//===----------------------------------------------------------------------===//

namespace {

bool sameWires(const CircuitInstr &A, const CircuitInstr &B) {
  return A.Controls == B.Controls && A.Targets == B.Targets;
}

bool touchesAny(const CircuitInstr &I, const CircuitInstr &J) {
  auto In = [&](unsigned Q) {
    for (unsigned C : J.Controls)
      if (C == Q)
        return true;
    for (unsigned T : J.Targets)
      if (T == Q)
        return true;
    return false;
  };
  for (unsigned Q : I.Controls)
    if (In(Q))
      return true;
  for (unsigned Q : I.Targets)
    if (In(Q))
      return true;
  return false;
}

bool isParam(GateKind K) {
  return K == GateKind::P || K == GateKind::RX || K == GateKind::RY ||
         K == GateKind::RZ;
}

bool inversePair(const CircuitInstr &A, const CircuitInstr &B) {
  if (A.TheKind != CircuitInstr::Kind::Gate ||
      B.TheKind != CircuitInstr::Kind::Gate || !sameWires(A, B) ||
      A.CondBit != B.CondBit)
    return false;
  if (isHermitianGate(A.Gate))
    return A.Gate == B.Gate;
  if ((A.Gate == GateKind::S && B.Gate == GateKind::Sdg) ||
      (A.Gate == GateKind::Sdg && B.Gate == GateKind::S) ||
      (A.Gate == GateKind::T && B.Gate == GateKind::Tdg) ||
      (A.Gate == GateKind::Tdg && B.Gate == GateKind::T))
    return true;
  if (isParam(A.Gate) && A.Gate == B.Gate)
    return !A.isSymbolic() && !B.isSymbolic() &&
           std::abs(A.Param + B.Param) < 1e-12;
  return false;
}

} // namespace

Circuit asdf::transpileO3(const Circuit &C) {
  Circuit Out = C;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // One greedy pass collecting every non-overlapping cancellation; chains
    // exposed by a removal are picked up on the next pass.
    std::vector<bool> Dead(Out.Instrs.size(), false);
    for (unsigned I = 0; I < Out.Instrs.size(); ++I) {
      if (Dead[I] || Out.Instrs[I].TheKind != CircuitInstr::Kind::Gate)
        continue;
      for (unsigned J = I + 1; J < Out.Instrs.size(); ++J) {
        if (Dead[J])
          continue;
        const CircuitInstr &A = Out.Instrs[I];
        const CircuitInstr &B = Out.Instrs[J];
        if (inversePair(A, B)) {
          Dead[I] = Dead[J] = true;
          Changed = true;
          break;
        }
        // Merge rotations of the same kind on the same wires.
        if (B.TheKind == CircuitInstr::Kind::Gate && isParam(A.Gate) &&
            A.Gate == B.Gate && sameWires(A, B) && A.CondBit == B.CondBit &&
            !A.isSymbolic() && !B.isSymbolic()) {
          Out.Instrs[I].Param += B.Param;
          Dead[J] = true;
          Changed = true;
          break;
        }
        if (touchesAny(A, B))
          break; // Blocked; no cancellation across this instruction.
      }
    }
    if (Changed) {
      std::vector<CircuitInstr> Kept;
      for (unsigned I = 0; I < Out.Instrs.size(); ++I)
        if (!Dead[I])
          Kept.push_back(std::move(Out.Instrs[I]));
      Out.Instrs = std::move(Kept);
    }
    // Drop zero rotations.
    std::vector<CircuitInstr> Kept;
    for (CircuitInstr &I : Out.Instrs) {
      if (I.TheKind == CircuitInstr::Kind::Gate && isParam(I.Gate) &&
          !I.isSymbolic() &&
          std::abs(std::remainder(I.Param, 2 * M_PI)) < 1e-12) {
        Changed = true;
        continue;
      }
      Kept.push_back(std::move(I));
    }
    Out.Instrs = std::move(Kept);
  }
  return Out;
}
