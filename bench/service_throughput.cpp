//===- service_throughput.cpp - Daemon service throughput and latency -----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the compile-and-run service the way a client feels it, driving
/// `AsdfService` in-process (the daemon minus the socket, so numbers are
/// about the cache and the worker pool, not loopback I/O):
///
///   - cold vs. warm compile latency per §8.1 program — the content-hashed
///     artifact cache must make a warm compile at least 10x faster than a
///     cold one, or the daemon is not paying for itself;
///   - mixed compile/run throughput (requests/sec) through the worker
///     pool, with mean and p50/p99 request latency computed through the
///     shared obs::Histogram — and an audit that re-deriving quantiles
///     from the `stats` op's bucket counts reproduces the daemon's
///     reported p50/p90/p99 exactly;
///   - the cache hit rate of the workload (must be nonzero even in smoke);
///   - a determinism audit: every daemon-served run result is compared
///     bit-for-bit against a serial single-threaded reference.
///
/// Usage: service_throughput [--smoke] [--json <path>] [N] [warm-repeats]
///        (default N=8 warm-repeats=40; --smoke = N=5 warm-repeats=6)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "obs/Metrics.h"
#include "service/DiskCache.h"
#include "service/Service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

using namespace asdf;

namespace {

double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

ServiceRequest compileRequest(const BenchProgram &P, uint64_t Id) {
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Compile;
  R.Id = Id;
  R.Source = P.Source;
  R.Entry = P.Entry;
  R.Bindings = P.Bindings;
  R.Emit = "qasm";
  return R;
}

ServiceRequest runRequest(const BenchProgram &P, uint64_t Id,
                          unsigned Shots, uint64_t Seed) {
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Run;
  R.Id = Id;
  R.Source = P.Source;
  R.Entry = P.Entry;
  R.Bindings = P.Bindings;
  R.Shots = Shots;
  R.Seed = Seed;
  return R;
}

} // namespace

int main(int argc, char **argv) {
  BenchJson Json("service_throughput", argc, argv);
  bool Smoke = false;
  std::vector<unsigned> Args;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else
      Args.push_back(std::atoi(argv[I]));
  }
  unsigned N = Args.size() > 0 ? Args[0] : (Smoke ? 5 : 8);
  unsigned WarmRepeats = Args.size() > 1 ? Args[1] : (Smoke ? 6 : 40);

  const BenchAlgorithm Algs[] = {BenchAlgorithm::BV, BenchAlgorithm::DJ,
                                 BenchAlgorithm::Grover,
                                 BenchAlgorithm::Simon,
                                 BenchAlgorithm::PeriodFinding};
  std::vector<BenchProgram> Programs;
  for (BenchAlgorithm Alg : Algs)
    Programs.push_back(makeBenchProgram(Alg, N));

  Json.config("smoke", Smoke);
  Json.config("oracle_bits", N);
  Json.config("warm_repeats", WarmRepeats);
  std::printf("=== Service throughput (N=%u, %u warm repeat(s)%s) ===\n\n",
              N, WarmRepeats, Smoke ? ", smoke" : "");
  bool Ok = true;

  //===--- Cold vs. warm compile latency --------------------------------===//

  AsdfService Service(ServiceOptions{0, ArtifactCache::DefaultByteBudget});
  std::printf("%-8s | %10s | %10s | %8s\n", "bench", "cold-ms", "warm-us",
              "speedup");
  double ColdTotal = 0.0, WarmTotal = 0.0;
  uint64_t NextId = 1;
  for (size_t I = 0; I < Programs.size(); ++I) {
    ServiceRequest R = compileRequest(Programs[I], NextId++);
    double T0 = now();
    ServiceResponse Cold = Service.handle(R);
    double ColdSecs = now() - T0;
    if (!Cold.Ok || Cold.CacheHit) {
      std::fprintf(stderr, "FAIL: cold compile of %s: %s\n",
                   benchAlgorithmName(Algs[I]), Cold.Error.Message.c_str());
      Ok = false;
      continue;
    }
    double WarmSecs = 0.0;
    for (unsigned W = 0; W < WarmRepeats; ++W) {
      R.Id = NextId++;
      T0 = now();
      ServiceResponse Warm = Service.handle(R);
      WarmSecs += now() - T0;
      if (!Warm.Ok || !Warm.CacheHit || Warm.Artifact != Cold.Artifact) {
        std::fprintf(stderr,
                     "FAIL: warm compile of %s missed or diverged\n",
                     benchAlgorithmName(Algs[I]));
        Ok = false;
        break;
      }
    }
    WarmSecs /= WarmRepeats;
    ColdTotal += ColdSecs;
    WarmTotal += WarmSecs;
    std::printf("%-8s | %10.2f | %10.1f | %7.0fx\n",
                benchAlgorithmName(Algs[I]), 1e3 * ColdSecs, 1e6 * WarmSecs,
                ColdSecs / WarmSecs);
    Json.metric(std::string("cold_compile_ms_") +
                    benchAlgorithmName(Algs[I]),
                1e3 * ColdSecs, "ms");
    Json.metric(std::string("warm_compile_us_") +
                    benchAlgorithmName(Algs[I]),
                1e6 * WarmSecs, "us");
  }
  double Speedup = ColdTotal / WarmTotal;
  std::printf("\nwarm-cache speedup overall: %.0fx\n\n", Speedup);
  Json.metric("warm_speedup", Speedup, "x");
  if (Speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: warm-cache compiles only %.1fx faster than cold "
                 "(bar: 10x)\n",
                 Speedup);
    Ok = false;
  }

  //===--- Warm restart through the disk tier ---------------------------===//

  // A daemon restart empties the memory cache; the disk tier is what makes
  // the *next* daemon warm. Compile everything once against a disk-backed
  // service, tear it down (the crash/upgrade), and time the same compiles
  // on a fresh service over the same directory: every one must be a cache
  // hit with a bit-identical artifact, and far closer to a memory-warm
  // compile than to a cold one.
  char DiskDirBuf[] = "/tmp/asdf-bench-disk-XXXXXX";
  const char *DiskDir = ::mkdtemp(DiskDirBuf);
  if (!DiskDir) {
    std::fprintf(stderr, "FAIL: mkdtemp for the disk-tier leg\n");
    Ok = false;
  } else {
    ServiceOptions DiskOpts;
    DiskOpts.Workers = 1;
    DiskOpts.DiskCacheDir = DiskDir;
    std::vector<std::string> ColdArtifacts;
    {
      AsdfService First(DiskOpts);
      for (size_t I = 0; I < Programs.size(); ++I) {
        ServiceResponse R =
            First.handle(compileRequest(Programs[I], NextId++));
        if (!R.Ok) {
          std::fprintf(stderr, "FAIL: disk-leg cold compile of %s: %s\n",
                       benchAlgorithmName(Algs[I]),
                       R.Error.Message.c_str());
          Ok = false;
        }
        ColdArtifacts.push_back(R.Artifact);
      }
      First.drain();
    } // Restart: the memory tier dies with the process.
    double BootT0 = now();
    AsdfService Reborn(DiskOpts);
    double BootSecs = now() - BootT0;
    double DiskWarmSecs = 0.0;
    for (size_t I = 0; I < Programs.size(); ++I) {
      double C0 = now();
      ServiceResponse R =
          Reborn.handle(compileRequest(Programs[I], NextId++));
      DiskWarmSecs += now() - C0;
      if (!R.Ok || !R.CacheHit || R.Artifact != ColdArtifacts[I]) {
        std::fprintf(stderr,
                     "FAIL: restart compile of %s %s\n",
                     benchAlgorithmName(Algs[I]),
                     !R.Ok ? R.Error.Message.c_str()
                     : !R.CacheHit
                         ? "missed the disk cache"
                         : "served a different artifact than before");
        Ok = false;
      }
    }
    DiskWarmSecs /= Programs.size();
    DiskCacheStats DS = Reborn.diskCache()->stats();
    Reborn.drain();
    std::printf("disk tier: restart warmed %llu entrie(s) in %.2f ms; "
                "post-restart compile %.1f us vs %.2f ms cold (%.0fx)\n\n",
                static_cast<unsigned long long>(DS.WarmedEntries),
                1e3 * BootSecs, 1e6 * DiskWarmSecs,
                1e3 * ColdTotal / Programs.size(),
                ColdTotal / Programs.size() / DiskWarmSecs);
    Json.metric("disk_warm_boot_ms", 1e3 * BootSecs, "ms");
    Json.metric("disk_warm_compile_us", 1e6 * DiskWarmSecs, "us");
    Json.metric("disk_restart_speedup",
                ColdTotal / Programs.size() / DiskWarmSecs, "x");
    if (DS.Hits < Programs.size()) {
      std::fprintf(stderr,
                   "FAIL: only %llu disk hit(s) for %zu programs after "
                   "the restart\n",
                   static_cast<unsigned long long>(DS.Hits),
                   Programs.size());
      Ok = false;
    }
    ::system((std::string("rm -rf ") + DiskDir).c_str());
  }

  //===--- Mixed compile/run throughput through the worker pool ---------===//

  // The request mix: per program, one compile plus several runs with
  // distinct seeds. Recorded twice — once serially for the reference
  // bits, once submitted all at once to the pool.
  unsigned RunsPerProgram = Smoke ? 3 : 8;
  unsigned Shots = Smoke ? 16 : 64;
  std::vector<ServiceRequest> Mix;
  for (size_t I = 0; I < Programs.size(); ++I) {
    Mix.push_back(compileRequest(Programs[I], NextId++));
    for (unsigned S = 0; S < RunsPerProgram; ++S)
      Mix.push_back(
          runRequest(Programs[I], NextId++, Shots, 0x9000 + 31 * S));
  }

  // Serial reference on a fresh, single-worker service.
  std::vector<ServiceResponse> Want;
  {
    AsdfService Serial(ServiceOptions{1, ArtifactCache::DefaultByteBudget});
    for (const ServiceRequest &R : Mix)
      Want.push_back(Serial.handle(R));
  }

  AsdfService Pool(ServiceOptions{0, ArtifactCache::DefaultByteBudget});
  std::vector<ServiceResponse> Got(Mix.size());
  std::vector<double> LatencySecs(Mix.size());
  // Client-side latency through the same fixed-bucket histogram the
  // service uses, so the quantiles below are the service's math.
  obs::Histogram ClientLat;
  std::mutex DoneMu;
  std::condition_variable DoneCV;
  size_t DoneCount = 0;
  double T0 = now();
  for (size_t I = 0; I < Mix.size(); ++I) {
    double Submitted = now();
    bool Accepted =
        Pool.submit(Mix[I],
                    [&, I, Submitted](ServiceResponse R) {
                      Got[I] = std::move(R);
                      LatencySecs[I] = now() - Submitted;
                      std::lock_guard<std::mutex> Lock(DoneMu);
                      ++DoneCount;
                      DoneCV.notify_one();
                    }) == JobQueue::Submit::Accepted;
    if (!Accepted) {
      std::fprintf(stderr, "FAIL: pool rejected request %zu\n", I);
      Ok = false;
    }
  }
  {
    std::unique_lock<std::mutex> Lock(DoneMu);
    DoneCV.wait(Lock, [&] { return DoneCount == Mix.size(); });
  }
  double WallSecs = now() - T0;

  double PerSec = Mix.size() / WallSecs;
  double MeanMs = 0.0;
  for (double L : LatencySecs) {
    MeanMs += 1e3 * L / LatencySecs.size();
    ClientLat.observe(L);
  }
  double P50Ms = 1e3 * ClientLat.quantile(0.50);
  double P99Ms = 1e3 * ClientLat.quantile(0.99);
  std::printf("mixed load: %zu requests (%zu programs x [1 compile + %u "
              "run(s) x %u shot(s)]) on %u worker(s)\n",
              Mix.size(), Programs.size(), RunsPerProgram, Shots,
              Pool.workers());
  std::printf("  %.3f s wall -> %.1f requests/sec; latency mean %.2f ms, "
              "p50 %.2f ms, p99 %.2f ms\n",
              WallSecs, PerSec, MeanMs, P50Ms, P99Ms);
  Json.metric("requests_per_sec", PerSec, "req/sec");
  Json.metric("latency_mean_ms", MeanMs, "ms");
  Json.metric("latency_p50_ms", P50Ms, "ms");
  Json.metric("latency_p99_ms", P99Ms, "ms");

  //===--- Determinism audit against the serial reference ---------------===//

  size_t Mismatches = 0;
  for (size_t I = 0; I < Mix.size(); ++I) {
    if (!Got[I].Ok || Got[I].Results != Want[I].Results ||
        Got[I].Artifact != Want[I].Artifact)
      ++Mismatches;
  }
  if (Mismatches) {
    std::fprintf(stderr,
                 "FAIL: %zu of %zu pooled responses diverge from the "
                 "serial reference\n",
                 Mismatches, Mix.size());
    Ok = false;
  } else {
    std::printf("  determinism: all %zu pooled responses bit-identical to "
                "the serial reference\n",
                Mix.size());
  }

  //===--- Cache hit rate -----------------------------------------------===//

  CacheStats CS = Pool.cache().stats();
  double HitRate = CS.Hits + CS.Misses
                       ? double(CS.Hits) / double(CS.Hits + CS.Misses)
                       : 0.0;
  std::printf("  cache: %llu hit(s), %llu miss(es) -> %.0f%% hit rate, "
              "%llu insertion(s), %llu eviction(s)\n",
              static_cast<unsigned long long>(CS.Hits),
              static_cast<unsigned long long>(CS.Misses), 100.0 * HitRate,
              static_cast<unsigned long long>(CS.Insertions),
              static_cast<unsigned long long>(CS.Evictions));
  Json.metric("cache_hit_rate", HitRate, "ratio");
  if (CS.Hits == 0) {
    std::fprintf(stderr, "FAIL: the mixed workload produced no cache "
                         "hits\n");
    Ok = false;
  }

  //===--- Stats-op histogram agreement ---------------------------------===//

  // The stats op publishes each per-op latency histogram as bucket counts
  // plus p50/p90/p99. Fixed buckets make quantiles a pure function of the
  // counts, so a client rebuilding the histogram from the payload must
  // re-derive the byte-identical quantiles the service reported.
  json::Value Stats = Pool.statsJson();
  const json::Value *Lat = Stats.get("latency");
  if (!Lat) {
    std::fprintf(stderr, "FAIL: stats payload has no latency object\n");
    Ok = false;
  }
  struct OpCheck {
    const char *Key;
    uint64_t WantCount;
  };
  const OpCheck Checks[] = {
      {"compile", Programs.size()},
      {"run", Programs.size() * RunsPerProgram},
  };
  for (const OpCheck &C : Checks) {
    const json::Value *H = Lat ? Lat->get(C.Key) : nullptr;
    obs::Histogram Rebuilt;
    if (!H || !obs::Histogram::fromJson(*H, Rebuilt)) {
      std::fprintf(stderr, "FAIL: stats latency.%s missing or malformed\n",
                   C.Key);
      Ok = false;
      continue;
    }
    bool Agrees =
        Rebuilt.count() == C.WantCount &&
        Rebuilt.quantile(0.50) == H->get("p50")->asDouble() &&
        Rebuilt.quantile(0.90) == H->get("p90")->asDouble() &&
        Rebuilt.quantile(0.99) == H->get("p99")->asDouble();
    if (!Agrees) {
      std::fprintf(stderr,
                   "FAIL: latency.%s disagrees with the stats op "
                   "(count %llu want %llu; rebuilt p99 %g reported %g)\n",
                   C.Key, (unsigned long long)Rebuilt.count(),
                   (unsigned long long)C.WantCount, Rebuilt.quantile(0.99),
                   H->get("p99")->asDouble());
      Ok = false;
    } else {
      std::printf("  stats agreement: latency.%s count %llu, re-derived "
                  "p50/p90/p99 match the reported quantiles\n",
                  C.Key, (unsigned long long)Rebuilt.count());
    }
  }

  if (!Ok)
    return 1;
  std::printf("OK\n");
  return 0;
}
