//===- compile_throughput.cpp - End-to-end compilation throughput ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the compiler itself (every other bench measures its output):
/// end-to-end compiles/sec through CompileSession for the five §8.1
/// benchmark programs, plus an aggregated per-pass wall-time table from the
/// session instrumentation — the table that tells the next optimization PR
/// where compile time actually goes.
///
/// Usage: compile_throughput [--smoke] [--json <path>] [N] [repeats]
///        (default N=8 repeats=20; --smoke = N=5 repeats=2, sized for CI —
///        every program still compiles and the artifact sanity checks
///        still run)
///
/// Acceptance bar: every benchmark program compiles, the per-pass times
/// sum to (almost all of) the end-to-end wall time, and throughput on the
/// default workload stays above 5 compiles/sec — two orders of magnitude
/// of headroom against the ~0.001 compiles/sec a regression to quadratic
/// inlining would produce, yet tight enough to flag one.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace asdf;

namespace {

double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

struct PassTotal {
  double Seconds = 0.0;
  unsigned Runs = 0;
};

} // namespace

int main(int argc, char **argv) {
  BenchJson Json("compile_throughput", argc, argv);
  bool Smoke = false;
  std::vector<unsigned> Args;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else
      Args.push_back(std::atoi(argv[I]));
  }
  unsigned N = Args.size() > 0 ? Args[0] : (Smoke ? 5 : 8);
  unsigned Repeats = Args.size() > 1 ? Args[1] : (Smoke ? 2 : 20);

  const BenchAlgorithm Algs[] = {BenchAlgorithm::BV, BenchAlgorithm::DJ,
                                 BenchAlgorithm::Grover,
                                 BenchAlgorithm::Simon,
                                 BenchAlgorithm::PeriodFinding};

  Json.config("smoke", Smoke);
  Json.config("oracle_bits", N);
  Json.config("repeats", Repeats);
  std::printf("=== Compilation throughput (N=%u, %u repeat(s)%s) ===\n\n",
              N, Repeats, Smoke ? ", smoke" : "");
  std::printf("%-8s | %9s | %10s | %8s %8s\n", "bench", "compiles", "sec",
              "ms/comp", "comp/s");

  // Ordered per-pass totals across every compile, keyed stage:pass.
  std::vector<std::string> PassOrder;
  std::map<std::string, PassTotal> PassTotals;
  double TotalSecs = 0.0, InstrumentedSecs = 0.0;
  unsigned TotalCompiles = 0;
  bool Ok = true;

  for (BenchAlgorithm Alg : Algs) {
    BenchProgram P = makeBenchProgram(Alg, N);
    double T0 = now();
    for (unsigned R = 0; R < Repeats; ++R) {
      SessionOptions Opts;
      Opts.Entry = P.Entry;
      Opts.CollectTimings = true;
      CompileSession S(P.Source, P.Bindings, Opts);
      Circuit *C = S.flatCircuit();
      if (!C || C->Instrs.empty()) {
        std::fprintf(stderr, "%s/%u failed to compile:\n%s\n",
                     benchAlgorithmName(Alg), N,
                     S.errorMessage().c_str());
        Ok = false;
        continue;
      }
      for (const PassTiming &T : S.timings()) {
        std::string Key = std::string(pipelineStageName(T.Stage)) + ":" +
                          T.PassName;
        auto [It, Inserted] = PassTotals.emplace(Key, PassTotal());
        if (Inserted)
          PassOrder.push_back(Key);
        It->second.Seconds += T.Seconds;
        ++It->second.Runs;
        InstrumentedSecs += T.Seconds;
      }
    }
    double Secs = now() - T0;
    TotalSecs += Secs;
    TotalCompiles += Repeats;
    std::printf("%-8s | %9u | %10.4f | %8.2f %8.1f\n",
                benchAlgorithmName(Alg), Repeats, Secs,
                1e3 * Secs / Repeats, Repeats / Secs);
    Json.metric(std::string("compiles_per_sec_") + benchAlgorithmName(Alg),
                Repeats / Secs, "compiles/sec");
  }

  std::printf("\noverall: %u compiles in %.3f s -> %.1f compiles/sec\n\n",
              TotalCompiles, TotalSecs, TotalCompiles / TotalSecs);
  Json.metric("compiles_per_sec_overall", TotalCompiles / TotalSecs,
              "compiles/sec");

  std::printf("per-pass totals over all %u compiles:\n", TotalCompiles);
  std::printf("  %10s  %6s  %6s  %s\n", "total-sec", "share", "runs",
              "stage:pass");
  for (const std::string &Key : PassOrder) {
    const PassTotal &T = PassTotals[Key];
    std::printf("  %10.4f  %5.1f%%  %6u  %s\n", T.Seconds,
                100.0 * T.Seconds / InstrumentedSecs, T.Runs, Key.c_str());
  }

  // Sanity: the instrumented pass time must account for most of the wall
  // time (the rest is session setup, module cloning, and artifact moves).
  double Coverage = InstrumentedSecs / TotalSecs;
  Json.metric("instrumentation_coverage", Coverage, "ratio");
  std::printf("\ninstrumentation coverage: %.0f%% of wall time\n",
              100.0 * Coverage);
  if (Coverage < 0.5) {
    std::fprintf(stderr,
                 "FAIL: per-pass timings cover only %.0f%% of wall time — "
                 "untimed work crept into the pipeline\n",
                 100.0 * Coverage);
    Ok = false;
  }

  // Throughput bar, armed only at the full-scale workload.
  double PerSec = TotalCompiles / TotalSecs;
  if (!Smoke && Args.empty() && PerSec < 5.0) {
    std::fprintf(stderr,
                 "FAIL: %.1f compiles/sec is below the 5/sec bar\n",
                 PerSec);
    Ok = false;
  }
  if (!Ok)
    return 1;
  std::printf("OK\n");
  return 0;
}
