//===- mps_scaling.cpp - MPS engine qubits x chi scaling ------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Charts the tensor-network engine over its two scaling axes:
///
///   - **qubits** on GHZ prepare-and-measure, where the bond dimension is
///     exactly 2 and the cost per shot is linear in n — the regime far
///     beyond the dense engine's 2^n wall;
///   - **chi** on layered line-QAOA at generic angles, where each layer
///     can double the Schmidt rank: the bond cap trades fidelity
///     (accumulated discarded weight) for time, and the sweep shows both
///     sides of that trade.
///
/// Also cross-checks the 20-qubit low-entanglement point against the dense
/// engine (both exact there) and prints the auto-dispatch decision for the
/// wide QAOA workload.
///
/// Acceptance bars (full run): 100-qubit GHZ, 64 shots, exact (zero
/// truncations) in under 5 seconds; truncation error on the deep QAOA
/// workload non-increasing as chi doubles.
///
/// Usage: mps_scaling [--smoke] [--json <path>]
///        (--smoke trims widths and shots for CI and skips the timing
///        bars; --json writes the machine-readable perf trajectory)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"
#include "sim/mps/MPSBackend.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>

using namespace asdf;

namespace {

Circuit ghz(unsigned NumQubits) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  for (unsigned Q = 1; Q < NumQubits; ++Q)
    C.append(CircuitInstr::gate(GateKind::X, {Q - 1}, {Q}));
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

/// Layered QAOA on a line at generic angles: each RZZ+mixer layer can
/// double the rank across every cut, so `Layers` dials the entanglement
/// the chi sweep pushes against.
Circuit qaoaLine(unsigned NumQubits, unsigned Layers) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::gate(GateKind::H, {}, {Q}));
  for (unsigned L = 0; L < Layers; ++L) {
    for (unsigned Q = 0; Q + 1 < NumQubits; ++Q) {
      C.append(CircuitInstr::gate(GateKind::X, {Q}, {Q + 1}));
      C.append(CircuitInstr::gate(GateKind::RZ, {}, {Q + 1},
                                  0.7 + 0.13 * L));
      C.append(CircuitInstr::gate(GateKind::X, {Q}, {Q + 1}));
    }
    for (unsigned Q = 0; Q < NumQubits; ++Q)
      C.append(CircuitInstr::gate(GateKind::RX, {}, {Q}, 0.4 + 0.09 * L));
  }
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

struct MpsRun {
  double Seconds = 0.0;
  uint64_t MaxBond = 0;
  uint64_t Truncations = 0;
  double TruncError = 0.0;
  size_t OutcomeSpread = 0;
};

MpsRun timeMps(const Circuit &C, unsigned Shots, unsigned Chi) {
  MPSBackend Mps;
  SimStats Stats;
  RunOptions Opts;
  Opts.MpsChi = Chi;
  Opts.SimCounters = &Stats;
  auto Start = std::chrono::steady_clock::now();
  std::vector<ShotResult> Results = Mps.runBatch(C, Shots, 42, Opts);
  auto End = std::chrono::steady_clock::now();
  MpsRun R;
  R.Seconds = std::chrono::duration<double>(End - Start).count();
  R.MaxBond = Stats.MpsMaxBond;
  R.Truncations = Stats.MpsTruncations;
  R.TruncError = Stats.MpsTruncationError;
  std::map<std::string, unsigned> Counts;
  for (const ShotResult &Shot : Results)
    ++Counts[Shot.str()];
  R.OutcomeSpread = Counts.size();
  return R;
}

double seconds(const std::function<void()> &Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main(int argc, char **argv) {
  BenchJson Json("mps_scaling", argc, argv);
  bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const unsigned Shots = Smoke ? 8 : 64;
  Json.config("smoke", Smoke);
  Json.config("shots", Shots);
  std::printf("=== MPS scaling: qubits x chi, %u shots%s ===\n\n", Shots,
              Smoke ? " (smoke)" : "");

  // --- Qubit axis: GHZ at bond 2, linear cost per shot -------------------
  std::printf("--- GHZ line (exact at bond 2) ---\n");
  std::printf("%8s %12s %12s %9s %7s\n", "qubits", "seconds", "shots/sec",
              "maxbond", "trunc");
  bool GhzSane = true;
  double GhzAt100 = 0.0;
  uint64_t GhzTruncsAt100 = 0;
  for (unsigned N : {10, 20, 50, 100, 200, 400}) {
    if (Smoke && N > 50)
      continue;
    MpsRun R = timeMps(ghz(N), Shots, MPSBackend::DefaultChi);
    if (N == 100) {
      GhzAt100 = R.Seconds;
      GhzTruncsAt100 = R.Truncations;
    }
    // GHZ sanity: only the two fully-correlated strings can appear.
    if (R.OutcomeSpread > 2) {
      std::printf("  !! unexpected outcome spread (%zu strings)\n",
                  R.OutcomeSpread);
      GhzSane = false;
    }
    std::printf("%8u %12.4f %12.1f %9llu %7llu\n", N, R.Seconds,
                R.Seconds > 0 ? Shots / R.Seconds : 0.0,
                (unsigned long long)R.MaxBond,
                (unsigned long long)R.Truncations);
    Json.metric("ghz_" + std::to_string(N) + "q_seconds", R.Seconds, "s");
    Json.metric("ghz_" + std::to_string(N) + "q_max_bond",
                double(R.MaxBond), "count");
  }

  // --- Chi axis: deep line-QAOA, fidelity vs time ------------------------
  unsigned QaoaN = Smoke ? 16 : 40;
  unsigned Layers = Smoke ? 4 : 8;
  Circuit Qaoa = qaoaLine(QaoaN, Layers);
  std::printf("\n--- line-QAOA, %u qubits, %u layers (chi sweep) ---\n",
              QaoaN, Layers);
  std::printf("%8s %12s %12s %9s %14s\n", "chi", "seconds", "shots/sec",
              "maxbond", "trunc error");
  double PrevErr = -1.0;
  bool ErrMonotone = true;
  for (unsigned Chi : {4, 8, 16, 32, 64}) {
    if (Smoke && Chi > 16)
      continue;
    MpsRun R = timeMps(Qaoa, Shots, Chi);
    std::printf("%8u %12.4f %12.1f %9llu %14.3e\n", Chi, R.Seconds,
                R.Seconds > 0 ? Shots / R.Seconds : 0.0,
                (unsigned long long)R.MaxBond, R.TruncError);
    std::string Tag = "qaoa_chi" + std::to_string(Chi);
    Json.metric(Tag + "_seconds", R.Seconds, "s");
    Json.metric(Tag + "_max_bond", double(R.MaxBond), "count");
    Json.metric(Tag + "_trunc_error", R.TruncError, "weight");
    // More chi may never cost fidelity (weakly monotone per doubling).
    if (PrevErr >= 0.0 && R.TruncError > PrevErr + 1e-9)
      ErrMonotone = false;
    PrevErr = R.TruncError;
  }

  // --- Cross-check vs the dense engine at 20 qubits ----------------------
  {
    unsigned N = Smoke ? 12 : 20;
    Circuit C = qaoaLine(N, 2);
    MpsRun M = timeMps(C, Shots, MPSBackend::DefaultChi);
    double SvSecs = seconds([&] {
      runShots(C, Shots, 42, BackendKind::Statevector);
    });
    std::printf("\n--- %u-qubit line-QAOA: mps %.4f s vs sv %.4f s "
                "(both exact; bond %llu) ---\n",
                N, M.Seconds, SvSecs, (unsigned long long)M.MaxBond);
    Json.metric("crosscheck_mps_seconds", M.Seconds, "s");
    Json.metric("crosscheck_sv_seconds", SvSecs, "s");
  }

  // --- Auto-dispatch on the wide workload --------------------------------
  {
    Circuit Wide = qaoaLine(100, 1);
    CircuitProfile P = analyzeCircuit(Wide);
    CostModel Cost = estimateCost(Wide, &P);
    std::printf("\nauto-dispatch for 100-qubit line-QAOA: %s (estimated "
                "max bond %llu)\n",
                BackendRegistry::instance()
                    .select(Wide, BackendKind::Auto, &P)
                    .name(),
                (unsigned long long)Cost.estimatedMaxBond());
  }

  if (Smoke) {
    std::printf("\ntiming bars SKIPPED (smoke mode); ghz sanity: %s, "
                "chi-error monotonicity: %s\n",
                GhzSane ? "PASS" : "FAIL", ErrMonotone ? "PASS" : "FAIL");
    return GhzSane && ErrMonotone ? 0 : 1;
  }

  bool GhzBar = GhzAt100 < 5.0 && GhzTruncsAt100 == 0;
  std::printf("\n100-qubit GHZ, %u shots: %.4f s, %llu truncation(s) "
              "(target < 5 s, exact): %s\n",
              Shots, GhzAt100, (unsigned long long)GhzTruncsAt100,
              GhzBar ? "PASS" : "FAIL");
  std::printf("chi sweep truncation error weakly decreasing: %s\n",
              ErrMonotone ? "PASS" : "FAIL");
  Json.metric("ghz_100q_64shot_seconds", GhzAt100, "s");
  return (GhzSane && GhzBar && ErrMonotone) ? 0 : 1;
}
