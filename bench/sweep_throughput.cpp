//===- sweep_throughput.cpp - Parametric sweep vs recompile-per-point -----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what parametric compilation buys: a parameter sweep served by
/// the bind-params fast path (compile the $-parameterized program once,
/// re-materialize only the angle-dependent matrix entries per point)
/// against the honest baseline — a full textual recompile of the program
/// with the literals substituted, once per sweep point.
///
///   - sweep points/sec through runSweep on the precompiled parametric
///     circuit (bar: >= 10x the recompile path's points/sec);
///   - the recompile path's points/sec (compile + run per point);
///   - a bit-identity audit: every fast-path point's shot results must
///     equal the recompiled point's, bit for bit — the fast path is an
///     optimization, never an approximation;
///   - a service leg: the same sweep served as one single-point bind-run
///     request per point through an in-process AsdfService, with client
///     latency quantiles computed through the shared obs::Histogram and
///     checked for exact agreement against the `stats` op's reported
///     bind_run histogram.
///
/// Usage: sweep_throughput [--smoke] [--json <path>] [N] [points] [shots]
///        (default N=6 points=64 shots=1; --smoke shrinks to 16 points)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "obs/Metrics.h"
#include "service/Service.h"
#include "sim/Backend.h"
#include "sim/Simulator.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace asdf;

namespace {

double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

/// The sweep subject: a variational-style ansatz — rotation layers over
/// each basis family interleaved with basis translations — so the flat
/// circuit is rotation-rich (every layer re-materializes per point) while
/// the structure — and the fusion plan — is angle-independent.
const char *ParametricSource =
    "qpu kernel[N]() -> bit[N] {\n"
    "    return 'p'[N] | std[N].rotate($a) | pm[N].rotate($b) | "
    "ij[N].rotate($c) | pm[N] >> std[N] | std[N].rotate($c) | "
    "pm[N].rotate($a) | ij[N].rotate($b) | pm[N] >> std[N] | "
    "std[N].rotate($b) | pm[N].rotate($c) | ij[N].rotate($a) | "
    "std[N].measure\n"
    "}\n";

std::string formatAngle(double D) {
  char Buf[64];
  std::to_chars_result R = std::to_chars(Buf, Buf + sizeof(Buf), D);
  return std::string(Buf, R.ptr);
}

/// The literal program for one sweep point: the parametric source with
/// each $param replaced by its decimal value (shortest round-trip form, so
/// the lexer reads back the identical double).
std::string substituteAngles(const std::vector<double> &Point) {
  std::string Src = ParametricSource;
  const char *Names[] = {"$a", "$b", "$c"};
  for (unsigned K = 0; K < 3; ++K) {
    std::string Lit = formatAngle(Point[K]);
    size_t At;
    while ((At = Src.find(Names[K])) != std::string::npos)
      Src.replace(At, 2, Lit);
  }
  return Src;
}

} // namespace

int main(int argc, char **argv) {
  BenchJson Json("sweep_throughput", argc, argv);
  bool Smoke = false;
  std::vector<unsigned> Args;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else
      Args.push_back(std::atoi(argv[I]));
  }
  unsigned N = Args.size() > 0 ? Args[0] : 6;
  unsigned NumPoints = Args.size() > 1 ? Args[1] : (Smoke ? 16 : 64);
  unsigned Shots = Args.size() > 2 ? Args[2] : 1;
  const unsigned Reps = Smoke ? 3 : 5;
  const uint64_t Seed = 0x5EEDull;

  Json.config("smoke", Smoke);
  Json.config("qubits", N);
  Json.config("points", NumPoints);
  Json.config("shots", Shots);
  std::printf("=== Sweep throughput (N=%u, %u point(s) x %u shot(s)%s) "
              "===\n\n",
              N, NumPoints, Shots, Smoke ? ", smoke" : "");
  bool Ok = true;

  ProgramBindings Bindings;
  Bindings.DimVars["N"] = static_cast<int>(N);
  std::vector<std::vector<double>> Points;
  for (unsigned P = 0; P < NumPoints; ++P)
    Points.push_back({360.0 * P / NumPoints + 0.5,
                      180.0 * P / NumPoints + 0.25,
                      90.0 * P / NumPoints + 0.125});

  // Serial execution plan: with per-point states this small, worker-pool
  // spin-up would dominate both paths and mask the compile-vs-bind delta
  // the bench exists to measure. Fusion stays on — the fast path's
  // structure memoization is half the point.
  RunOptions Opts;
  Opts.Jobs = 1;

  //===--- Fast path: compile once, bind per point ----------------------===//

  double T0 = now();
  CompileSession Session(ParametricSource, Bindings);
  Circuit *Flat = Session.flatCircuit();
  if (!Flat) {
    std::fprintf(stderr, "FAIL: compile: %s\n",
                 Session.errorMessage().c_str());
    return 1;
  }
  double CompileSecs = now() - T0;
  SimBackend &Backend =
      BackendRegistry::instance().select(*Flat, BackendKind::Auto);

  // Each path runs Reps times and keeps its best wall time — single runs
  // in a shared container swing 3x on scheduler noise, and the bench
  // compares steady-state costs, not scheduling luck. The first rep of
  // each doubles as warm-up; results come from the final rep.
  std::vector<std::vector<ShotResult>> Sweep;
  double SweepSecs = 1e30;
  for (unsigned R = 0; R < Reps; ++R) {
    T0 = now();
    Sweep = Backend.runSweep(*Flat, Points, Shots, Seed, Opts);
    SweepSecs = std::min(SweepSecs, now() - T0);
  }

  //===--- Baseline: full recompile per point ---------------------------===//

  std::vector<std::vector<ShotResult>> Recompiled;
  double RecompileSecs = 1e30;
  for (unsigned R = 0; R < Reps; ++R) {
    Recompiled.clear();
    T0 = now();
    for (unsigned P = 0; P < NumPoints; ++P) {
      CompileSession PointSession(substituteAngles(Points[P]), Bindings);
      Circuit *Bound = PointSession.flatCircuit();
      if (!Bound) {
        std::fprintf(stderr, "FAIL: recompile of point %u: %s\n", P,
                     PointSession.errorMessage().c_str());
        return 1;
      }
      Recompiled.push_back(Backend.runBatch(
          *Bound, Shots, deriveSweepPointSeed(Seed, P), Opts));
    }
    RecompileSecs = std::min(RecompileSecs, now() - T0);
  }

  //===--- Bit-identity audit -------------------------------------------===//

  size_t Mismatches = 0;
  for (unsigned P = 0; P < NumPoints; ++P) {
    if (Sweep[P].size() != Recompiled[P].size()) {
      ++Mismatches;
      continue;
    }
    for (unsigned S = 0; S < Sweep[P].size(); ++S)
      if (Sweep[P][S].Bits != Recompiled[P][S].Bits) {
        ++Mismatches;
        break;
      }
  }
  if (Mismatches) {
    std::fprintf(stderr,
                 "FAIL: %zu of %u fast-path point(s) diverge from the "
                 "recompile reference\n",
                 Mismatches, NumPoints);
    Ok = false;
  } else {
    std::printf("determinism: all %u points bit-identical to the "
                "recompile-per-point reference\n",
                NumPoints);
  }

  //===--- Rates ---------------------------------------------------------===//

  double SweepRate = NumPoints / SweepSecs;
  double RecompileRate = NumPoints / RecompileSecs;
  double Speedup = SweepRate / RecompileRate;
  std::printf("one-time compile: %.2f ms\n", 1e3 * CompileSecs);
  std::printf("%-22s | %10s | %12s\n", "path", "total-ms", "points/sec");
  std::printf("%-22s | %10.2f | %12.1f\n", "bind-params sweep",
              1e3 * SweepSecs, SweepRate);
  std::printf("%-22s | %10.2f | %12.1f\n", "recompile per point",
              1e3 * RecompileSecs, RecompileRate);
  std::printf("\nsweep speedup: %.1fx\n", Speedup);
  Json.metric("compile_ms", 1e3 * CompileSecs, "ms");
  Json.metric("sweep_points_per_sec", SweepRate, "points/sec");
  Json.metric("recompile_points_per_sec", RecompileRate, "points/sec");
  Json.metric("sweep_speedup", Speedup, "x");

  if (Speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: bind-params sweep only %.1fx faster than full "
                 "recompile (bar: 10x)\n",
                 Speedup);
    Ok = false;
  }

  //===--- Service leg: one bind-run request per point ------------------===//

  // The daemon-shaped path: each point arrives as its own single-point
  // bind-run request, so the service's parametric cache (compile once,
  // rebind per request) carries the sweep. Client-side latencies go
  // through the same fixed-bucket histogram the service keeps, and the
  // quantiles a client re-derives from the stats op's bucket counts must
  // equal the service-reported ones exactly.
  {
    AsdfService Service(ServiceOptions{1, ArtifactCache::DefaultByteBudget});
    obs::Histogram ClientLat;
    double ServiceSecs = 0.0;
    for (unsigned P = 0; P < NumPoints && Ok; ++P) {
      ServiceRequest R;
      R.TheKind = ServiceRequest::Kind::BindRun;
      R.Id = P + 1;
      R.Source = ParametricSource;
      R.Bindings = Bindings;
      R.Shots = Shots;
      R.Seed = Seed;
      R.Jobs = 1;
      R.SweepParams = {"a", "b", "c"};
      R.Points = {Points[P]};
      double C0 = now();
      ServiceResponse Resp = Service.handle(R);
      double L = now() - C0;
      ServiceSecs += L;
      ClientLat.observe(L);
      if (!Resp.Ok) {
        std::fprintf(stderr, "FAIL: service bind-run of point %u: %s\n", P,
                     Resp.Error.Message.c_str());
        Ok = false;
      }
    }
    double ServiceRate = NumPoints / ServiceSecs;
    double P50Ms = 1e3 * ClientLat.quantile(0.50);
    double P99Ms = 1e3 * ClientLat.quantile(0.99);
    std::printf("\nservice leg: %u bind-run request(s) -> %.1f points/sec; "
                "per-request p50 %.3f ms, p99 %.3f ms\n",
                NumPoints, ServiceRate, P50Ms, P99Ms);
    Json.metric("service_points_per_sec", ServiceRate, "points/sec");
    Json.metric("service_request_p50_ms", P50Ms, "ms");
    Json.metric("service_request_p99_ms", P99Ms, "ms");

    json::Value Stats = Service.statsJson();
    const json::Value *Lat = Stats.get("latency");
    const json::Value *H = Lat ? Lat->get("bind_run") : nullptr;
    obs::Histogram Rebuilt;
    if (!H || !obs::Histogram::fromJson(*H, Rebuilt)) {
      std::fprintf(stderr,
                   "FAIL: stats latency.bind_run missing or malformed\n");
      Ok = false;
    } else if (Rebuilt.count() != NumPoints ||
               Rebuilt.quantile(0.50) != H->get("p50")->asDouble() ||
               Rebuilt.quantile(0.90) != H->get("p90")->asDouble() ||
               Rebuilt.quantile(0.99) != H->get("p99")->asDouble()) {
      std::fprintf(stderr,
                   "FAIL: latency.bind_run disagrees with the stats op "
                   "(count %llu want %u; rebuilt p99 %g reported %g)\n",
                   (unsigned long long)Rebuilt.count(), NumPoints,
                   Rebuilt.quantile(0.99), H->get("p99")->asDouble());
      Ok = false;
    } else {
      std::printf("stats agreement: latency.bind_run count %u, re-derived "
                  "p50/p90/p99 match the reported quantiles\n",
                  NumPoints);
    }
  }

  if (!Ok)
    return 1;
  std::printf("OK\n");
  return 0;
}
