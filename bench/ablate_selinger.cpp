//===- ablate_selinger.cpp - Multi-control decomposition ablation (§6.5) --===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the design choice the paper credits for the Grover results
/// (§6.5/§8.3): decomposing multi-controlled gates with Selinger's
/// controlled-iX (relative-phase Toffoli) scheme versus a naive full-Toffoli
/// V-chain. Prints T counts per control count, and verifies on the
/// simulator that both decompositions implement the same unitary for small
/// widths.
///
//===----------------------------------------------------------------------===//

#include "qcirc/Flatten.h"
#include "qcirc/Peephole.h"
#include "sim/Simulator.h"
#include "synth/GateEmitter.h"

#include <cstdio>

using namespace asdf;

namespace {

Circuit buildMcx(unsigned Controls, McDecompose Mode) {
  Module M;
  IRFunction *F = M.create("mcx");
  Builder B(&F->Body);
  std::vector<Value *> Qs;
  for (unsigned I = 0; I < Controls + 1; ++I)
    Qs.push_back(B.qalloc());
  std::vector<Value *> Ctls(Qs.begin(), Qs.end() - 1);
  std::vector<Value *> Out = B.gate(GateKind::X, Ctls, {Qs.back()});
  for (Value *V : Out)
    B.qfreez(V);
  B.ret({});
  decomposeMultiControls(M, Mode);
  DiagnosticEngine Diags;
  std::optional<Circuit> C = flattenToCircuit(M, "mcx", Diags);
  return C ? std::move(*C) : Circuit();
}

/// Reference MCX unitary.
bool checkAgainstReference(const Circuit &C, unsigned Controls) {
  unsigned N = Controls + 1;
  if (C.NumQubits > 10)
    return true; // Too wide to simulate; covered by smaller widths.
  uint64_t DataDim = uint64_t(1) << N;
  unsigned Anc = C.NumQubits - N;
  for (uint64_t K = 0; K < DataDim; ++K) {
    StateVector SV(C.NumQubits);
    SV.setBasisState(K << Anc);
    for (const CircuitInstr &I : C.Instrs)
      SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
    uint64_t Want = K;
    uint64_t CtlMask = ((uint64_t(1) << Controls) - 1) << 1;
    if ((K & CtlMask) == CtlMask)
      Want = K ^ 1;
    double Amp = std::abs(SV.amplitudes()[Want << Anc]);
    if (std::abs(Amp - 1.0) > 1e-9)
      return false;
  }
  return true;
}

} // namespace

int main() {
  std::printf("=== Ablation: Selinger controlled-iX vs naive Toffoli "
              "V-chain (T count per MCX) ===\n\n");
  std::printf("%10s %14s %14s %10s %10s\n", "controls", "Selinger T",
              "Naive T", "ratio", "verified");
  bool AllVerified = true;
  bool SelingerWins = true;
  for (unsigned Controls : {2u, 3u, 4u, 6u, 8u, 16u, 32u, 64u}) {
    Circuit Sel = buildMcx(Controls, McDecompose::Selinger);
    Circuit Naive = buildMcx(Controls, McDecompose::Naive);
    CircuitStats SS = Sel.stats(), NS = Naive.stats();
    bool Ver = checkAgainstReference(Sel, Controls) &&
               checkAgainstReference(Naive, Controls);
    AllVerified &= Ver;
    if (Controls > 2)
      SelingerWins &= SS.TCount < NS.TCount;
    std::printf("%10u %14lu %14lu %10.2f %10s\n", Controls,
                (unsigned long)SS.TCount, (unsigned long)NS.TCount,
                double(NS.TCount) / double(SS.TCount),
                Ver ? "yes" : "NO");
  }
  std::printf("\nShape check: Selinger needs fewer T gates for every width "
              "> 2: %s; unitaries verified: %s\n",
              SelingerWins ? "YES" : "NO", AllVerified ? "YES" : "NO");
  return (SelingerWins && AllVerified) ? 0 : 1;
}
