//===- backend_scaling.cpp - Statevector vs stabilizer scaling ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Charts how the two simulation backends scale on GHZ prepare-and-measure
/// circuits (H + CX ladder + measure-all): the dense engine doubles its
/// work per qubit and stops at 26, while the CHP tableau runs the same
/// family to thousands of qubits in polynomial time. Also shows multi-shot
/// amortization: the statevector backend simulates the gate prefix once
/// and forks it per shot.
///
/// Acceptance bar from the backend-subsystem issue: 500-qubit GHZ
/// prepare-and-measure under one second on the stabilizer backend.
///
/// Usage: backend_scaling [--smoke]   (--smoke trims the sweep to seconds
/// for CI: small widths, fewer shots, outcome sanity instead of the
/// timing bar)
///
//===----------------------------------------------------------------------===//

#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"

#include <chrono>
#include <cstdio>
#include <cstring>

using namespace asdf;

namespace {

Circuit ghz(unsigned NumQubits) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  for (unsigned Q = 1; Q < NumQubits; ++Q)
    C.append(CircuitInstr::gate(GateKind::X, {Q - 1}, {Q}));
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

double secondsFor(const Circuit &C, unsigned Shots, BackendKind Kind) {
  auto Start = std::chrono::steady_clock::now();
  std::map<std::string, unsigned> Counts = runShots(C, Shots, 42, Kind);
  auto End = std::chrono::steady_clock::now();
  // GHZ sanity: only the two fully-correlated strings appear.
  if (Counts.size() > 2)
    std::printf("  !! unexpected outcome spread (%zu strings)\n",
                Counts.size());
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const unsigned Shots = Smoke ? 16 : 64;
  std::printf("=== Backend scaling: GHZ prepare-and-measure, %u shots%s ===\n\n",
              Shots, Smoke ? " (smoke)" : "");

  std::printf("--- statevector (dense amplitudes, 2^n) ---\n");
  std::printf("%8s %14s\n", "qubits", "seconds");
  for (unsigned N : {4, 8, 12, 16, 20, 22}) {
    if (Smoke && N > 12)
      continue;
    double Secs = secondsFor(ghz(N), Shots, BackendKind::Statevector);
    std::printf("%8u %14.4f\n", N, Secs);
  }

  std::printf("\n--- stabilizer (CHP tableau, poly(n)) ---\n");
  std::printf("%8s %14s\n", "qubits", "seconds");
  double At500 = 0.0;
  for (unsigned N : {4, 16, 64, 100, 250, 500, 1000, 2000}) {
    if (Smoke && N > 100)
      continue;
    double Secs = secondsFor(ghz(N), Shots, BackendKind::Stabilizer);
    if (N == 500)
      At500 = Secs / Shots; // single prepare-and-measure execution
    std::printf("%8u %14.4f\n", N, Secs);
  }

  std::printf("\n--- auto-dispatch ---\n");
  Circuit C = ghz(500);
  std::printf("ghz(500) classified Clifford: %s; auto selects: %s\n",
              analyzeCircuit(C).CliffordOnly ? "yes" : "no",
              BackendRegistry::instance()
                  .select(C, BackendKind::Auto)
                  .name());
  if (Smoke) {
    // The timing bar needs the full 500-qubit sweep; the smoke run has
    // already proven every path (both engines, dispatch, GHZ sanity).
    std::printf("500-qubit timing bar SKIPPED (smoke mode)\n");
    return 0;
  }
  std::printf("500-qubit GHZ single shot: %.4f s (target < 1 s): %s\n",
              At500, At500 < 1.0 ? "PASS" : "FAIL");
  return At500 < 1.0 ? 0 : 1;
}
