//===- backend_scaling.cpp - Statevector vs stabilizer scaling ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Charts how the two simulation backends scale on GHZ prepare-and-measure
/// circuits (H + CX ladder + measure-all): the dense engine doubles its
/// work per qubit while the CHP tableau runs the same family to thousands
/// of qubits in polynomial time. Also shows multi-shot amortization (the
/// statevector backend simulates the gate prefix once and forks it per
/// shot) and — the dense-engine headline — single-shot throughput at
/// >= 24 qubits: the strided block-fused amplitude-parallel plan versus
/// the serial unfused reference path.
///
/// Acceptance bars: 500-qubit GHZ prepare-and-measure under one second on
/// the stabilizer backend, and >= 3x single-shot dense speedup at the
/// 24-qubit workload (armed only with >= 4 hardware threads, where the
/// amplitude-parallel component can materialize).
///
/// Usage: backend_scaling [--smoke] [--json <path>]
///        (--smoke trims the sweep to seconds for CI: small widths, fewer
///        shots, outcome sanity instead of the timing bars; --json writes
///        the machine-readable perf trajectory)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>

using namespace asdf;

namespace {

Circuit ghz(unsigned NumQubits) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  for (unsigned Q = 1; Q < NumQubits; ++Q)
    C.append(CircuitInstr::gate(GateKind::X, {Q - 1}, {Q}));
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

/// The dense-engine stress circuit: layered RY/RZ/H rotations with CX
/// ladders — fusible runs, multi-qubit blocks, and a measure-all tail.
Circuit rotationDense(unsigned NumQubits, unsigned Layers) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  for (unsigned L = 0; L < Layers; ++L) {
    for (unsigned Q = 0; Q < NumQubits; ++Q) {
      C.append(CircuitInstr::gate(GateKind::RY, {}, {Q},
                                  0.3 + 0.1 * Q + 0.7 * L));
      C.append(CircuitInstr::gate(GateKind::RZ, {}, {Q},
                                  1.1 + 0.05 * Q + 0.3 * L));
      C.append(CircuitInstr::gate(GateKind::H, {}, {Q}));
    }
    for (unsigned Q = 1; Q < NumQubits; ++Q)
      C.append(CircuitInstr::gate(GateKind::X, {Q - 1}, {Q}));
  }
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

double secondsFor(const Circuit &C, unsigned Shots, BackendKind Kind) {
  auto Start = std::chrono::steady_clock::now();
  std::map<std::string, unsigned> Counts = runShots(C, Shots, 42, Kind);
  auto End = std::chrono::steady_clock::now();
  // GHZ sanity: only the two fully-correlated strings appear.
  if (Counts.size() > 2)
    std::printf("  !! unexpected outcome spread (%zu strings)\n",
                Counts.size());
  return std::chrono::duration<double>(End - Start).count();
}

double seconds(const std::function<void()> &Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main(int argc, char **argv) {
  BenchJson Json("backend_scaling", argc, argv);
  bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const unsigned Shots = Smoke ? 16 : 64;
  unsigned Cores = std::thread::hardware_concurrency();
  Json.config("smoke", Smoke);
  Json.config("shots", Shots);
  Json.config("hardware_threads", Cores);
  std::printf("=== Backend scaling: GHZ prepare-and-measure, %u shots%s ===\n\n",
              Shots, Smoke ? " (smoke)" : "");

  std::printf("--- statevector (dense amplitudes, 2^n) ---\n");
  std::printf("%8s %14s\n", "qubits", "seconds");
  for (unsigned N : {4, 8, 12, 16, 20, 22}) {
    if (Smoke && N > 12)
      continue;
    double Secs = secondsFor(ghz(N), Shots, BackendKind::Statevector);
    std::printf("%8u %14.4f\n", N, Secs);
    Json.metric("sv_ghz_" + std::to_string(N) + "q_seconds", Secs, "s");
  }

  std::printf("\n--- stabilizer (CHP tableau, poly(n)) ---\n");
  std::printf("%8s %14s\n", "qubits", "seconds");
  double At500 = 0.0;
  for (unsigned N : {4, 16, 64, 100, 250, 500, 1000, 2000}) {
    if (Smoke && N > 100)
      continue;
    double Secs = secondsFor(ghz(N), Shots, BackendKind::Stabilizer);
    if (N == 500)
      At500 = Secs / Shots; // single prepare-and-measure execution
    std::printf("%8u %14.4f\n", N, Secs);
    Json.metric("stab_ghz_" + std::to_string(N) + "q_seconds", Secs, "s");
  }

  std::printf("\n--- auto-dispatch ---\n");
  {
    Circuit C = ghz(500);
    std::printf("ghz(500) classified Clifford: %s; auto selects: %s\n",
                analyzeCircuit(C).CliffordOnly ? "yes" : "no",
                BackendRegistry::instance()
                    .select(C, BackendKind::Auto)
                    .name());
  }

  // --- Dense single-shot: strided/fused/amplitude-parallel vs serial ----
  // The low-shot/large-n regime the amplitude-parallel kernels exist for:
  // one shot, 2^24 amplitudes, nothing for shot-parallelism to grab.
  unsigned DenseN = Smoke ? 14 : 24;
  double RefSecs, OptSecs;
  double AmpsPerSec = 0.0;
  {
    Circuit C = rotationDense(DenseN, 2);
    StatevectorBackend Sv;
    RunOptions Ref; // the serial, unfused reference configuration
    Ref.Jobs = 1;
    Ref.Fuse = false;
    Ref.Parallel = ParallelMode::Shot;
    RunOptions Opt; // the default optimized plan: fuse-k 3, hybrid workers
    SimStats Stats;
    Opt.SimCounters = &Stats;
    std::vector<ShotResult> A, B;
    RefSecs = seconds([&] { A = Sv.runBatch(C, 1, 42, Ref); });
    OptSecs = seconds([&] { B = Sv.runBatch(C, 1, 42, Opt); });
    bool Same = A[0].Bits == B[0].Bits;
    uint64_t Amps = Stats.AmplitudesTouched;
    AmpsPerSec = OptSecs > 0 ? double(Amps) / OptSecs : 0.0;
    std::printf("\n--- dense single-shot, %u qubits (rotation-dense) ---\n",
                DenseN);
    std::printf("serial unfused reference: %.3f s\n", RefSecs);
    std::printf("optimized plan (fused blocks + %u worker(s)): %.3f s "
                "(%.2fx), %.3g amps/sec\n",
                resolveJobCount(0), OptSecs,
                OptSecs > 0 ? RefSecs / OptSecs : 0.0, AmpsPerSec);
    std::printf("per-shot parity vs reference: %s\n",
                Same ? "bit-exact" : "MISMATCH");
    Json.config("dense_qubits", DenseN);
    Json.metric("dense_single_shot_ref_seconds", RefSecs, "s");
    Json.metric("dense_single_shot_opt_seconds", OptSecs, "s");
    Json.metric("dense_single_shot_speedup",
                OptSecs > 0 ? RefSecs / OptSecs : 0.0, "x");
    Json.metric("dense_gate_kernels", double(Stats.GatesApplied),
                "count");
    Json.metric("dense_fused_ops", double(Stats.FusedOps), "count");
    Json.metric("dense_fused_blocks", double(Stats.FusedBlocks),
                "count");
    Json.metric("dense_amplitudes_touched", double(Amps), "count");
    Json.metric("dense_amps_per_sec", AmpsPerSec, "amps/sec");
    if (!Same)
      return 1;
  }

  if (Smoke) {
    // The timing bars need the full-scale sweeps; the smoke run has
    // already proven every path (both engines, dispatch, GHZ sanity, the
    // dense plan parity check).
    std::printf("\ntiming bars SKIPPED (smoke mode)\n");
    return 0;
  }
  Json.metric("stab_ghz_500q_single_shot_seconds", At500, "s");
  std::printf("\n500-qubit GHZ single shot: %.4f s (target < 1 s): %s\n",
              At500, At500 < 1.0 ? "PASS" : "FAIL");
  double Speedup = OptSecs > 0 ? RefSecs / OptSecs : 0.0;
  if (Cores < 4) {
    std::printf("dense single-shot >= 3x bar SKIPPED (needs >= 4 hardware "
                "threads; measured %.2fx on %u)\n",
                Speedup, Cores);
    return At500 < 1.0 ? 0 : 1;
  }
  std::printf("dense single-shot speedup at %uq: %.2fx (target >= 3x): %s\n",
              DenseN, Speedup, Speedup >= 3.0 ? "PASS" : "FAIL");
  return (At500 < 1.0 && Speedup >= 3.0) ? 0 : 1;
}
