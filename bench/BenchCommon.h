//===- BenchCommon.h - Shared benchmark program generators (§8.1) ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for the five benchmark programs of §8.1, written in the
/// Qwerty DSL and parameterized on the oracle input size:
///
///   - Bernstein-Vazirani with the alternating secret 1010...,
///   - Deutsch-Jozsa with the balanced XOR-of-all-bits oracle,
///   - Grover's search for the all-ones item (iterations capped at 12),
///   - Simon's algorithm with a nonzero secret (s = 0...01),
///   - QFT-based period finding with a bitmasking oracle.
///
/// Grover's repetitions are unrolled textually, mirroring how Asdf unrolls
/// loops during AST expansion (§4).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_BENCH_BENCHCOMMON_H
#define ASDF_BENCH_BENCHCOMMON_H

#include "baselines/Baselines.h"
#include "compiler/CompileSession.h"

#include <string>
#include <vector>

namespace asdf {

/// Machine-readable perf trajectory for one bench run. Construct it first
/// thing in main: it strips "--json <path>" from argv (so the positional
/// parsing every bench does stays untouched) and, when a path was given,
/// writes on destruction (or an explicit write()) a JSON document of the
/// form
///
///   {"bench": "<name>",
///    "config": {"qubits": 20, "smoke": false, ...},
///    "metrics": [{"name": "...", "value": 1.23, "unit": "s"}, ...]}
///
/// Without --json it is inert, so every bench can record unconditionally.
class BenchJson {
public:
  BenchJson(std::string BenchName, int &Argc, char **Argv);
  ~BenchJson();
  BenchJson(const BenchJson &) = delete;
  BenchJson &operator=(const BenchJson &) = delete;

  /// True when a --json path was given (metrics will be written).
  bool enabled() const { return !Path.empty(); }

  void config(const std::string &Key, const std::string &Value);
  void config(const std::string &Key, const char *Value);
  void config(const std::string &Key, double Value);
  void config(const std::string &Key, long long Value);
  void config(const std::string &Key, unsigned Value);
  void config(const std::string &Key, bool Value);

  /// Records one metric sample. \p Unit is free-form ("s", "shots/sec",
  /// "amps/sec", "x", "count"...).
  void metric(const std::string &Name, double Value,
              const std::string &Unit);

  /// Writes the file now; returns false (and reports to stderr) on I/O
  /// failure. Destruction will not write again after an explicit call.
  bool write();

private:
  std::string Name;
  std::string Path;
  std::vector<std::pair<std::string, std::string>> Config; // key, raw JSON
  struct Metric {
    std::string Name, Unit;
    double Value;
  };
  std::vector<Metric> Metrics;
  bool Written = false;
};

/// A ready-to-compile benchmark program.
struct BenchProgram {
  std::string Source;
  ProgramBindings Bindings;
  std::string Entry = "kernel";
};

/// Builds the Qwerty program for \p Alg at oracle input size \p N.
BenchProgram makeBenchProgram(BenchAlgorithm Alg, unsigned N);

/// Compiles the Asdf version of a benchmark down to a flat circuit (with
/// the full optimization pipeline) and applies the common -O3 transpiler
/// pass, matching the paper's methodology (§8.3). Aborts on compile errors.
Circuit compileAsdfBenchmark(BenchAlgorithm Alg, unsigned N);

/// Builds a baseline compiler's circuit and applies the same -O3 pass.
Circuit buildBaselineBenchmark(BenchAlgorithm Alg, BaselineStyle Style,
                               unsigned N);

/// A Q#-idiomatic restructuring of a benchmark: operations passed around as
/// values with functor applications, compiled *without* inlining — the
/// structure whose QIR exercises the callables API (Table 1).
BenchProgram makeQSharpStyleProgram(BenchAlgorithm Alg, unsigned N);

} // namespace asdf

#endif // ASDF_BENCH_BENCHCOMMON_H
