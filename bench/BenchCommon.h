//===- BenchCommon.h - Shared benchmark program generators (§8.1) ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for the five benchmark programs of §8.1, written in the
/// Qwerty DSL and parameterized on the oracle input size:
///
///   - Bernstein-Vazirani with the alternating secret 1010...,
///   - Deutsch-Jozsa with the balanced XOR-of-all-bits oracle,
///   - Grover's search for the all-ones item (iterations capped at 12),
///   - Simon's algorithm with a nonzero secret (s = 0...01),
///   - QFT-based period finding with a bitmasking oracle.
///
/// Grover's repetitions are unrolled textually, mirroring how Asdf unrolls
/// loops during AST expansion (§4).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_BENCH_BENCHCOMMON_H
#define ASDF_BENCH_BENCHCOMMON_H

#include "baselines/Baselines.h"
#include "compiler/CompileSession.h"

#include <string>

namespace asdf {

/// A ready-to-compile benchmark program.
struct BenchProgram {
  std::string Source;
  ProgramBindings Bindings;
  std::string Entry = "kernel";
};

/// Builds the Qwerty program for \p Alg at oracle input size \p N.
BenchProgram makeBenchProgram(BenchAlgorithm Alg, unsigned N);

/// Compiles the Asdf version of a benchmark down to a flat circuit (with
/// the full optimization pipeline) and applies the common -O3 transpiler
/// pass, matching the paper's methodology (§8.3). Aborts on compile errors.
Circuit compileAsdfBenchmark(BenchAlgorithm Alg, unsigned N);

/// Builds a baseline compiler's circuit and applies the same -O3 pass.
Circuit buildBaselineBenchmark(BenchAlgorithm Alg, BaselineStyle Style,
                               unsigned N);

/// A Q#-idiomatic restructuring of a benchmark: operations passed around as
/// values with functor applications, compiled *without* inlining — the
/// structure whose QIR exercises the callables API (Table 1).
BenchProgram makeQSharpStyleProgram(BenchAlgorithm Alg, unsigned N);

} // namespace asdf

#endif // ASDF_BENCH_BENCHCOMMON_H
