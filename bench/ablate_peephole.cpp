//===- ablate_peephole.cpp - Relaxed peephole ablation (§6.5, Fig. 10) ----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the relaxed peephole optimization of Liu, Bello, and Zhou:
/// rewriting a multi-controlled X targeting a |-> ancilla into a
/// multi-controlled Z (Fig. 10). This is what simplifies f.sign oracles in
/// Bernstein-Vazirani and Grover's; the bench compiles those benchmarks
/// with and without peepholes and reports gate counts and ancilla usage.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <cstdlib>

using namespace asdf;

namespace {

Circuit compileWith(BenchAlgorithm Alg, unsigned N, bool Peephole) {
  BenchProgram P = makeBenchProgram(Alg, N);
  SessionOptions Opts;
  Opts.Entry = P.Entry;
  if (!Peephole)
    Opts.Plan = presetPlan("no-peephole");
  CompileSession S(P.Source, P.Bindings, Opts);
  Circuit *C = S.flatCircuit();
  if (!C) {
    std::fprintf(stderr, "compile failed: %s\n", S.errorMessage().c_str());
    std::abort();
  }
  return std::move(*C);
}

} // namespace

int main() {
  std::printf("=== Ablation: relaxed peephole (MCX on |-> ancilla -> MCZ, "
              "Fig. 10) ===\n\n");
  std::printf("%-8s %6s | %10s %10s | %10s %10s | %8s %8s\n", "bench", "N",
              "gates(off)", "gates(on)", "T(off)", "T(on)", "qub(off)",
              "qub(on)");
  bool Helps = true;
  for (BenchAlgorithm Alg : {BenchAlgorithm::BV, BenchAlgorithm::DJ,
                             BenchAlgorithm::Grover}) {
    for (unsigned N : {8u, 16u}) {
      Circuit Off = compileWith(Alg, N, false);
      Circuit On = compileWith(Alg, N, true);
      CircuitStats SOff = Off.stats(), SOn = On.stats();
      std::printf("%-8s %6u | %10lu %10lu | %10lu %10lu | %8u %8u\n",
                  benchAlgorithmName(Alg), N, (unsigned long)SOff.Total,
                  (unsigned long)SOn.Total, (unsigned long)SOff.TCount,
                  (unsigned long)SOn.TCount, Off.NumQubits, On.NumQubits);
      Helps = Helps && SOn.Total <= SOff.Total &&
              On.NumQubits <= Off.NumQubits;
    }
  }
  std::printf("\nShape check: peepholes never hurt gate or qubit counts: "
              "%s\n",
              Helps ? "YES" : "NO");
  return Helps ? 0 : 1;
}
