//===- shot_throughput.cpp - Shot-parallel + fusion throughput ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Charts the dense execution plan on a rotation-dense circuit (layered
/// RY/RZ over every wire with CX ladders — the gate mix of Grover and
/// period finding after decomposition): shots/sec versus worker count with
/// fusion on and off, plus the single-shot fusion gain on the prefix.
///
/// Also re-proves the determinism contract where it matters most: every
/// (jobs, fuse) configuration must return bit-identical per-shot results.
///
/// Usage: shot_throughput [--smoke] [--json <path>] [qubits] [shots] [layers]
///        (default 20 1000 4; --smoke = 12 300 3, sized for CI runners —
///        every path and the bit-parity check still run, the timing bar
///        auto-disarms below the full-scale workload; --json writes the
///        machine-readable perf trajectory)
///
/// Acceptance bar from the execution-plan issue: >= 3x throughput at
/// jobs=4 vs jobs=1 on the default 20-qubit 1000-shot circuit. The check
/// is skipped (exit 0) on machines with fewer than 4 hardware threads,
/// where the speedup physically cannot materialize.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "sim/Fusion.h"
#include "sim/StatevectorBackend.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

using namespace asdf;

namespace {

/// L layers of per-wire RY/RZ rotations plus a CX ladder, then measure-all:
/// dense in fusible single-qubit runs and in per-shot measurement work.
Circuit rotationDense(unsigned NumQubits, unsigned Layers) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  for (unsigned L = 0; L < Layers; ++L) {
    for (unsigned Q = 0; Q < NumQubits; ++Q) {
      C.append(CircuitInstr::gate(GateKind::RY, {}, {Q},
                                  0.3 + 0.1 * Q + 0.7 * L));
      C.append(CircuitInstr::gate(GateKind::RZ, {}, {Q},
                                  1.1 + 0.05 * Q + 0.3 * L));
      C.append(CircuitInstr::gate(GateKind::T, {}, {Q}));
    }
    for (unsigned Q = 1; Q < NumQubits; ++Q)
      C.append(CircuitInstr::gate(GateKind::X, {Q - 1}, {Q}));
  }
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

double seconds(const std::function<void()> &Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main(int argc, char **argv) {
  BenchJson Json("shot_throughput", argc, argv);
  bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  int ArgBase = Smoke ? 2 : 1;
  unsigned NumQubits = argc > ArgBase ? std::atoi(argv[ArgBase]) : 20;
  unsigned Shots = argc > ArgBase + 1 ? std::atoi(argv[ArgBase + 1]) : 1000;
  unsigned Layers = argc > ArgBase + 2 ? std::atoi(argv[ArgBase + 2]) : 4;
  if (Smoke) {
    NumQubits = 12;
    Shots = 300;
    Layers = 3;
  }
  unsigned Cores = std::thread::hardware_concurrency();
  Json.config("smoke", Smoke);
  Json.config("qubits", NumQubits);
  Json.config("shots", Shots);
  Json.config("layers", Layers);
  Json.config("hardware_threads", Cores);

  Circuit C = rotationDense(NumQubits, Layers);
  StatevectorBackend Sv;
  FusedCircuit FC = fuseCircuit(C);
  std::printf("=== Shot throughput: %u qubits, %u shots, %u layers "
              "(%u hardware threads) ===\n",
              NumQubits, Shots, Layers, Cores);
  std::printf("fusion plan: %s\n\n", FC.summary().c_str());
  Json.config("fusion_plan", FC.summary());

  // Single-shot prefix gain: the whole rotation cascade runs once per call.
  {
    RunOptions Fused, Unfused;
    Fused.Jobs = Unfused.Jobs = 1;
    Unfused.Fuse = false;
    double TU = seconds([&] { Sv.runBatch(C, 1, 42, Unfused); });
    double TF = seconds([&] { Sv.runBatch(C, 1, 42, Fused); });
    std::printf("single shot: unfused %.4f s, fused %.4f s  (%.2fx)\n\n",
                TU, TF, TF > 0 ? TU / TF : 0.0);
    Json.metric("single_shot_unfused_seconds", TU, "s");
    Json.metric("single_shot_fused_seconds", TF, "s");
  }

  std::printf("%6s %8s %14s %14s %10s\n", "jobs", "fusion", "seconds",
              "shots/sec", "speedup");
  double Base = 0.0, FusedAt1 = 0.0, FusedAt4 = 0.0;
  for (bool Fuse : {false, true}) {
    for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
      RunOptions Opts;
      Opts.Jobs = Jobs;
      Opts.Fuse = Fuse;
      SimStats Stats;
      Opts.SimCounters = &Stats;
      double T = seconds([&] { Sv.runBatch(C, Shots, 42, Opts); });
      if (!Fuse && Jobs == 1)
        Base = T;
      if (Fuse && Jobs == 1)
        FusedAt1 = T;
      if (Fuse && Jobs == 4)
        FusedAt4 = T;
      std::printf("%6u %8s %14.4f %14.1f %9.2fx\n", Jobs,
                  Fuse ? "on" : "off", T, Shots / T,
                  Base > 0 ? Base / T : 1.0);
      std::string Tag = std::string("j") + std::to_string(Jobs) +
                        (Fuse ? "_fused" : "_unfused");
      Json.metric("shots_per_sec_" + Tag, Shots / T, "shots/sec");
      if (Fuse && Jobs == 1) {
        // The per-run counters ride along once, from the canonical config.
        Json.metric("fused_ops", double(Stats.FusedOps), "count");
        Json.metric("fused_blocks", double(Stats.FusedBlocks),
                    "count");
        Json.metric("amplitudes_touched",
                    double(Stats.AmplitudesTouched), "count");
        Json.metric("amps_per_sec",
                    T > 0 ? double(Stats.AmplitudesTouched) / T : 0.0,
                    "amps/sec");
      }
    }
  }

  // Determinism: the fastest and the slowest configuration agree bit-exactly.
  {
    RunOptions Serial, Parallel;
    Serial.Jobs = 1;
    Serial.Fuse = false;
    Parallel.Jobs = 0;
    unsigned CheckShots = Shots < 64 ? Shots : 64;
    std::vector<ShotResult> A = Sv.runBatch(C, CheckShots, 42, Serial);
    std::vector<ShotResult> B = Sv.runBatch(C, CheckShots, 42, Parallel);
    bool Same = true;
    for (unsigned S = 0; S < CheckShots; ++S)
      Same &= A[S].Bits == B[S].Bits;
    std::printf("\nper-shot parity, serial-unfused vs parallel-fused: %s\n",
                Same ? "bit-exact" : "MISMATCH");
    if (!Same)
      return 1;
  }

  double Speedup = FusedAt4 > 0 ? FusedAt1 / FusedAt4 : 0.0;
  std::printf("\njobs=4 vs jobs=1 (fused): %.2fx\n", Speedup);
  Json.metric("speedup_j4_vs_j1_fused", Speedup, "x");
  // Enforce the >=3x bar only where it is meaningful: the full-scale
  // default workload on a machine with at least 4 hardware threads.
  // Reduced smoke runs (CI shared runners, laptops) still exercise every
  // path and the parity check above, without a timing-noise gate.
  if (Cores < 4 || NumQubits < 20 || Shots < 1000) {
    std::printf("speedup bar SKIPPED (needs >= 4 hardware threads and the "
                "default 20-qubit 1000-shot workload)\n");
    return 0;
  }
  std::printf("target >= 3x: %s\n", Speedup >= 3.0 ? "PASS" : "FAIL");
  return Speedup >= 3.0 ? 0 : 1;
}
