//===- ablate_spancheck.cpp - Span checking scalability (§4.1) ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the headline type-checking claim (§4.1, Theorem B.6): checking
/// span({'0','1'}[k]) = span({'1','0'}[k]) — which naively enumerates 2^k
/// vectors — runs in polynomial time via factoring. Timings should grow
/// roughly quadratically in k, nowhere near 2^k.
///
//===----------------------------------------------------------------------===//

#include "basis/SpanCheck.h"

#include <benchmark/benchmark.h>

using namespace asdf;

namespace {

Basis litBasis(std::initializer_list<const char *> Strs) {
  std::vector<BasisVector> Vecs;
  for (const char *S : Strs)
    Vecs.push_back(BasisVector::fromString(S));
  return Basis::literal(BasisLiteral(std::move(Vecs)));
}

void BM_SpanCheckPower(benchmark::State &State) {
  unsigned K = State.range(0);
  Basis Lhs = litBasis({"0", "1"}).power(K);
  Basis Rhs = litBasis({"1", "0"}).power(K);
  for (auto _ : State) {
    bool Ok = spansEquivalent(Lhs, Rhs);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetComplexityN(K);
}

void BM_SpanCheckMergedLiterals(benchmark::State &State) {
  // Mixed case: a literal covering 2^8 vectors against factored elements.
  unsigned K = State.range(0);
  std::vector<BasisVector> Vecs;
  for (uint64_t I = 0; I < 256; ++I)
    Vecs.push_back(BasisVector(PrimitiveBasis::Std, 8, I));
  Basis Lhs = Basis::literal(BasisLiteral(std::move(Vecs)))
                  .tensor(litBasis({"0", "1"}).power(K));
  Basis Rhs = Basis::builtin(PrimitiveBasis::Std, 8 + K);
  for (auto _ : State) {
    bool Ok = spansEquivalent(Lhs, Rhs);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetComplexityN(K);
}

void BM_SpanCheckFourierFactoring(benchmark::State &State) {
  unsigned K = State.range(0);
  Basis Lhs = Basis::builtin(PrimitiveBasis::Fourier, K);
  Basis Rhs;
  for (unsigned I = 0; I < K; ++I)
    Rhs = Rhs.tensor(Basis::builtin(PrimitiveBasis::Fourier, 1));
  for (auto _ : State) {
    bool Ok = spansEquivalent(Lhs, Rhs);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetComplexityN(K);
}

} // namespace

BENCHMARK(BM_SpanCheckPower)->DenseRange(16, 128, 16)->Complexity();
BENCHMARK(BM_SpanCheckMergedLiterals)->DenseRange(16, 64, 16)->Complexity();
BENCHMARK(BM_SpanCheckFourierFactoring)->DenseRange(16, 128, 16)->Complexity();

BENCHMARK_MAIN();
