//===- ablate_inlining.cpp - Inlining effectiveness ablation (§8.2) -------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies §5.4's pipeline: with inlining on, every benchmark collapses
/// into one straight-line function (Base Profile eligible, zero callables);
/// with it off, functions, callables, and specializations remain. Also
/// reports Qwerty IR op and function counts for both configurations.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "codegen/QirEmitter.h"

#include <cstdio>
#include <cstdlib>
#include <functional>

using namespace asdf;

namespace {

struct IRCounts {
  unsigned Functions = 0;
  unsigned Ops = 0;
  unsigned CallIndirects = 0;
};

IRCounts countIR(const Module &M) {
  IRCounts C;
  C.Functions = M.Functions.size();
  for (const auto &F : M.Functions) {
    std::function<void(const Block &)> Walk = [&](const Block &B) {
      for (const auto &O : B.Ops) {
        ++C.Ops;
        C.CallIndirects += O->Kind == OpKind::CallIndirect;
        for (const auto &R : O->Regions)
          if (R)
            Walk(*R);
      }
    };
    Walk(F->Body);
  }
  return C;
}

} // namespace

int main() {
  std::printf("=== Ablation: effectiveness of the Section 5.4 inlining "
              "pipeline (N = 8) ===\n\n");
  std::printf("%-8s | %9s %7s %9s | %9s %7s %9s\n", "bench", "funcs(off)",
              "ops", "indirect", "funcs(on)", "ops", "indirect");
  bool SingleFunction = true;
  for (BenchAlgorithm Alg :
       {BenchAlgorithm::BV, BenchAlgorithm::DJ, BenchAlgorithm::Grover,
        BenchAlgorithm::PeriodFinding, BenchAlgorithm::Simon}) {
    BenchProgram P = makeBenchProgram(Alg, 8);
    SessionOptions Off, On;
    Off.Entry = On.Entry = P.Entry;
    Off.Plan = presetPlan("no-opt");
    CompileSession SOff(P.Source, P.Bindings, Off);
    CompileSession SOn(P.Source, P.Bindings, On);
    Module *MOff = SOff.qwertyIR();
    Module *MOn = SOn.qwertyIR();
    if (!MOff || !MOn) {
      std::fprintf(stderr, "compile failed\n");
      return 1;
    }
    IRCounts COff = countIR(*MOff);
    IRCounts COn = countIR(*MOn);
    SingleFunction &= COn.Functions == 1 && COn.CallIndirects == 0;
    std::printf("%-8s | %9u %7u %9u | %9u %7u %9u\n",
                benchAlgorithmName(Alg), COff.Functions, COff.Ops,
                COff.CallIndirects, COn.Functions, COn.Ops,
                COn.CallIndirects);
  }
  std::printf("\nShape check: with inlining, every benchmark is one "
              "function with zero indirect calls: %s\n",
              SingleFunction ? "YES (matches Section 8.2)" : "NO");
  return SingleFunction ? 0 : 1;
}
