//===- micro_synthesis.cpp - Basis translation synthesis microbench -------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks for the §6.3 synthesis pipeline: standardization-only
/// translations (pm[N] >> std[N]), predicated flips, permutation synthesis
/// (MMD), and the Fourier/QFT path, across sizes.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "synth/BasisSynth.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace asdf;

namespace {

/// Runs synthesis into a throwaway function; reports emitted gate count.
unsigned synthCount(const Basis &In, const Basis &Out) {
  Module M;
  IRFunction *F = M.create("t");
  Builder B(&F->Body);
  std::vector<Value *> Qs;
  for (unsigned I = 0; I < In.dim(); ++I)
    Qs.push_back(B.qalloc());
  GateEmitter E(B, Qs);
  synthesizeTranslation(E, In, Out);
  unsigned Count = 0;
  for (auto &O : F->Body.Ops)
    Count += O->Kind == OpKind::Gate;
  // Tear down (ops reference each other; drop from the back).
  while (!F->Body.Ops.empty()) {
    Op *Last = F->Body.Ops.back().get();
    Last->dropOperands();
    F->Body.Ops.pop_back();
  }
  return Count;
}

void BM_SynthStandardization(benchmark::State &State) {
  unsigned N = State.range(0);
  Basis In = Basis::builtin(PrimitiveBasis::Pm, N);
  Basis Out = Basis::builtin(PrimitiveBasis::Std, N);
  for (auto _ : State)
    benchmark::DoNotOptimize(synthCount(In, Out));
  State.SetComplexityN(N);
}

void BM_SynthPredicatedFlip(benchmark::State &State) {
  unsigned N = State.range(0);
  // {'1...1'} + {'0','1'} >> {'1...1'} + {'1','0'}: an MCX.
  EigenBits Ones = (EigenBits(1) << N) - 1;
  Basis Pred = Basis::literal(
      BasisLiteral({BasisVector(PrimitiveBasis::Std, N, Ones)}));
  BasisVector V0(PrimitiveBasis::Std, 1, 0), V1(PrimitiveBasis::Std, 1, 1);
  Basis In = Pred.tensor(Basis::literal(BasisLiteral({V0, V1})));
  Basis Out = Pred.tensor(Basis::literal(BasisLiteral({V1, V0})));
  for (auto _ : State)
    benchmark::DoNotOptimize(synthCount(In, Out));
  State.SetComplexityN(N);
}

void BM_SynthQFT(benchmark::State &State) {
  unsigned N = State.range(0);
  Basis In = Basis::builtin(PrimitiveBasis::Std, N);
  Basis Out = Basis::builtin(PrimitiveBasis::Fourier, N);
  for (auto _ : State)
    benchmark::DoNotOptimize(synthCount(In, Out));
  State.SetComplexityN(N);
}

void BM_SynthRandomPermutation(benchmark::State &State) {
  unsigned Bits = State.range(0);
  std::mt19937_64 Rng(42);
  uint64_t Size = uint64_t(1) << Bits;
  std::vector<uint64_t> Perm(Size);
  for (uint64_t I = 0; I < Size; ++I)
    Perm[I] = I;
  std::shuffle(Perm.begin(), Perm.end(), Rng);
  for (auto _ : State)
    benchmark::DoNotOptimize(synthesizePermutation(Perm, Bits));
  State.SetComplexityN(Bits);
}

} // namespace

BENCHMARK(BM_SynthStandardization)->DenseRange(16, 128, 28);
BENCHMARK(BM_SynthPredicatedFlip)->DenseRange(8, 64, 8);
BENCHMARK(BM_SynthQFT)->DenseRange(4, 32, 4);
BENCHMARK(BM_SynthRandomPermutation)->DenseRange(2, 10, 2);

BENCHMARK_MAIN();
