//===- fig12_qubits.cpp - Reproduces Fig. 12 (a-d) ------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 12 of the paper: estimated physical qubits for each benchmark and
/// compiler across oracle input sizes, on the [[338,1,13]] surface-code
/// model (reported in kiloqubits like the paper's axes).
///
/// Expected shapes (§8.3): all compilers within one band on B-V/Simon/
/// period finding; on Grover, Quipper/Qiskit pay for extra ancillas.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "estimate/ResourceEstimator.h"

#include <algorithm>
#include <cstdio>

using namespace asdf;

int main() {
  std::printf("=== Fig. 12: estimated physical kiloqubits (lower is "
              "better) ===\n\n");
  const BenchAlgorithm Algs[] = {BenchAlgorithm::BV, BenchAlgorithm::Grover,
                                 BenchAlgorithm::Simon,
                                 BenchAlgorithm::PeriodFinding,
                                 BenchAlgorithm::DJ};
  const char *Sub[] = {"(a) Bernstein-Vazirani", "(b) Grover's",
                       "(c) Simon's", "(d) Period finding",
                       "(extra) Deutsch-Jozsa"};
  const unsigned Sizes[] = {16, 32, 64, 128};

  bool BandShapeHolds = true;
  for (unsigned A = 0; A < 5; ++A) {
    std::printf("--- Fig. 12%s ---\n", Sub[A]);
    std::printf("%10s %12s %12s %12s %12s\n", "input_size", "Asdf",
                "Qiskit", "Quipper", "Q#");
    for (unsigned N : Sizes) {
      ResourceEstimate Asdf =
          estimateResources(compileAsdfBenchmark(Algs[A], N));
      ResourceEstimate Qiskit = estimateResources(
          buildBaselineBenchmark(Algs[A], BaselineStyle::Qiskit, N));
      ResourceEstimate Quipper = estimateResources(
          buildBaselineBenchmark(Algs[A], BaselineStyle::Quipper, N));
      ResourceEstimate QSharp = estimateResources(
          buildBaselineBenchmark(Algs[A], BaselineStyle::QSharp, N));
      std::printf("%10u %12.1f %12.1f %12.1f %12.1f\n", N,
                  Asdf.PhysicalQubits / 1000.0,
                  Qiskit.PhysicalQubits / 1000.0,
                  Quipper.PhysicalQubits / 1000.0,
                  QSharp.PhysicalQubits / 1000.0);
      // Asdf stays within a modest factor of the best baseline everywhere
      // (the paper's claim: comparable cost, not dominance).
      double Best = std::min(
          {Qiskit.PhysicalQubits * 1.0, Quipper.PhysicalQubits * 1.0,
           QSharp.PhysicalQubits * 1.0});
      BandShapeHolds =
          BandShapeHolds && Asdf.PhysicalQubits <= 2.5 * Best;
    }
    std::printf("\n");
  }
  std::printf("Shape check vs the paper: Asdf stays within the baseline "
              "band on every benchmark: %s\n",
              BandShapeHolds ? "YES (matches Fig. 12)" : "NO (MISMATCH)");
  return BandShapeHolds ? 0 : 1;
}
