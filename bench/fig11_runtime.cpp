//===- fig11_runtime.cpp - Reproduces Fig. 11 (a-d) -----------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 11 of the paper: estimated fault-tolerant runtime of each benchmark
/// for each compiler across oracle input sizes 16/32/64/128, on the
/// [[338,1,13]] surface-code model. Deutsch-Jozsa is included for
/// completeness; the paper notes its results are virtually identical to
/// Bernstein-Vazirani.
///
/// Expected shapes (§8.3): all four compilers track each other on B-V,
/// Simon, and period finding; on Grover, Asdf and Q# significantly
/// outperform Qiskit and Quipper thanks to Selinger's multi-control
/// decomposition.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "estimate/ResourceEstimator.h"

#include <cstdio>

using namespace asdf;

int main() {
  std::printf("=== Fig. 11: estimated runtime on fault-tolerant hardware "
              "(seconds; lower is better) ===\n\n");
  const BenchAlgorithm Algs[] = {BenchAlgorithm::BV, BenchAlgorithm::Grover,
                                 BenchAlgorithm::Simon,
                                 BenchAlgorithm::PeriodFinding,
                                 BenchAlgorithm::DJ};
  const char *Sub[] = {"(a) Bernstein-Vazirani", "(b) Grover's",
                       "(c) Simon's", "(d) Period finding",
                       "(extra) Deutsch-Jozsa"};
  const unsigned Sizes[] = {16, 32, 64, 128};

  bool GroverShapeHolds = true;
  for (unsigned A = 0; A < 5; ++A) {
    std::printf("--- Fig. 11%s ---\n", Sub[A]);
    std::printf("%10s %14s %14s %14s %14s\n", "input_size", "Asdf",
                "Qiskit", "Quipper", "Q#");
    for (unsigned N : Sizes) {
      ResourceEstimate Asdf =
          estimateResources(compileAsdfBenchmark(Algs[A], N));
      ResourceEstimate Qiskit = estimateResources(
          buildBaselineBenchmark(Algs[A], BaselineStyle::Qiskit, N));
      ResourceEstimate Quipper = estimateResources(
          buildBaselineBenchmark(Algs[A], BaselineStyle::Quipper, N));
      ResourceEstimate QSharp = estimateResources(
          buildBaselineBenchmark(Algs[A], BaselineStyle::QSharp, N));
      std::printf("%10u %14.3e %14.3e %14.3e %14.3e\n", N,
                  Asdf.RuntimeSeconds, Qiskit.RuntimeSeconds,
                  Quipper.RuntimeSeconds, QSharp.RuntimeSeconds);
      if (Algs[A] == BenchAlgorithm::Grover)
        GroverShapeHolds = GroverShapeHolds &&
                           Asdf.RuntimeSeconds < Qiskit.RuntimeSeconds &&
                           QSharp.RuntimeSeconds < Qiskit.RuntimeSeconds;
    }
    std::printf("\n");
  }
  std::printf("Shape check vs the paper: Asdf and Q# beat Qiskit on "
              "Grover at every size: %s\n",
              GroverShapeHolds ? "YES (matches Fig. 11b)"
                               : "NO (MISMATCH)");
  return GroverShapeHolds ? 0 : 1;
}
