//===- ablate_ast_canon.cpp - AST canonicalization ablation (§4.2) --------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper argues for doing rewrites like ~~f -> f and
/// b3 & (b1 >> b2) -> b3+b1 >> b3+b2 at the AST level, where each costs ~5
/// lines versus ~50 at the IR level (§4.2). This ablation compiles programs
/// that exercise those rewrites with AST canonicalization on and off and
/// reports the flat-circuit cost. (The IR pipeline and synthesis still pick
/// up the slack when it is off — correctness is unchanged — but the
/// adjoint/predication machinery must run where a syntactic rewrite would
/// have sufficed.)
///
//===----------------------------------------------------------------------===//

#include "compiler/CompileSession.h"

#include <cstdio>
#include <cstdlib>

using namespace asdf;

namespace {

struct Case {
  const char *Name;
  const char *Source;
};

const Case Cases[] = {
    {"double-adjoint",
     "qpu kernel(q: qubit[4]) -> qubit[4] "
     "{ return q | ~~(pm[4] >> std[4]) }\n"},
    {"adj-translation",
     "qpu kernel(q: qubit[4]) -> qubit[4] "
     "{ return q | ~(std[4] >> pm[4]) }\n"},
    {"pred-translation",
     "qpu kernel(q: qubit[4]) -> qubit[4] "
     "{ return q | '11' & (pm[2] >> std[2]) }\n"},
    {"full-span-pred",
     "qpu kernel(q: qubit[4]) -> qubit[4] "
     "{ return q | std[3] & pm.flip }\n"},
};

unsigned gateCount(const char *Source, bool AstCanon) {
  SessionOptions Opts;
  if (!AstCanon)
    Opts.Plan = presetPlan("no-canon");
  CompileSession S(Source, {}, Opts);
  Circuit *C = S.flatCircuit();
  if (!C) {
    std::fprintf(stderr, "compile failed:\n%s\n", S.errorMessage().c_str());
    std::abort();
  }
  return C->stats().Total;
}

} // namespace

int main() {
  std::printf("=== Ablation: AST-level canonicalization (Section 4.2) "
              "===\n\n");
  std::printf("%-18s %12s %12s\n", "rewrite", "gates (off)", "gates (on)");
  bool NeverWorse = true;
  for (const Case &C : Cases) {
    unsigned Off = gateCount(C.Source, false);
    unsigned On = gateCount(C.Source, true);
    NeverWorse &= On <= Off;
    std::printf("%-18s %12u %12u\n", C.Name, Off, On);
  }
  std::printf("\nShape check: canonicalized compilation never emits more "
              "gates: %s\n",
              NeverWorse ? "YES" : "NO");
  return NeverWorse ? 0 : 1;
}
