//===- BenchCommon.cpp - Shared benchmark program generators (§8.1) -------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace asdf;

namespace {

std::string alternatingSecret(unsigned N) {
  std::string S;
  for (unsigned I = 0; I < N; ++I)
    S.push_back(I % 2 == 0 ? '1' : '0');
  return S;
}

std::string maskAllButLast(unsigned N) {
  std::string S(N, '1');
  S.back() = '0';
  return S;
}

std::string maskDropMsb(unsigned N) {
  std::string S(N, '1');
  S.front() = '0'; // f(x) = x mod 2^(N-1): additive period for QFT.
  return S;
}

} // namespace

BenchProgram asdf::makeBenchProgram(BenchAlgorithm Alg, unsigned N) {
  BenchProgram P;
  std::ostringstream OS;
  switch (Alg) {
  case BenchAlgorithm::BV:
    OS << R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";
    P.Bindings.Captures["f"]["secret"] =
        CaptureValue::bitsFromString(alternatingSecret(N));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;

  case BenchAlgorithm::DJ:
    OS << R"(
classical f[N](x: bit[N]) -> bit {
    return x.xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";
    P.Bindings.DimVars["N"] = N;
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;

  case BenchAlgorithm::Grover: {
    OS << R"(
classical oracle[N](x: bit[N]) -> bit {
    return x.and_reduce()
}
qpu kernel[N](oracle: cfunc[N, 1]) -> bit[N] {
    return 'p'[N])";
    unsigned Iters = groverIterations(N);
    for (unsigned I = 0; I < Iters; ++I)
      OS << " \\\n        | oracle.sign | {'p'[N]} >> {-'p'[N]}";
    OS << " \\\n        | std[N].measure\n}\n";
    P.Bindings.DimVars["N"] = N;
    P.Bindings.Captures["kernel"]["oracle"] =
        CaptureValue::classicalFunc("oracle");
    break;
  }

  case BenchAlgorithm::Simon:
    OS << R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = 'p'[N] + '0'[N] | f.xor | (pm[N] >> std[N]) + id[N]
    first, second = q | (std[N] + std[N]).measure
    return first
}
)";
    P.Bindings.Captures["f"]["mask"] =
        CaptureValue::bitsFromString(maskAllButLast(N));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;

  case BenchAlgorithm::PeriodFinding:
    OS << R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = 'p'[N] + '0'[N] | f.xor
    phase, out = q | fourier[N].measure + std[N].measure
    return phase
}
)";
    P.Bindings.Captures["f"]["mask"] =
        CaptureValue::bitsFromString(maskDropMsb(N));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;
  }
  if (P.Source.empty())
    P.Source = OS.str();
  return P;
}

Circuit asdf::compileAsdfBenchmark(BenchAlgorithm Alg, unsigned N) {
  BenchProgram P = makeBenchProgram(Alg, N);
  SessionOptions Opts;
  Opts.Entry = P.Entry;
  // The common -O3 transpiler pass (§8.3) rides the circuit stage of the
  // pipeline plan instead of being a bespoke post-processing call.
  Opts.Plan.Circuit = {"transpile-o3"};
  CompileSession S(P.Source, P.Bindings, Opts);
  Circuit *C = S.flatCircuit();
  if (!C) {
    std::fprintf(stderr, "benchmark %s/%u failed to compile:\n%s\n",
                 benchAlgorithmName(Alg), N, S.errorMessage().c_str());
    std::abort();
  }
  return std::move(*C);
}

Circuit asdf::buildBaselineBenchmark(BenchAlgorithm Alg, BaselineStyle Style,
                                     unsigned N) {
  return transpileO3(buildBaselineCircuit(Alg, Style, N));
}

BenchProgram asdf::makeQSharpStyleProgram(BenchAlgorithm Alg, unsigned N) {
  // Q# programs structure algorithms as small operations composed by
  // value, with Adjoint functor applications — e.g. Wojcieszyn's B-V uses
  // ApplyToEach(H, _), the oracle operation, and an adjoint prepare. With
  // inlining off, every operation reference becomes a callable_create and
  // every application a callable_invoke (§8.2).
  BenchProgram P;
  std::ostringstream OS;
  switch (Alg) {
  case BenchAlgorithm::BV:
  case BenchAlgorithm::DJ:
    OS << R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
qpu prepare[N](q: qubit[N]) -> qubit[N] {
    return q | std[N] >> pm[N]
}
qpu apply_oracle[N](q: qubit[N]) -> qubit[N] {
    return q | f.sign
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return '0'[N] | prepare | apply_oracle | ~prepare | std[N].measure
}
)";
    P.Bindings.Captures["f"]["secret"] =
        CaptureValue::bitsFromString(Alg == BenchAlgorithm::BV
                                         ? alternatingSecret(N)
                                         : std::string(N, '1'));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;

  case BenchAlgorithm::Grover: {
    OS << R"(
classical oracle[N](x: bit[N]) -> bit {
    return x.and_reduce()
}
qpu reflect[N](q: qubit[N]) -> qubit[N] {
    return q | {'p'[N]} >> {-'p'[N]}
}
qpu iteration[N](q: qubit[N]) -> qubit[N] {
    return q | oracle.sign | reflect
}
qpu kernel[N](oracle: cfunc[N, 1]) -> bit[N] {
    return 'p'[N])";
    unsigned Iters = groverIterations(N);
    for (unsigned I = 0; I < Iters; ++I)
      OS << " | iteration";
    OS << " | std[N].measure\n}\n";
    P.Bindings.DimVars["N"] = N;
    P.Bindings.Captures["kernel"]["oracle"] =
        CaptureValue::classicalFunc("oracle");
    break;
  }

  case BenchAlgorithm::Simon:
    OS << R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu prepare[N](q: qubit[N]) -> qubit[N] {
    return q | std[N] >> pm[N]
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = '0'[N] + '0'[N] | prepare + id[N] | f.xor | ~prepare + id[N]
    first, second = q | (std[N] + std[N]).measure
    return first
}
)";
    P.Bindings.Captures["f"]["mask"] =
        CaptureValue::bitsFromString(maskAllButLast(N));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;

  case BenchAlgorithm::PeriodFinding:
    OS << R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu prepare[N](q: qubit[N]) -> qubit[N] {
    return q | std[N] >> pm[N]
}
qpu to_fourier[N](q: qubit[N]) -> qubit[N] {
    return q | std[N] >> fourier[N]
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = '0'[N] + '0'[N] | prepare + id[N] | f.xor | ~to_fourier + id[N]
    phase, out = q | (std[N] + std[N]).measure
    return phase
}
)";
    P.Bindings.Captures["f"]["mask"] =
        CaptureValue::bitsFromString(maskDropMsb(N));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;
  }
  P.Source = OS.str();
  return P;
}
