//===- BenchCommon.cpp - Shared benchmark program generators (§8.1) -------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace asdf;

namespace {

/// Minimal JSON string escape (quotes, backslashes, control characters).
std::string jsonEscape(const std::string &S) {
  std::string R;
  R.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      R += "\\\"";
      break;
    case '\\':
      R += "\\\\";
      break;
    case '\n':
      R += "\\n";
      break;
    case '\t':
      R += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        R += Buf;
      } else {
        R.push_back(C);
      }
    }
  }
  return R;
}

/// Renders a double as a JSON number; non-finite values become null (JSON
/// has no inf/nan).
std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

} // namespace

BenchJson::BenchJson(std::string BenchName, int &Argc, char **Argv)
    : Name(std::move(BenchName)) {
  // Strip "--json <path>" from argv so positional bench parsing is
  // untouched wherever the flag lands.
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") != 0)
      continue;
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "%s: --json expects a file path\n", Name.c_str());
      std::exit(2);
    }
    Path = Argv[I + 1];
    for (int J = I; J + 2 < Argc; ++J)
      Argv[J] = Argv[J + 2];
    Argc -= 2;
    break;
  }
}

BenchJson::~BenchJson() {
  if (!Written)
    write();
}

void BenchJson::config(const std::string &Key, const std::string &Value) {
  Config.emplace_back(Key, "\"" + jsonEscape(Value) + "\"");
}
void BenchJson::config(const std::string &Key, const char *Value) {
  config(Key, std::string(Value));
}
void BenchJson::config(const std::string &Key, double Value) {
  Config.emplace_back(Key, jsonNumber(Value));
}
void BenchJson::config(const std::string &Key, long long Value) {
  Config.emplace_back(Key, std::to_string(Value));
}
void BenchJson::config(const std::string &Key, unsigned Value) {
  Config.emplace_back(Key, std::to_string(Value));
}
void BenchJson::config(const std::string &Key, bool Value) {
  Config.emplace_back(Key, Value ? "true" : "false");
}

void BenchJson::metric(const std::string &MetricName, double Value,
                       const std::string &Unit) {
  Metrics.push_back({MetricName, Unit, Value});
}

bool BenchJson::write() {
  Written = true;
  if (Path.empty())
    return true;
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "%s: cannot write bench JSON to '%s'\n",
                 Name.c_str(), Path.c_str());
    return false;
  }
  Out << "{\n  \"bench\": \"" << jsonEscape(Name) << "\",\n  \"config\": {";
  for (size_t I = 0; I < Config.size(); ++I)
    Out << (I ? ", " : "") << "\"" << jsonEscape(Config[I].first)
        << "\": " << Config[I].second;
  Out << "},\n  \"metrics\": [";
  for (size_t I = 0; I < Metrics.size(); ++I)
    Out << (I ? ",\n    " : "\n    ") << "{\"name\": \""
        << jsonEscape(Metrics[I].Name) << "\", \"value\": "
        << jsonNumber(Metrics[I].Value) << ", \"unit\": \""
        << jsonEscape(Metrics[I].Unit) << "\"}";
  Out << "\n  ]\n}\n";
  Out.flush();
  if (!Out) {
    std::fprintf(stderr, "%s: write to '%s' failed\n", Name.c_str(),
                 Path.c_str());
    return false;
  }
  return true;
}

namespace {

std::string alternatingSecret(unsigned N) {
  std::string S;
  for (unsigned I = 0; I < N; ++I)
    S.push_back(I % 2 == 0 ? '1' : '0');
  return S;
}

std::string maskAllButLast(unsigned N) {
  std::string S(N, '1');
  S.back() = '0';
  return S;
}

std::string maskDropMsb(unsigned N) {
  std::string S(N, '1');
  S.front() = '0'; // f(x) = x mod 2^(N-1): additive period for QFT.
  return S;
}

} // namespace

BenchProgram asdf::makeBenchProgram(BenchAlgorithm Alg, unsigned N) {
  BenchProgram P;
  std::ostringstream OS;
  switch (Alg) {
  case BenchAlgorithm::BV:
    OS << R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";
    P.Bindings.Captures["f"]["secret"] =
        CaptureValue::bitsFromString(alternatingSecret(N));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;

  case BenchAlgorithm::DJ:
    OS << R"(
classical f[N](x: bit[N]) -> bit {
    return x.xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";
    P.Bindings.DimVars["N"] = N;
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;

  case BenchAlgorithm::Grover: {
    OS << R"(
classical oracle[N](x: bit[N]) -> bit {
    return x.and_reduce()
}
qpu kernel[N](oracle: cfunc[N, 1]) -> bit[N] {
    return 'p'[N])";
    unsigned Iters = groverIterations(N);
    for (unsigned I = 0; I < Iters; ++I)
      OS << " \\\n        | oracle.sign | {'p'[N]} >> {-'p'[N]}";
    OS << " \\\n        | std[N].measure\n}\n";
    P.Bindings.DimVars["N"] = N;
    P.Bindings.Captures["kernel"]["oracle"] =
        CaptureValue::classicalFunc("oracle");
    break;
  }

  case BenchAlgorithm::Simon:
    OS << R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = 'p'[N] + '0'[N] | f.xor | (pm[N] >> std[N]) + id[N]
    first, second = q | (std[N] + std[N]).measure
    return first
}
)";
    P.Bindings.Captures["f"]["mask"] =
        CaptureValue::bitsFromString(maskAllButLast(N));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;

  case BenchAlgorithm::PeriodFinding:
    OS << R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = 'p'[N] + '0'[N] | f.xor
    phase, out = q | fourier[N].measure + std[N].measure
    return phase
}
)";
    P.Bindings.Captures["f"]["mask"] =
        CaptureValue::bitsFromString(maskDropMsb(N));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;
  }
  if (P.Source.empty())
    P.Source = OS.str();
  return P;
}

Circuit asdf::compileAsdfBenchmark(BenchAlgorithm Alg, unsigned N) {
  BenchProgram P = makeBenchProgram(Alg, N);
  SessionOptions Opts;
  Opts.Entry = P.Entry;
  // The common -O3 transpiler pass (§8.3) rides the circuit stage of the
  // pipeline plan instead of being a bespoke post-processing call.
  Opts.Plan.Circuit = {"transpile-o3"};
  CompileSession S(P.Source, P.Bindings, Opts);
  Circuit *C = S.flatCircuit();
  if (!C) {
    std::fprintf(stderr, "benchmark %s/%u failed to compile:\n%s\n",
                 benchAlgorithmName(Alg), N, S.errorMessage().c_str());
    std::abort();
  }
  return std::move(*C);
}

Circuit asdf::buildBaselineBenchmark(BenchAlgorithm Alg, BaselineStyle Style,
                                     unsigned N) {
  return transpileO3(buildBaselineCircuit(Alg, Style, N));
}

BenchProgram asdf::makeQSharpStyleProgram(BenchAlgorithm Alg, unsigned N) {
  // Q# programs structure algorithms as small operations composed by
  // value, with Adjoint functor applications — e.g. Wojcieszyn's B-V uses
  // ApplyToEach(H, _), the oracle operation, and an adjoint prepare. With
  // inlining off, every operation reference becomes a callable_create and
  // every application a callable_invoke (§8.2).
  BenchProgram P;
  std::ostringstream OS;
  switch (Alg) {
  case BenchAlgorithm::BV:
  case BenchAlgorithm::DJ:
    OS << R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
qpu prepare[N](q: qubit[N]) -> qubit[N] {
    return q | std[N] >> pm[N]
}
qpu apply_oracle[N](q: qubit[N]) -> qubit[N] {
    return q | f.sign
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return '0'[N] | prepare | apply_oracle | ~prepare | std[N].measure
}
)";
    P.Bindings.Captures["f"]["secret"] =
        CaptureValue::bitsFromString(Alg == BenchAlgorithm::BV
                                         ? alternatingSecret(N)
                                         : std::string(N, '1'));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;

  case BenchAlgorithm::Grover: {
    OS << R"(
classical oracle[N](x: bit[N]) -> bit {
    return x.and_reduce()
}
qpu reflect[N](q: qubit[N]) -> qubit[N] {
    return q | {'p'[N]} >> {-'p'[N]}
}
qpu iteration[N](q: qubit[N]) -> qubit[N] {
    return q | oracle.sign | reflect
}
qpu kernel[N](oracle: cfunc[N, 1]) -> bit[N] {
    return 'p'[N])";
    unsigned Iters = groverIterations(N);
    for (unsigned I = 0; I < Iters; ++I)
      OS << " | iteration";
    OS << " | std[N].measure\n}\n";
    P.Bindings.DimVars["N"] = N;
    P.Bindings.Captures["kernel"]["oracle"] =
        CaptureValue::classicalFunc("oracle");
    break;
  }

  case BenchAlgorithm::Simon:
    OS << R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu prepare[N](q: qubit[N]) -> qubit[N] {
    return q | std[N] >> pm[N]
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = '0'[N] + '0'[N] | prepare + id[N] | f.xor | ~prepare + id[N]
    first, second = q | (std[N] + std[N]).measure
    return first
}
)";
    P.Bindings.Captures["f"]["mask"] =
        CaptureValue::bitsFromString(maskAllButLast(N));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;

  case BenchAlgorithm::PeriodFinding:
    OS << R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu prepare[N](q: qubit[N]) -> qubit[N] {
    return q | std[N] >> pm[N]
}
qpu to_fourier[N](q: qubit[N]) -> qubit[N] {
    return q | std[N] >> fourier[N]
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = '0'[N] + '0'[N] | prepare + id[N] | f.xor | ~to_fourier + id[N]
    phase, out = q | (std[N] + std[N]).measure
    return phase
}
)";
    P.Bindings.Captures["f"]["mask"] =
        CaptureValue::bitsFromString(maskDropMsb(N));
    P.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    break;
  }
  P.Source = OS.str();
  return P;
}
