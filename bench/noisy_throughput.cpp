//===- noisy_throughput.cpp - Noisy-simulation throughput -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Charts the noise subsystem end to end:
///
///   1. dense quantum trajectories on a rotation-dense circuit — noisy
///      shots/sec versus worker count and the ideal-vs-noisy overhead
///      ratio (every gate pays one channel-sampling sweep);
///   2. the stabilizer Pauli-frame path on noisy GHZ ladders — noisy
///      Clifford shots/sec from 50 to 500 qubits, far beyond the dense
///      cap (the acceptance bar: >= 100 qubits must work);
///   3. a cross-engine parity check: a Pauli model on a random Clifford
///      circuit must give the same distribution on dense trajectories and
///      Pauli frames (total variation), so this harness cannot bit-rot
///      into measuring two different physics.
///
/// Usage: noisy_throughput [--smoke] [--json <path>] [qubits shots layers]
///        (default 16 2000 3; --smoke shrinks everything for CI; --json
///        writes the machine-readable perf trajectory)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "noise/NoiseModel.h"
#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"
#include "sim/StabilizerBackend.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

using namespace asdf;

namespace {

Circuit rotationDense(unsigned NumQubits, unsigned Layers) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  for (unsigned L = 0; L < Layers; ++L) {
    for (unsigned Q = 0; Q < NumQubits; ++Q) {
      C.append(CircuitInstr::gate(GateKind::RY, {}, {Q},
                                  0.3 + 0.1 * Q + 0.7 * L));
      C.append(CircuitInstr::gate(GateKind::RZ, {}, {Q},
                                  1.1 + 0.05 * Q + 0.3 * L));
    }
    for (unsigned Q = 1; Q < NumQubits; ++Q)
      C.append(CircuitInstr::gate(GateKind::X, {Q - 1}, {Q}));
  }
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

Circuit ghz(unsigned NumQubits) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  for (unsigned Q = 1; Q < NumQubits; ++Q)
    C.append(CircuitInstr::gate(GateKind::X, {Q - 1}, {Q}));
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

/// A hardware-flavored general model: damping plus depolarizing plus
/// readout error. Keeps the dense engine honest on the full Kraus path.
NoiseModel krausModel() {
  NoiseModel M;
  M.addDefaultChannel(KrausChannel::depolarizing(0.002));
  M.addGateChannel(GateKind::X, KrausChannel::amplitudeDamping(0.005));
  M.setReadoutError(0.01, 0.02);
  return M;
}

/// The Pauli-only analog for the stabilizer frame path.
NoiseModel pauliModel() {
  NoiseModel M;
  M.addDefaultChannel(KrausChannel::depolarizing(0.002));
  M.setReadoutError(0.01, 0.02);
  return M;
}

double seconds(const std::function<void()> &Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main(int argc, char **argv) {
  BenchJson Json("noisy_throughput", argc, argv);
  bool Smoke = false;
  int ArgBase = 1;
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    Smoke = true;
    ArgBase = 2;
  }
  unsigned NumQubits = argc > ArgBase ? std::atoi(argv[ArgBase]) : 16;
  unsigned Shots = argc > ArgBase + 1 ? std::atoi(argv[ArgBase + 1]) : 2000;
  unsigned Layers = argc > ArgBase + 2 ? std::atoi(argv[ArgBase + 2]) : 3;
  if (Smoke) {
    NumQubits = 10;
    Shots = 200;
    Layers = 2;
  }

  Json.config("smoke", Smoke);
  Json.config("qubits", NumQubits);
  Json.config("shots", Shots);
  Json.config("layers", Layers);
  std::printf("=== Noisy throughput: %u qubits, %u shots, %u layers%s ===\n\n",
              NumQubits, Shots, Layers, Smoke ? " (smoke)" : "");

  // --- 1. Dense trajectories: ideal vs noisy ------------------------------
  {
    Circuit C = rotationDense(NumQubits, Layers);
    NoiseModel M = krausModel();
    StatevectorBackend Sv;
    std::printf("--- statevector trajectories (general Kraus model) ---\n");
    std::printf("%6s %12s %12s %10s\n", "jobs", "ideal s", "noisy s",
                "overhead");
    double IdealAt1 = 0.0, NoisyAt1 = 0.0;
    for (unsigned Jobs : {1u, 2u, 4u}) {
      RunOptions Ideal, Noisy;
      Ideal.Jobs = Noisy.Jobs = Jobs;
      Noisy.Noise = &M;
      double TI = seconds([&] { Sv.runBatch(C, Shots, 42, Ideal); });
      double TN = seconds([&] { Sv.runBatch(C, Shots, 42, Noisy); });
      if (Jobs == 1) {
        IdealAt1 = TI;
        NoisyAt1 = TN;
      }
      std::printf("%6u %12.4f %12.4f %9.2fx\n", Jobs, TI, TN,
                  TI > 0 ? TN / TI : 0.0);
      Json.metric("ideal_seconds_j" + std::to_string(Jobs), TI, "s");
      Json.metric("noisy_seconds_j" + std::to_string(Jobs), TN, "s");
    }
    std::printf("ideal-vs-noisy overhead at jobs=1: %.2fx "
                "(%.1f noisy shots/sec)\n\n",
                IdealAt1 > 0 ? NoisyAt1 / IdealAt1 : 0.0,
                NoisyAt1 > 0 ? Shots / NoisyAt1 : 0.0);
    Json.metric("noisy_overhead_j1",
                IdealAt1 > 0 ? NoisyAt1 / IdealAt1 : 0.0, "x");
    Json.metric("noisy_shots_per_sec_j1",
                NoisyAt1 > 0 ? Shots / NoisyAt1 : 0.0, "shots/sec");
  }

  // --- 2. Pauli frames: noisy Clifford far beyond the dense cap -----------
  bool WideOk = false;
  {
    NoiseModel M = pauliModel();
    StabilizerBackend Stab;
    std::printf("--- stabilizer Pauli frames (noisy GHZ, poly(n)) ---\n");
    std::printf("%8s %12s %14s\n", "qubits", "seconds", "shots/sec");
    unsigned FrameShots = Smoke ? 500 : 5000;
    for (unsigned N : {50u, 100u, 250u, 500u}) {
      if (Smoke && N > 100)
        continue;
      RunOptions Opts;
      Opts.Noise = &M;
      std::vector<ShotResult> Results;
      double T = seconds(
          [&] { Results = Stab.runBatch(ghz(N), FrameShots, 7, Opts); });
      // Sanity: results exist and have the right width.
      if (N >= 100 && Results.size() == FrameShots &&
          Results[0].Bits.size() == N)
        WideOk = true;
      std::printf("%8u %12.4f %14.1f\n", N, T, FrameShots / T);
      Json.metric("frame_shots_per_sec_" + std::to_string(N) + "q",
                  FrameShots / T, "shots/sec");
    }
    std::printf("noisy Clifford at >= 100 qubits via Pauli frames: %s\n\n",
                WideOk ? "PASS" : "FAIL");
  }

  // --- 3. Cross-engine parity ---------------------------------------------
  double Tv;
  {
    Circuit C;
    C.NumQubits = 4;
    C.NumBits = 4;
    C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
    C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
    C.append(CircuitInstr::gate(GateKind::S, {}, {2}));
    C.append(CircuitInstr::gate(GateKind::H, {}, {2}));
    C.append(CircuitInstr::gate(GateKind::X, {2}, {3}));
    C.append(CircuitInstr::gate(GateKind::Z, {1}, {2}));
    for (unsigned Q = 0; Q < 4; ++Q)
      C.append(CircuitInstr::measure(Q, Q));
    NoiseModel M = pauliModel();
    RunOptions Opts;
    Opts.Noise = &M;
    unsigned ParityShots = Smoke ? 4000 : 8000;
    std::map<std::string, unsigned> Sv =
        runShots(C, ParityShots, 5, BackendKind::Statevector, Opts);
    std::map<std::string, unsigned> Stab =
        runShots(C, ParityShots, 1005, BackendKind::Stabilizer, Opts);
    Tv = tvDistance(Sv, Stab, ParityShots);
    std::printf("cross-engine parity (Pauli model, %u shots): TV = %.4f "
                "(bar < 0.08): %s\n",
                ParityShots, Tv, Tv < 0.08 ? "PASS" : "FAIL");
    Json.metric("cross_engine_tv_distance", Tv, "tv");
  }

  return (WideOk && Tv < 0.08) ? 0 : 1;
}
