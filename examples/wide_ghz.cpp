//===- wide_ghz.cpp - 100 qubits on the tensor-network backend ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 100-qubit Qwerty program no dense simulator can touch (2^100
/// amplitudes), running in milliseconds on the matrix-product-state
/// backend: a GHZ chain built from predicated flips ('1' & std.flip down a
/// ladder of fresh qubits) with a per-qubit RZ layer (std[N].rotate) to
/// push it off the Clifford gate set. Entanglement across every bisection
/// is exactly one ebit — bond dimension 2 — so the MPS cost is linear in
/// the qubit count, and the cost-model auto-dispatch routes the circuit to
/// the tensor network on its own.
///
/// Run:
///   ./wide_ghz                 # 100 qubits on --backend mps
///   ./wide_ghz 250             # any width
///   ./wide_ghz 100 sv          # the dense engine refuses, cleanly
///   ./wide_ghz 100 auto        # show the cost model pick the engine
///
//===----------------------------------------------------------------------===//

#include "compiler/CompileSession.h"
#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace asdf;

namespace {

/// The GHZ-chain program: hadamard the head qubit, then walk a ladder of
/// predicated flips copying the superposition down fresh '0' qubits, and
/// finish with a non-Clifford RZ layer (harmless to the measurement
/// statistics, fatal to a tableau simulation).
std::string ghzChainSource(unsigned N) {
  // Qwerty variables are linear (used exactly once), so each ladder stage
  // consumes the running carrier a<i> and yields the finished qubit b<i>
  // plus the next carrier a<i+1>.
  std::string Src = "qpu kernel() -> bit[" + std::to_string(N) + "] {\n";
  Src += "    a0 = 'p'\n";
  for (unsigned Q = 1; Q < N; ++Q)
    Src += "    b" + std::to_string(Q - 1) + ", a" + std::to_string(Q) +
           " = a" + std::to_string(Q - 1) + " + '0' | '1' & std.flip\n";
  Src += "    return b0";
  for (unsigned Q = 1; Q + 1 < N; ++Q) {
    Src += " + b" + std::to_string(Q);
    if (Q % 8 == 0)
      Src += " \\\n        ";
  }
  Src += " + a" + std::to_string(N - 1);
  std::string Dim = std::to_string(N);
  Src += " \\\n        | std[" + Dim + "].rotate(30) | std[" + Dim +
         "].measure\n}\n";
  return Src;
}

} // namespace

int main(int argc, char **argv) {
  unsigned N = argc > 1 ? unsigned(std::atoi(argv[1])) : 100;
  if (N < 2)
    N = 2;
  std::string BackendName = argc > 2 ? argv[2] : "mps";

  CompileSession Session(ghzChainSource(N), {});
  Circuit *Flat = Session.flatCircuit();
  if (!Flat) {
    std::fprintf(stderr, "compile error:\n%s\n",
                 Session.errorMessage().c_str());
    return 1;
  }

  CircuitProfile Profile = analyzeCircuit(*Flat);
  std::printf("=== %u-qubit GHZ chain (non-Clifford) ===\n", N);
  std::printf("cost model: %s\n\n",
              estimateCost(*Flat, &Profile).summary().c_str());

  BackendKind Kind;
  if (!parseBackendKind(BackendName, Kind)) {
    std::fprintf(stderr, "unknown backend '%s' (expected auto, sv, stab, "
                         "or mps)\n",
                 BackendName.c_str());
    return 1;
  }
  BackendSelection Sel = BackendRegistry::instance().selectWithReasons(
      *Flat, Kind, RunOptions(), &Profile);
  std::printf("%s\n", Sel.describe().c_str());
  if (!Sel.Supported) {
    // The clean failure mode: at 100 qubits the dense engine's verdict
    // explains that 2^100 amplitudes exceed any memory, and the report
    // above already named the engine that can run the circuit.
    std::fprintf(stderr, "backend '%s' cannot simulate this circuit; try "
                         "--backend mps\n",
                 Sel.Chosen->name());
    return 1;
  }

  const unsigned Shots = 32;
  SimStats Stats;
  RunOptions Opts;
  Opts.SimCounters = &Stats;
  std::vector<ShotResult> Results =
      Sel.Chosen->runBatch(*Flat, Shots, /*Seed=*/7, Opts);

  // GHZ correlation: every shot reads all zeros or all ones.
  unsigned AllZero = 0, AllOne = 0, Broken = 0;
  for (const ShotResult &Shot : Results) {
    bool Any = false, All = true;
    for (int Bit : Flat->OutputBits) {
      bool B = Bit >= 0 && Shot.Bits[static_cast<unsigned>(Bit)];
      Any |= B;
      All &= B;
    }
    if (!Any)
      ++AllZero;
    else if (All)
      ++AllOne;
    else
      ++Broken;
  }
  std::printf("%u shots on '%s': %u all-zeros, %u all-ones, %u broken\n",
              Shots, Sel.Chosen->name(), AllZero, AllOne, Broken);
  if (Stats.MpsMaxBond)
    std::printf("mps: max bond %llu, %llu SVD(s), %llu truncation(s)\n",
                (unsigned long long)Stats.MpsMaxBond,
                (unsigned long long)Stats.MpsSvds,
                (unsigned long long)Stats.MpsTruncations);
  std::printf(Broken == 0 ? "perfect end-to-end correlation across %u "
                            "qubits\n"
                          : "correlation BROKEN\n",
              N);
  return Broken == 0 ? 0 : 1;
}
