//===- period_finding.cpp - QFT period finding with the fourier basis -----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// QFT-based period finding with a bitmasking oracle (§8.1's fifth
/// benchmark). The interesting Qwerty feature: measuring in fourier[N]
/// applies the inverse QFT implicitly — the program never mentions a gate.
///
/// The oracle masks off the most significant bit: f(x) = x mod 2^(N-1),
/// which is additively periodic with period r = 2^(N-1). The fourier-basis
/// measurement therefore yields only the multiples of 2^N / r = 2 — every
/// outcome is even. The example verifies that distribution.
///
//===----------------------------------------------------------------------===//

#include "compiler/CompileSession.h"
#include "estimate/ResourceEstimator.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <string>

using namespace asdf;

int main(int argc, char **argv) {
  unsigned N = argc > 1 ? std::atoi(argv[1]) : 4;
  if (N < 2 || N > 7) {
    std::fprintf(stderr, "size must be in [2, 7] for simulation\n");
    return 1;
  }

  const char *Source = R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = 'p'[N] + '0'[N] | f.xor
    phase, out = q | fourier[N].measure + std[N].measure
    return phase
}
)";

  std::string Mask(N, '1');
  Mask.front() = '0'; // f(x) = x mod 2^(N-1): additive period 2^(N-1).
  ProgramBindings Bindings;
  Bindings.Captures["f"]["mask"] = CaptureValue::bitsFromString(Mask);
  Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");

  CompileSession Session(Source, Bindings);
  Circuit *Flat = Session.flatCircuit();
  if (!Flat) {
    std::fprintf(stderr, "compile error:\n%s\n",
                 Session.errorMessage().c_str());
    return 1;
  }

  CircuitStats Stats = Flat->stats();
  std::printf("period finding over %u qubits: %lu gates, %u qubits\n", N,
              (unsigned long)Stats.Total, Flat->NumQubits);
  ResourceEstimate Est = estimateResources(*Flat);
  std::printf("fault-tolerant estimate: %s\n\n", Est.str().c_str());

  // With additive period r = 2^(N-1), the measured fourier index y obeys
  // y * r = 0 (mod 2^N), i.e. y is even: its last bit is always 0.
  std::map<std::string, unsigned> Raw =
      runShots(*Flat, /*Shots=*/256, /*Seed=*/3);
  std::map<std::string, unsigned> Counts;
  for (const auto &[Bits, Count] : Raw)
    Counts[Bits.substr(0, N)] += Count; // Group by the phase register.
  bool AllEven = true;
  std::printf("fourier-basis outcomes:\n");
  for (const auto &[Phase, Count] : Counts) {
    std::printf("  %s: %u\n", Phase.c_str(), Count);
    AllEven &= Phase.back() == '0';
  }
  std::printf(AllEven ? "\nall outcomes orthogonal to the period -- "
                        "period recovered\n"
                      : "\nunexpected outcome distribution\n");
  return AllEven ? 0 : 1;
}
