//===- teleportation.cpp - Quantum teleportation (dynamic circuits) -------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantum teleportation (Fig. C13 of the paper), exercising the parts of
/// the compiler that standard oracle benchmarks do not:
///   - predication ('1' & std.flip builds the Bell pair and Bell basis),
///   - measurement in a tensor-product basis ((pm + std).measure),
///   - classically-conditioned function values ((f if m else id)), which
///    lower through the scf.if analog and the Appendix C push-down pattern
///    into a dynamic circuit.
///
/// The example teleports several states and verifies Bob's qubit matches.
///
/// Note: Fig. C13 conditions pm.flip on m_std and std.flip on m_pm; working
/// through the algebra (and the simulator), the standard corrections are
/// X^(m_std) then Z^(m_pm), which is what this example uses.
///
//===----------------------------------------------------------------------===//

#include "codegen/QasmEmitter.h"
#include "compiler/CompileSession.h"
#include "sim/Simulator.h"

#include <cmath>
#include <cstdio>

using namespace asdf;

int main() {
  const char *Source = R"(
qpu teleport(secret: qubit) -> qubit {
    alice, bob = 'p0' | '1' & std.flip
    m_pm, m_std = secret + alice | '1' & std.flip | (pm + std).measure
    secret_teleported = bob | (std.flip if m_std else id) \
        | (pm.flip if m_pm else id)
    return secret_teleported
}
)";

  SessionOptions Opts;
  Opts.Entry = "teleport";
  CompileSession Session(Source, {}, Opts);
  Circuit *Flat = Session.flatCircuit();
  if (!Flat) {
    std::fprintf(stderr, "compile error:\n%s\n",
                 Session.errorMessage().c_str());
    return 1;
  }

  std::printf("=== Teleportation as a dynamic OpenQASM 3 circuit ===\n%s\n",
              emitOpenQasm3(*Flat).c_str());

  const Circuit &C = *Flat;
  unsigned OutQ = C.OutputQubits.front();
  bool AllOk = true;
  std::printf("teleporting RY(theta)|0> states:\n");
  for (double Theta : {0.0, 0.4, 1.1, 1.9, 2.7, M_PI}) {
    // Average over many shots (corrections are stochastic).
    double SumP1 = 0.0;
    unsigned Shots = 64;
    for (unsigned S = 0; S < Shots; ++S) {
      StateVector SV(C.NumQubits);
      SV.apply(GateKind::RY, {}, {0}, Theta); // Prepare on the input reg.
      std::mt19937_64 Rng(S * 977 + 13);
      std::vector<bool> Bits(C.NumBits, false);
      for (const CircuitInstr &I : C.Instrs) {
        if (I.CondBit >= 0 &&
            Bits[static_cast<unsigned>(I.CondBit)] != I.CondVal)
          continue;
        if (I.TheKind == CircuitInstr::Kind::Gate)
          SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
        else if (I.TheKind == CircuitInstr::Kind::Measure)
          Bits[static_cast<unsigned>(I.Cbit)] =
              SV.measure(I.Targets[0], Rng);
        else
          SV.reset(I.Targets[0], Rng);
      }
      SumP1 += SV.probOne(OutQ);
    }
    double Got = SumP1 / Shots;
    double Want = std::pow(std::sin(Theta / 2.0), 2);
    bool Ok = std::abs(Got - Want) < 1e-6;
    AllOk &= Ok;
    std::printf("  theta=%.2f  P(|1>): got %.4f, want %.4f  %s\n", Theta,
                Got, Want, Ok ? "ok" : "MISMATCH");
  }
  std::printf(AllOk ? "\nall states teleported faithfully\n"
                    : "\nteleportation FAILED\n");
  return AllOk ? 0 : 1;
}
