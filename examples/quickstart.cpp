//===- quickstart.cpp - Bernstein-Vazirani in 40 lines --------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quickstart: the Bernstein-Vazirani program of Fig. 1, compiled from
/// Qwerty source to a circuit, exported as OpenQASM 3 and QIR, and executed
/// on the bundled state-vector simulator. Run:
///
///   ./quickstart 110101
///
/// The program prints the compiled artifacts and recovers the secret string
/// in a single oracle query.
///
//===----------------------------------------------------------------------===//

#include "codegen/QasmEmitter.h"
#include "codegen/QirEmitter.h"
#include "compiler/CompileSession.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <string>

using namespace asdf;

int main(int argc, char **argv) {
  std::string Secret = argc > 1 ? argv[1] : "1101";

  // The Bernstein-Vazirani program of Fig. 1, in the textual Qwerty DSL.
  const char *Source = R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}

qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign \
        | pm[N] >> std[N] \
        | std[N].measure
}
)";

  // Bind the captures: the classical oracle captures the secret string, and
  // the kernel captures the oracle. N is inferred from the secret's length.
  ProgramBindings Bindings;
  Bindings.Captures["f"]["secret"] = CaptureValue::bitsFromString(Secret);
  Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");

  // The session caches every artifact: the Qwerty IR and the flat circuit
  // below come from one compilation.
  CompileSession Session(Source, Bindings);
  Circuit *Flat = Session.flatCircuit();
  if (!Flat) {
    std::fprintf(stderr, "compile error:\n%s\n",
                 Session.errorMessage().c_str());
    return 1;
  }

  std::printf("=== Optimized Qwerty IR ===\n%s\n",
              Session.qwertyIR()->str().c_str());
  std::printf("=== OpenQASM 3 ===\n%s\n", emitOpenQasm3(*Flat).c_str());
  std::optional<std::string> Qir = emitQirBaseProfile(*Flat);
  if (Qir)
    std::printf("=== QIR (Base Profile) ===\n%s\n", Qir->c_str());

  // One shot suffices: Bernstein-Vazirani is deterministic.
  ShotResult Shot = simulate(*Flat, /*Seed=*/1);
  std::string Measured;
  for (int Bit : Flat->OutputBits)
    Measured.push_back(
        Bit >= 0 && Shot.Bits[static_cast<unsigned>(Bit)] ? '1' : '0');
  std::printf("secret:   %s\nmeasured: %s  -> %s\n", Secret.c_str(),
              Measured.c_str(),
              Measured == Secret ? "recovered in one query!" : "MISMATCH");
  return Measured == Secret ? 0 : 1;
}
