//===- grover_search.cpp - Grover's search with a classical oracle --------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Grover's algorithm over an N-bit search space with a synthesized
/// classical oracle marking one item. Demonstrates:
///   - f.sign phase oracles from `classical` functions (§6.4),
///   - the {'p'[N]} >> {-'p'[N]} diffuser as a *basis translation with a
///     vector phase* (Fig. 8) — no hand-written gates anywhere,
///   - the relaxed peephole + Selinger decomposition pipeline (§6.5).
///
/// Run: ./grover_search [num_qubits]
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "compiler/CompileSession.h"
#include "estimate/ResourceEstimator.h"
#include "sim/Simulator.h"

#include <cmath>
#include <cstdio>
#include <sstream>

using namespace asdf;

int main(int argc, char **argv) {
  unsigned N = argc > 1 ? std::atoi(argv[1]) : 4;
  if (N < 2 || N > 8) {
    std::fprintf(stderr, "num_qubits must be in [2, 8] for simulation\n");
    return 1;
  }
  unsigned Iters = groverIterations(N);

  // The oracle marks the all-ones item; Grover iterations are unrolled,
  // mirroring how Asdf expands loops during AST expansion (§4).
  std::ostringstream OS;
  OS << R"(
classical oracle[N](x: bit[N]) -> bit {
    return x.and_reduce()
}
qpu kernel[N](oracle: cfunc[N, 1]) -> bit[N] {
    return 'p'[N])";
  for (unsigned I = 0; I < Iters; ++I)
    OS << " \\\n        | oracle.sign | {'p'[N]} >> {-'p'[N]}";
  OS << " \\\n        | std[N].measure\n}\n";

  ProgramBindings Bindings;
  Bindings.DimVars["N"] = N;
  Bindings.Captures["kernel"]["oracle"] =
      CaptureValue::classicalFunc("oracle");

  CompileSession Session(OS.str(), Bindings);
  Circuit *Flat = Session.flatCircuit();
  if (!Flat) {
    std::fprintf(stderr, "compile error:\n%s\n",
                 Session.errorMessage().c_str());
    return 1;
  }

  CircuitStats Stats = Flat->stats();
  std::printf("Grover over %u qubits, %u iteration(s): %lu gates "
              "(%lu T), %u qubits incl. ancillas\n",
              N, Iters, (unsigned long)Stats.Total,
              (unsigned long)Stats.TCount, Flat->NumQubits);
  ResourceEstimate Est = estimateResources(*Flat);
  std::printf("fault-tolerant estimate: %s\n\n", Est.str().c_str());

  std::map<std::string, unsigned> Counts =
      runShots(*Flat, /*Shots=*/256, /*Seed=*/7);
  std::string Marked(N, '1');
  unsigned Hit = 0, Total = 0;
  std::printf("measurement histogram (top entries):\n");
  for (const auto &[Bits, Count] : Counts) {
    Total += Count;
    if (Bits == Marked)
      Hit = Count;
    if (Count > 4)
      std::printf("  %s: %u\n", Bits.c_str(), Count);
  }
  double SuccessRate = double(Hit) / Total;
  std::printf("marked item %s found with probability %.2f "
              "(theory: %.2f)\n",
              Marked.c_str(), SuccessRate,
              std::pow(std::sin((2 * Iters + 1) *
                                std::asin(1.0 / std::sqrt(1 << N))),
                       2));
  return SuccessRate > 0.5 ? 0 : 1;
}
