//===- deutsch_jozsa.cpp - Constant vs balanced in one query --------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deutsch-Jozsa with *both* oracle families, demonstrating how different
/// classical functions synthesize to very different circuits (§6.4):
///
///   - the balanced XOR-of-all-bits oracle becomes a CNOT cone (no T
///     gates, no ancillas beyond the kickback target);
///   - a constant oracle constant-folds to nothing in the logic network —
///     the "circuit" is empty and the kernel trivially measures all zeros.
///
/// One query distinguishes the families: all-zeros means constant,
/// anything else means balanced.
///
//===----------------------------------------------------------------------===//

#include "compiler/CompileSession.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <string>

using namespace asdf;

namespace {

std::string runKernel(const char *OracleBody, unsigned N) {
  std::string Source = std::string(R"(
classical f[N](x: bit[N]) -> bit {
)") + "    return " + OracleBody + "\n}\n" + R"(
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";
  ProgramBindings B;
  B.DimVars["N"] = N;
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  CompileSession Session(Source, B);
  Circuit *Flat = Session.flatCircuit();
  if (!Flat) {
    std::fprintf(stderr, "compile error:\n%s\n",
                 Session.errorMessage().c_str());
    std::exit(1);
  }
  CircuitStats S = Flat->stats();
  std::printf("  synthesized: %lu gates, %lu CX, %u qubits\n",
              (unsigned long)S.Total, (unsigned long)S.CxCount,
              Flat->NumQubits);
  ShotResult Shot = simulate(*Flat, 17);
  std::string Out;
  for (int Bit : Flat->OutputBits)
    Out.push_back(Bit >= 0 && Shot.Bits[unsigned(Bit)] ? '1' : '0');
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  unsigned N = argc > 1 ? std::atoi(argv[1]) : 6;
  if (N < 1 || N > 12) {
    std::fprintf(stderr, "size must be in [1, 12]\n");
    return 1;
  }
  std::string Zeros(N, '0');

  std::printf("balanced oracle f(x) = xor(x):\n");
  std::string Balanced = runKernel("x.xor_reduce()", N);
  std::printf("  measured %s -> %s\n\n", Balanced.c_str(),
              Balanced != Zeros ? "balanced (correct)" : "WRONG");

  std::printf("constant oracle f(x) = 0  (x & ~x reduces away):\n");
  std::string Constant = runKernel("(x & ~x).xor_reduce()", N);
  std::printf("  measured %s -> %s\n", Constant.c_str(),
              Constant == Zeros ? "constant (correct)" : "WRONG");

  return (Balanced != Zeros && Constant == Zeros) ? 0 : 1;
}
