//===- JsonTest.cpp - JSON number formatting and locale independence ------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the numeric layer of the NDJSON wire format:
///
///   - doubles round-trip exactly through write() + parse() (shortest
///     round-trip form via <charconv>, not printf);
///   - the writer and parser are immune to LC_NUMERIC. The old
///     snprintf("%.17g")/strtod implementation obeyed the process locale:
///     under a comma-decimal locale (de_DE, fr_FR, ...) it *wrote* "3,5"
///     — invalid JSON — and *read* "3.5" as 3.0 by stopping at the '.'.
///     A daemon embedded in a localized host process would corrupt every
///     float on the wire. The regression test flips LC_NUMERIC to a
///     comma-decimal locale (skipping if none is installed) and requires
///     byte-identical behavior;
///   - the lexer's float literals share the fix: "45.5" in a Qwerty
///     program must lex to 45.5 under any locale.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "ast/Lexer.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cstring>
#include <string>

using namespace asdf;

namespace {

double writeParseRoundTrip(double D) {
  std::string Wire = "{\"x\": " + json::Value::number(D).write() + "}";
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Wire, V, Error)) << Wire << ": " << Error;
  const json::Value *X = V.get("x");
  EXPECT_NE(X, nullptr) << Wire;
  return X ? X->asDouble() : 0.0;
}

TEST(JsonNumberTest, DoublesRoundTripExactly) {
  const double Cases[] = {3.25,
                          0.1,
                          -0.30000000000000004,
                          45.5,
                          1.0 / 3.0,
                          6.02214076e23,
                          2.2250738585072014e-308, // Smallest normal.
                          1.7976931348623157e308,  // Largest finite.
                          5e-324,                  // Smallest subnormal.
                          -12345.678901234567};
  for (double D : Cases) {
    double Back = writeParseRoundTrip(D);
    EXPECT_EQ(std::memcmp(&Back, &D, sizeof D), 0)
        << D << " round-tripped to " << Back;
  }
}

TEST(JsonNumberTest, ShortestFormIsWritten) {
  // Shortest round-trip form, not 17 significant digits: 3.25 is "3.25",
  // not "3.2500000000000000".
  EXPECT_EQ(json::Value::number(3.25).write(), "3.25");
  EXPECT_EQ(json::Value::number(0.1).write(), "0.1");
}

/// Switches LC_NUMERIC to a comma-decimal locale for the enclosing scope.
/// Valid (bool conversion) only if one was installed and printf actually
/// produces a comma — otherwise the test skips rather than vacuously pass.
class CommaLocale {
public:
  CommaLocale() {
    Saved = std::setlocale(LC_NUMERIC, nullptr);
    for (const char *Name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                             "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR"}) {
      if (std::setlocale(LC_NUMERIC, Name)) {
        char Buf[32];
        std::snprintf(Buf, sizeof Buf, "%.1f", 3.5);
        if (std::strcmp(Buf, "3,5") == 0) {
          Active = true;
          return;
        }
      }
    }
    std::setlocale(LC_NUMERIC, Saved.c_str());
  }
  ~CommaLocale() {
    if (Active)
      std::setlocale(LC_NUMERIC, Saved.c_str());
  }
  explicit operator bool() const { return Active; }

private:
  std::string Saved;
  bool Active = false;
};

TEST(JsonNumberTest, WriterAndParserIgnoreLocale) {
  CommaLocale Locale;
  if (!Locale)
    GTEST_SKIP() << "no comma-decimal locale installed";

  // The writer must emit '.' (valid JSON), never the locale's ','.
  EXPECT_EQ(json::Value::number(3.5).write(), "3.5");

  // The parser must consume the full "45.5", not stop at the '.' the way
  // strtod does under this locale (which yielded 45.0).
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse("{\"x\": 45.5}", V, Error)) << Error;
  EXPECT_EQ(V.get("x")->asDouble(), 45.5);

  // And full round-trips still reproduce the bits.
  double Back = writeParseRoundTrip(-0.30000000000000004);
  EXPECT_EQ(Back, -0.30000000000000004);
}

TEST(JsonNumberTest, LexerFloatLiteralsIgnoreLocale) {
  CommaLocale Locale;
  if (!Locale)
    GTEST_SKIP() << "no comma-decimal locale installed";

  DiagnosticEngine Diags;
  Lexer Lex("45.5", Diags);
  ASSERT_FALSE(Diags.hadError());
  const std::vector<Token> &Toks = Lex.tokens();
  ASSERT_FALSE(Toks.empty());
  ASSERT_TRUE(Toks[0].is(Token::Kind::Float));
  EXPECT_EQ(Toks[0].FloatValue, 45.5)
      << "float literal truncated at the '.' under a comma-decimal locale";
}

} // namespace
