//===- ServiceTest.cpp - Cache, protocol, and service-engine tests --------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks down the compile-and-run service subsystem:
///
///   - cache-key stability: identical inputs hash identically (and the key
///     of a fixed request is pinned as a golden value, so a hash change
///     across commits is a deliberate, visible event), every single field
///     change — including whitespace-only source edits — produces a new
///     key, and equivalent pipeline spellings share one;
///   - ArtifactCache LRU/byte-budget behavior and its counters;
///   - NDJSON protocol round-trips, including full-width 64-bit seeds,
///     and strict unknown-field rejection;
///   - JobQueue admission, draining, and counters;
///   - AsdfService request handling: compile artifacts match a direct
///     CompileSession byte-for-byte, run results match a direct
///     runBatch+formatShotBits reference bit-for-bit, repeats hit the
///     cache, errors carry the right machine-readable kind, and expired
///     deadlines time out before any work;
///   - concurrency: many client threads with mixed compile/run requests
///     against one service produce exactly the serial reference results
///     (run under ASan/TSan in CI).
///
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "codegen/QasmEmitter.h"
#include "compiler/CompileSession.h"
#include "sim/Backend.h"
#include "sim/Simulator.h"
#include "support/BuildInfo.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

using namespace asdf;

namespace {

const char *BVSource = R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";

const char *CoinSource = R"(
qpu kernel() -> bit {
    return 'p' | std.measure
}
)";

ProgramBindings bvBindings(const std::string &Secret = "1101") {
  ProgramBindings B;
  B.Captures["f"]["secret"] = CaptureValue::bitsFromString(Secret);
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  return B;
}

ServiceRequest bvCompileRequest(uint64_t Id = 1) {
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Compile;
  R.Id = Id;
  R.Source = BVSource;
  R.Bindings = bvBindings();
  return R;
}

ServiceRequest coinRunRequest(uint64_t Id = 1, unsigned Shots = 16,
                              uint64_t Seed = 42) {
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Run;
  R.Id = Id;
  R.Source = CoinSource;
  R.Shots = Shots;
  R.Seed = Seed;
  return R;
}

const char *RotParamSource = R"(
qpu kernel() -> bit {
    return 'p' | std.rotate($theta) | std.measure
}
)";

/// A literal-angle rotation program; bind-run canonicalizes the literal
/// away, so two of these differing only in the angle share a cache key.
std::string rotLiteralSource(const std::string &Angle) {
  return "qpu kernel() -> bit {\n    return 'p' | std.rotate(" + Angle +
         ") | std.measure\n}\n";
}

ServiceRequest bindRunRequest(uint64_t Id,
                              std::vector<std::vector<double>> Points,
                              unsigned Shots = 8, uint64_t Seed = 5) {
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::BindRun;
  R.Id = Id;
  R.Source = RotParamSource;
  R.SweepParams = {"theta"};
  R.Points = std::move(Points);
  R.Shots = Shots;
  R.Seed = Seed;
  return R;
}

PipelinePlan defaultPlan() { return presetPlan("default"); }

/// Pinned digest of a fixed request (see CacheKeyTest.DeterministicAndPinned).
#define ASDF_SERVICE_GOLDEN_KEY "f82c055d96378e040d93dbb992da73bb"

/// The serial reference for a run request: the exact computation asdfc
/// performs, with the same formatting.
std::vector<std::string> referenceRun(const ServiceRequest &R) {
  SessionOptions SO;
  SO.Entry = R.Entry;
  PipelinePlan Plan;
  std::string Error;
  EXPECT_TRUE(parsePipelinePlan(R.Pipeline, Plan, Error)) << Error;
  SO.Plan = Plan;
  CompileSession S(R.Source, R.Bindings, SO);
  Circuit *Flat = S.flatCircuit();
  EXPECT_NE(Flat, nullptr) << S.errorMessage();
  BackendKind Kind;
  EXPECT_TRUE(parseBackendKind(R.Backend, Kind));
  SimBackend &B = BackendRegistry::instance().select(*Flat, Kind);
  RunOptions Opts;
  Opts.Jobs = R.Jobs;
  std::vector<std::string> Lines;
  for (const ShotResult &Shot : B.runBatch(*Flat, R.Shots, R.Seed, Opts))
    Lines.push_back(formatShotBits(*Flat, Shot));
  return Lines;
}

/// The recompile-per-point reference for a bind-run request: bind each
/// point by sweep-param name, run with the derived per-point base seed.
/// The backend is selected once from the *parametric* circuit, mirroring
/// the service (a point whose bound circuit happens to be Clifford must
/// not silently switch engines mid-sweep).
std::vector<std::vector<std::string>>
referenceSweep(const ServiceRequest &R) {
  CompileSession S(R.Source, R.Bindings);
  Circuit *Flat = S.flatCircuit();
  EXPECT_NE(Flat, nullptr) << S.errorMessage();
  SimBackend &B =
      BackendRegistry::instance().select(*Flat, BackendKind::Auto);
  RunOptions Opts;
  Opts.Jobs = R.Jobs;
  std::vector<std::vector<std::string>> Out;
  for (size_t P = 0; P < R.Points.size(); ++P) {
    std::map<std::string, double> Vals;
    for (size_t K = 0; K < R.SweepParams.size(); ++K)
      Vals[R.SweepParams[K]] = R.Points[P][K];
    std::string Err;
    std::optional<Circuit> Bound = S.bindParams(Vals, &Err);
    EXPECT_TRUE(Bound) << Err;
    std::vector<std::string> Lines;
    for (const ShotResult &Shot : B.runBatch(
             *Bound, R.Shots, deriveSweepPointSeed(R.Seed, P), Opts))
      Lines.push_back(formatShotBits(*Bound, Shot));
    Out.push_back(std::move(Lines));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Cache-key stability
//===----------------------------------------------------------------------===//

TEST(CacheKeyTest, DeterministicAndPinned) {
  ServiceRequest R = bvCompileRequest();
  // Same inputs, same key — recomputed from scratch, with the fingerprint
  // held fixed so the pin does not depend on the build machine.
  CacheKey A = computeCacheKey(R, defaultPlan(), "qasm", "pin");
  CacheKey B = computeCacheKey(R, defaultPlan(), "qasm", "pin");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hex().size(), 32u);
  // Golden pin: the content-hash function is pure (no pointers, no
  // iteration-order dependence), so this value must be stable across
  // processes, runs, and machines. If an intentional hash change lands,
  // update the pin — the daemon's cache is invalidated at the same moment.
  EXPECT_EQ(A.hex(), ASDF_SERVICE_GOLDEN_KEY);
}

TEST(CacheKeyTest, EverySingleFieldChangesTheKey) {
  ServiceRequest Base = bvCompileRequest();
  CacheKey K0 = computeCacheKey(Base, defaultPlan(), "qasm", "fp");

  // Source text, including a whitespace-only edit: hashing is byte-exact,
  // not semantic, by design.
  ServiceRequest R = Base;
  R.Source += " ";
  EXPECT_FALSE(computeCacheKey(R, defaultPlan(), "qasm", "fp") == K0)
      << "whitespace-only source change must change the key";
  R = Base;
  R.Source = std::string(BVSource) + "\n// comment\n";
  EXPECT_FALSE(computeCacheKey(R, defaultPlan(), "qasm", "fp") == K0);

  // Entry kernel.
  R = Base;
  R.Entry = "other";
  EXPECT_FALSE(computeCacheKey(R, defaultPlan(), "qasm", "fp") == K0);

  // Pipeline plan.
  PipelinePlan NoOpt = presetPlan("no-opt");
  EXPECT_FALSE(computeCacheKey(Base, NoOpt, "qasm", "fp") == K0);

  // Bindings: a different capture value, an added dimvar.
  R = Base;
  R.Bindings = bvBindings("1111");
  EXPECT_FALSE(computeCacheKey(R, defaultPlan(), "qasm", "fp") == K0);
  R = Base;
  R.Bindings.DimVars["N"] = 4;
  EXPECT_FALSE(computeCacheKey(R, defaultPlan(), "qasm", "fp") == K0);

  // Artifact kind and build fingerprint.
  EXPECT_FALSE(computeCacheKey(Base, defaultPlan(), "qir", "fp") == K0);
  EXPECT_FALSE(computeCacheKey(Base, defaultPlan(), "qasm", "fp2") == K0);
}

TEST(CacheKeyTest, EquivalentPlanSpellingsShareAKey) {
  // The key hashes the *parsed* plan, so the preset name and its explicit
  // spec produce the same key even though the request text differs.
  ServiceRequest R = bvCompileRequest();
  PipelinePlan Preset = presetPlan("default");
  PipelinePlan Explicit;
  std::string Error;
  ASSERT_TRUE(parsePipelinePlan(Preset.str(), Explicit, Error)) << Error;
  EXPECT_EQ(computeCacheKey(R, Preset, "qasm", "fp"),
            computeCacheKey(R, Explicit, "qasm", "fp"));
}

TEST(CacheKeyTest, RunVsCompileFieldsDoNotLeakIntoTheKey) {
  // Shots/seed/backend/jobs select *execution*, not the artifact: two runs
  // of the same program with different seeds share one compiled circuit.
  ServiceRequest A = coinRunRequest(1, 16, 1);
  ServiceRequest B = coinRunRequest(2, 999, 0xdeadbeefULL);
  B.Jobs = 7;
  B.Backend = "sv";
  EXPECT_EQ(computeCacheKey(A, defaultPlan(), "flat-circuit", "fp"),
            computeCacheKey(B, defaultPlan(), "flat-circuit", "fp"));
}

//===----------------------------------------------------------------------===//
// ArtifactCache: LRU under a byte budget
//===----------------------------------------------------------------------===//

/// An artifact whose bytes() is exactly \p Bytes, so budget arithmetic in
/// the tests below is precise (bytes() counts the struct + key strings).
std::shared_ptr<const CachedArtifact> textArtifact(size_t Bytes) {
  auto A = std::make_shared<CachedArtifact>();
  A->Kind = "qasm";
  size_t Overhead = sizeof(CachedArtifact) + A->Kind.size();
  EXPECT_GE(Bytes, Overhead);
  A->Text.assign(Bytes - Overhead, 'x');
  return A;
}

CacheKey keyOf(uint64_t N) { return CacheKey{N, ~N}; }

TEST(ArtifactCacheTest, EvictionRespectsTheByteBudget) {
  ArtifactCache Cache(4096);
  for (uint64_t I = 0; I < 16; ++I)
    Cache.put(keyOf(I), textArtifact(1000));
  CacheStats S = Cache.stats();
  EXPECT_LE(S.BytesUsed, 4096u);
  EXPECT_EQ(S.Entries, 4u) << "4 x 1000-byte entries fit a 4096 budget";
  EXPECT_EQ(S.Insertions, 16u);
  EXPECT_EQ(S.Evictions, 12u);
  // The survivors are the most recently inserted.
  EXPECT_EQ(Cache.get(keyOf(0)), nullptr);
  EXPECT_NE(Cache.get(keyOf(15)), nullptr);
}

TEST(ArtifactCacheTest, GetBumpsRecency) {
  ArtifactCache Cache(3000);
  Cache.put(keyOf(1), textArtifact(1000));
  Cache.put(keyOf(2), textArtifact(1000));
  Cache.put(keyOf(3), textArtifact(1000));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(Cache.get(keyOf(1)), nullptr);
  Cache.put(keyOf(4), textArtifact(1000));
  EXPECT_NE(Cache.get(keyOf(1)), nullptr);
  EXPECT_EQ(Cache.get(keyOf(2)), nullptr);
  EXPECT_NE(Cache.get(keyOf(3)), nullptr);
  EXPECT_NE(Cache.get(keyOf(4)), nullptr);
}

TEST(ArtifactCacheTest, OversizedArtifactIsNotCached) {
  ArtifactCache Cache(1024);
  Cache.put(keyOf(1), textArtifact(100));
  Cache.put(keyOf(2), textArtifact(4096)); // Bigger than the whole budget.
  EXPECT_EQ(Cache.get(keyOf(2)), nullptr);
  // And it did not evict the incumbent to make room it could never use.
  EXPECT_NE(Cache.get(keyOf(1)), nullptr);
}

TEST(ArtifactCacheTest, EvictedEntryStaysAliveForHolders) {
  ArtifactCache Cache(1024);
  Cache.put(keyOf(1), textArtifact(800));
  std::shared_ptr<const CachedArtifact> Held = Cache.get(keyOf(1));
  ASSERT_NE(Held, nullptr);
  Cache.put(keyOf(2), textArtifact(800)); // Evicts 1.
  EXPECT_EQ(Cache.get(keyOf(1)), nullptr);
  EXPECT_EQ(Held->bytes(), 800u) << "holder's artifact must survive";
}

TEST(ArtifactCacheTest, ShrinkingTheBudgetEvictsImmediately) {
  ArtifactCache Cache(4096);
  for (uint64_t I = 0; I < 4; ++I)
    Cache.put(keyOf(I), textArtifact(1000));
  EXPECT_EQ(Cache.stats().Entries, 4u);
  Cache.setByteBudget(2048);
  CacheStats S = Cache.stats();
  EXPECT_LE(S.BytesUsed, 2048u);
  EXPECT_EQ(S.Entries, 2u);
}

//===----------------------------------------------------------------------===//
// Protocol round-trips
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, RequestRoundTripsExactly) {
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Run;
  R.Id = 0xFFFFFFFFFFFFFFFFull; // Full-width 64-bit ids survive.
  R.Source = "qpu kernel() -> bit {\n return '0' | std.measure\n}";
  R.Entry = "main";
  R.Pipeline = "no-peephole";
  R.Emit = "circuit";
  R.Shots = 12345;
  R.Seed = 0x8000000000000001ull; // > 2^63: must not round through double.
  R.Backend = "stab";
  R.Jobs = 8;
  R.TimeoutSecs = 2.5;
  R.Bindings.DimVars["N"] = 64;
  R.Bindings.Captures["f"]["secret"] = CaptureValue::bitsFromString("101");
  R.Bindings.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");

  std::string Wire = R.toJson().write();
  ServiceRequest Back;
  uint64_t Id = 0;
  std::string Error;
  ASSERT_TRUE(parseRequestLine(Wire, Back, Id, Error)) << Error;
  EXPECT_EQ(Id, R.Id);
  EXPECT_EQ(Back.TheKind, R.TheKind);
  EXPECT_EQ(Back.Source, R.Source);
  EXPECT_EQ(Back.Entry, R.Entry);
  EXPECT_EQ(Back.Pipeline, R.Pipeline);
  EXPECT_EQ(Back.Shots, R.Shots);
  EXPECT_EQ(Back.Seed, R.Seed);
  EXPECT_EQ(Back.Backend, R.Backend);
  EXPECT_EQ(Back.Jobs, R.Jobs);
  EXPECT_DOUBLE_EQ(Back.TimeoutSecs, R.TimeoutSecs);
  // Bindings survive; the cache key is the strongest equality check.
  EXPECT_EQ(computeCacheKey(Back, defaultPlan(), "k", "fp"),
            computeCacheKey(R, defaultPlan(), "k", "fp"));
  // And re-serializing is byte-stable (canonical field order).
  EXPECT_EQ(Back.toJson().write(), Wire);
}

TEST(ProtocolTest, ResponseRoundTripsExactly) {
  ServiceResponse Resp;
  Resp.Id = 7;
  Resp.Ok = true;
  Resp.Artifact = "OPENQASM 3;\n\"quoted\"\tand\nnewlines\xF0\x9F\x99\x82";
  Resp.CacheHit = true;
  Resp.Key = "00ff00ff00ff00ff00ff00ff00ff00ff";
  Resp.CompileSecs = 0.125;
  Resp.Results = {"0101", "1010"};
  Resp.Counts = {{"0101", 1}, {"1010", 1}};

  std::string Wire = Resp.toJson().write();
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(Wire, V, Error)) << Error;
  ServiceResponse Back;
  ASSERT_TRUE(ServiceResponse::fromJson(V, Back, Error)) << Error;
  EXPECT_EQ(Back.Id, Resp.Id);
  EXPECT_TRUE(Back.Ok);
  EXPECT_EQ(Back.Artifact, Resp.Artifact);
  EXPECT_TRUE(Back.CacheHit);
  EXPECT_EQ(Back.Key, Resp.Key);
  EXPECT_EQ(Back.Results, Resp.Results);
  EXPECT_EQ(Back.Counts, Resp.Counts);
}

TEST(ProtocolTest, ErrorResponseRoundTrips) {
  ServiceResponse Resp =
      ServiceResponse::failure(3, "compile-error", "line 2: no such basis");
  std::string Wire = Resp.toJson().write();
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(Wire, V, Error)) << Error;
  ServiceResponse Back;
  ASSERT_TRUE(ServiceResponse::fromJson(V, Back, Error)) << Error;
  EXPECT_FALSE(Back.Ok);
  EXPECT_EQ(Back.Error.Kind, "compile-error");
  EXPECT_EQ(Back.Error.Message, "line 2: no such basis");
  EXPECT_EQ(Back.Error.RetryAfterMs, 0u)
      << "absent retry_after_ms must read back as no hint";
}

TEST(ProtocolTest, RetryAfterMsRoundTrips) {
  ServiceResponse Resp = ServiceResponse::failure(
      9, "overloaded", "request queue is full; back off and retry",
      /*RetryAfterMs=*/125);
  std::string Wire = Resp.toJson().write();
  EXPECT_NE(Wire.find("\"retry_after_ms\""), std::string::npos) << Wire;
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(Wire, V, Error)) << Error;
  ServiceResponse Back;
  ASSERT_TRUE(ServiceResponse::fromJson(V, Back, Error)) << Error;
  EXPECT_FALSE(Back.Ok);
  EXPECT_EQ(Back.Error.Kind, "overloaded");
  EXPECT_EQ(Back.Error.RetryAfterMs, 125u);
}

TEST(ProtocolTest, BindRunRoundTripsExactly) {
  ServiceRequest R = bindRunRequest(11, {{0.0}, {45.5}, {-90.25}});
  std::string Wire = R.toJson().write();
  ServiceRequest Back;
  uint64_t Id = 0;
  std::string Error;
  ASSERT_TRUE(parseRequestLine(Wire, Back, Id, Error)) << Error;
  EXPECT_EQ(Back.TheKind, ServiceRequest::Kind::BindRun);
  EXPECT_EQ(Back.SweepParams, R.SweepParams);
  EXPECT_EQ(Back.Points, R.Points);
  EXPECT_EQ(Back.Shots, R.Shots);
  EXPECT_EQ(Back.Seed, R.Seed);
  EXPECT_EQ(Back.toJson().write(), Wire) << "canonical field order";

  ServiceResponse Resp;
  Resp.Id = 11;
  Resp.Ok = true;
  Resp.Key = "00ff00ff00ff00ff00ff00ff00ff00ff";
  Resp.PointResults = {{"0", "1"}, {"1", "1"}, {"0", "0"}};
  std::string RespWire = Resp.toJson().write();
  json::Value V;
  ASSERT_TRUE(json::parse(RespWire, V, Error)) << Error;
  ServiceResponse RespBack;
  ASSERT_TRUE(ServiceResponse::fromJson(V, RespBack, Error)) << Error;
  EXPECT_EQ(RespBack.PointResults, Resp.PointResults);
}

TEST(ProtocolTest, SweepFieldsAreOnlyValidForBindRun) {
  ServiceRequest R;
  uint64_t Id = 0;
  std::string Error;
  EXPECT_FALSE(parseRequestLine(
      R"({"id": 5, "op": "run", "source": "x", "params": ["theta"]})", R,
      Id, Error));
  EXPECT_NE(Error.find("bind-run"), std::string::npos) << Error;
  EXPECT_FALSE(parseRequestLine(
      R"({"id": 5, "op": "compile", "source": "x", "points": [[1]]})", R,
      Id, Error));
  EXPECT_NE(Error.find("bind-run"), std::string::npos) << Error;
  // And bind-run itself requires points.
  EXPECT_FALSE(parseRequestLine(
      R"({"id": 5, "op": "bind-run", "source": "x"})", R, Id, Error));
}

TEST(ProtocolTest, UnknownFieldsAreRejected) {
  ServiceRequest R;
  uint64_t Id = 0;
  std::string Error;
  EXPECT_FALSE(parseRequestLine(
      R"({"id": 5, "op": "compile", "source": "x", "shotz": 3})", R, Id,
      Error));
  EXPECT_NE(Error.find("shotz"), std::string::npos) << Error;
  EXPECT_EQ(Id, 5u) << "id recovered best-effort for the error response";
}

TEST(ProtocolTest, MalformedLinesFailWithPosition) {
  ServiceRequest R;
  uint64_t Id = 0;
  std::string Error;
  EXPECT_FALSE(parseRequestLine("{\"id\": 1, ", R, Id, Error));
  EXPECT_FALSE(parseRequestLine("[]", R, Id, Error));
  EXPECT_FALSE(parseRequestLine(
      R"({"id": 1, "op": "transmogrify"})", R, Id, Error));
  EXPECT_NE(Error.find("transmogrify"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JobQueue
//===----------------------------------------------------------------------===//

TEST(JobQueueTest, RunsEverySubmittedJob) {
  std::atomic<int> Ran{0};
  {
    JobQueue Q(4);
    EXPECT_EQ(Q.workers(), 4u);
    for (int I = 0; I < 100; ++I)
      ASSERT_EQ(Q.submit([&] { Ran.fetch_add(1); }),
                JobQueue::Submit::Accepted);
    Q.drain();
  }
  EXPECT_EQ(Ran.load(), 100);
}

TEST(JobQueueTest, DrainStopsAdmissionButFinishesQueuedWork) {
  std::atomic<int> Ran{0};
  JobQueue Q(2);
  for (int I = 0; I < 10; ++I)
    ASSERT_EQ(Q.submit([&] { Ran.fetch_add(1); }),
              JobQueue::Submit::Accepted);
  Q.drain();
  EXPECT_EQ(Ran.load(), 10) << "queued jobs complete during drain";
  EXPECT_EQ(Q.submit([&] { Ran.fetch_add(1); }),
            JobQueue::Submit::Draining);
  EXPECT_EQ(Ran.load(), 10);
  JobQueue::Counters C = Q.counters();
  EXPECT_EQ(C.Submitted, 10u);
  EXPECT_EQ(C.Executed, 10u);
  EXPECT_EQ(C.Rejected, 1u);
  EXPECT_EQ(C.Pending, 0u);
  Q.drain(); // Idempotent.
}

TEST(JobQueueTest, ZeroMeansHardwareConcurrency) {
  JobQueue Q(0);
  EXPECT_GE(Q.workers(), 1u);
}

TEST(JobQueueTest, BoundedDepthShedsBeyondMaxPending) {
  std::atomic<int> Ran{0};
  JobQueue Q(1, /*MaxPending=*/4);
  Q.pause(); // Freeze pickup so the queue actually fills.
  for (int I = 0; I < 4; ++I)
    ASSERT_EQ(Q.submit([&] { Ran.fetch_add(1); }),
              JobQueue::Submit::Accepted);
  EXPECT_EQ(Q.submit([&] { Ran.fetch_add(1); }),
            JobQueue::Submit::Overloaded)
      << "the 5th job must be shed, not queued";
  JobQueue::Counters C = Q.counters();
  EXPECT_EQ(C.Shed, 1u);
  EXPECT_EQ(C.Pending, 4u);
  Q.resume();
  Q.drain();
  EXPECT_EQ(Ran.load(), 4) << "shed jobs must never run";
  EXPECT_EQ(Q.counters().Executed, 4u);
}

TEST(JobQueueTest, RoundRobinInterleavesClients) {
  // Client A floods 4 jobs before client B's single job arrives; fair
  // pickup still serves B second, not fifth.
  std::vector<std::string> Order;
  std::mutex OrderMu;
  JobQueue Q(1);
  Q.pause();
  auto Job = [&](std::string Tag) {
    return [&, Tag] {
      std::lock_guard<std::mutex> Lock(OrderMu);
      Order.push_back(Tag);
    };
  };
  for (int I = 1; I <= 4; ++I)
    ASSERT_EQ(Q.submit(Job("A" + std::to_string(I)), /*Client=*/100),
              JobQueue::Submit::Accepted);
  ASSERT_EQ(Q.submit(Job("B1"), /*Client=*/200),
            JobQueue::Submit::Accepted);
  Q.resume();
  Q.drain();
  ASSERT_EQ(Order.size(), 5u);
  EXPECT_EQ(Order[0], "A1");
  EXPECT_EQ(Order[1], "B1") << "one hog must not starve other clients";
  EXPECT_EQ(Order[2], "A2");
  EXPECT_EQ(Order[3], "A3");
  EXPECT_EQ(Order[4], "A4");
}

//===----------------------------------------------------------------------===//
// AsdfService: compile
//===----------------------------------------------------------------------===//

TEST(ServiceTest, CompileMatchesDirectSessionByteForByte) {
  AsdfService Service;
  ServiceRequest R = bvCompileRequest();
  ServiceResponse Resp = Service.handle(R);
  ASSERT_TRUE(Resp.Ok) << Resp.Error.Message;
  EXPECT_FALSE(Resp.CacheHit);
  EXPECT_EQ(Resp.Key.size(), 32u);

  CompileSession S(R.Source, R.Bindings);
  Circuit *Flat = S.flatCircuit();
  ASSERT_NE(Flat, nullptr) << S.errorMessage();
  EXPECT_EQ(Resp.Artifact, emitOpenQasm3(*Flat));
}

TEST(ServiceTest, RepeatCompileHitsTheCache) {
  AsdfService Service;
  ServiceRequest R = bvCompileRequest();
  ServiceResponse Cold = Service.handle(R);
  ASSERT_TRUE(Cold.Ok) << Cold.Error.Message;
  ServiceResponse Warm = Service.handle(R);
  ASSERT_TRUE(Warm.Ok) << Warm.Error.Message;
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(Warm.Key, Cold.Key);
  EXPECT_EQ(Warm.Artifact, Cold.Artifact) << "hit serves identical bytes";
  EXPECT_EQ(Warm.CompileSecs, 0.0);

  CacheStats CS = Service.cache().stats();
  EXPECT_EQ(CS.Hits, 1u);
  EXPECT_EQ(CS.Misses, 1u);

  // A different emit target of the same program is a distinct entry.
  ServiceRequest Qir = R;
  Qir.Emit = "qir";
  ServiceResponse QirResp = Service.handle(Qir);
  ASSERT_TRUE(QirResp.Ok) << QirResp.Error.Message;
  EXPECT_FALSE(QirResp.CacheHit);
  EXPECT_NE(QirResp.Key, Cold.Key);
}

TEST(ServiceTest, CompileErrorsCarryMachineReadableKinds) {
  AsdfService Service;

  ServiceRequest Bad = bvCompileRequest();
  Bad.Emit = "mlir";
  EXPECT_EQ(Service.handle(Bad).Error.Kind, "bad-request");

  Bad = bvCompileRequest();
  Bad.Pipeline = "turbo";
  ServiceResponse Resp = Service.handle(Bad);
  EXPECT_EQ(Resp.Error.Kind, "bad-request");
  EXPECT_NE(Resp.Error.Message.find("unknown pipeline preset"),
            std::string::npos);

  Bad = bvCompileRequest();
  Bad.Source = "qpu kernel() -> bit { return nonsense }";
  Resp = Service.handle(Bad);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Error.Kind, "compile-error");
  EXPECT_FALSE(Resp.Error.Message.empty());

  // Errors are not cached: a retry recompiles (and fails identically).
  ServiceResponse Again = Service.handle(Bad);
  EXPECT_EQ(Again.Error.Message, Resp.Error.Message);

  Bad = bvCompileRequest();
  Bad.Pipeline = "no-opt"; // Keeps callables: qasm cannot be emitted.
  Resp = Service.handle(Bad);
  EXPECT_EQ(Resp.Error.Kind, "unsupported");
}

//===----------------------------------------------------------------------===//
// AsdfService: run
//===----------------------------------------------------------------------===//

TEST(ServiceTest, RunMatchesAsdfcReferenceBitForBit) {
  AsdfService Service;
  ServiceRequest R = coinRunRequest(1, 64, 0xfeedfaceULL);
  ServiceResponse Resp = Service.handle(R);
  ASSERT_TRUE(Resp.Ok) << Resp.Error.Message;
  ASSERT_EQ(Resp.Results.size(), 64u);
  EXPECT_EQ(Resp.Results, referenceRun(R));

  // Counts aggregate the per-shot lines.
  unsigned Total = 0;
  for (const auto &[Bits, N] : Resp.Counts)
    Total += N;
  EXPECT_EQ(Total, 64u);
}

TEST(ServiceTest, RunIsDeterministicAndCachesTheCircuit) {
  AsdfService Service;
  ServiceRequest R = coinRunRequest(1, 32, 7);
  ServiceResponse First = Service.handle(R);
  ASSERT_TRUE(First.Ok) << First.Error.Message;
  EXPECT_FALSE(First.CacheHit);

  // Same request again: circuit comes from cache, bits are identical.
  ServiceResponse Second = Service.handle(R);
  ASSERT_TRUE(Second.Ok) << Second.Error.Message;
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(Second.Results, First.Results);

  // Different seed, same circuit (still a hit), different stream is
  // allowed — but the jobs knob must never change the bits.
  ServiceRequest Wide = R;
  Wide.Jobs = 8;
  ServiceResponse Parallel = Service.handle(Wide);
  ASSERT_TRUE(Parallel.Ok) << Parallel.Error.Message;
  EXPECT_TRUE(Parallel.CacheHit);
  EXPECT_EQ(Parallel.Results, First.Results)
      << "worker count changed the bits";
}

TEST(ServiceTest, RunWithBindingsMatchesReference) {
  AsdfService Service;
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Run;
  R.Id = 9;
  R.Source = BVSource;
  R.Bindings = bvBindings("110101");
  R.Shots = 8;
  R.Seed = 3;
  ServiceResponse Resp = Service.handle(R);
  ASSERT_TRUE(Resp.Ok) << Resp.Error.Message;
  EXPECT_EQ(Resp.Results, referenceRun(R));
  // Bernstein-Vazirani: every shot reads back the secret.
  for (const std::string &Bits : Resp.Results)
    EXPECT_EQ(Bits, "110101");
}

TEST(ServiceTest, RunErrorsCarryMachineReadableKinds) {
  AsdfService Service;

  ServiceRequest R = coinRunRequest();
  R.Backend = "gpu";
  EXPECT_EQ(Service.handle(R).Error.Kind, "bad-request");

  R = coinRunRequest();
  R.Pipeline = "no-opt";
  EXPECT_EQ(Service.handle(R).Error.Kind, "unsupported");

  R = coinRunRequest();
  R.Source = "qpu kernel() -> bit { return }";
  EXPECT_EQ(Service.handle(R).Error.Kind, "compile-error");
}

TEST(ServiceTest, MpsBackendRunsOverTheWire) {
  AsdfService Service;
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Run;
  R.Id = 77;
  R.Source = BVSource;
  R.Bindings = bvBindings("1101");
  R.Shots = 12;
  R.Seed = 21;
  R.Backend = "mps";
  // Round-trip the wire encoding like a real client before handling.
  std::string Wire = R.toJson().write();
  ServiceRequest Back;
  uint64_t Id = 0;
  std::string Error;
  ASSERT_TRUE(parseRequestLine(Wire, Back, Id, Error)) << Error;
  EXPECT_EQ(Back.Backend, "mps");
  ServiceResponse Resp = Service.handle(Back);
  ASSERT_TRUE(Resp.Ok) << Resp.Error.Message;
  EXPECT_EQ(Resp.Results, referenceRun(R));
  // Bernstein-Vazirani on the tensor network still reads back the secret.
  for (const std::string &Bits : Resp.Results)
    EXPECT_EQ(Bits, "1101");

  // bind-run routes parametric sweeps to the tensor network too.
  ServiceRequest BR = bindRunRequest(78, {{0.0}, {45.5}, {90.0}});
  BR.Backend = "mps";
  ServiceResponse Sweep = Service.handle(BR);
  ASSERT_TRUE(Sweep.Ok) << Sweep.Error.Message;
  EXPECT_EQ(Sweep.PointResults.size(), 3u);

  // Unknown engine names stay a bad request on both verbs.
  BR.Backend = "tpu";
  EXPECT_EQ(Service.handle(BR).Error.Kind, "bad-request");
  ServiceRequest BadRun = coinRunRequest(79);
  BadRun.Backend = "tensor";
  EXPECT_EQ(Service.handle(BadRun).Error.Kind, "bad-request");
}

TEST(ServiceTest, ExpiredDeadlineTimesOutBeforeWork) {
  AsdfService Service;
  ServiceRequest R = coinRunRequest();
  // A deadline already in the past: the request must fail as a timeout
  // without compiling anything.
  ServiceResponse Resp = Service.handle(
      R, std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Error.Kind, "timeout");
  EXPECT_EQ(Service.cache().stats().Misses, 0u) << "no work was attempted";
}

TEST(ServiceTest, DeadlineBetweenShotsTimesOut) {
  AsdfService Service;
  // Warm the cache so the deliberately-slow run below spends its budget in
  // the simulator, not the compiler.
  ServiceRequest Warm = coinRunRequest(1, 4, 1);
  ASSERT_TRUE(Service.handle(Warm).Ok);

  // A shot count that takes far longer than the deadline: the cooperative
  // check between shot chunks must abort the run with a "timeout" error
  // instead of finishing long after the client gave up.
  ServiceRequest Slow = coinRunRequest(2, 2000000, 1);
  ServiceResponse Resp = Service.handle(
      Slow, std::chrono::steady_clock::now() + std::chrono::milliseconds(10));
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Error.Kind, "timeout");
  EXPECT_NE(Resp.Error.Message.find("between shots"), std::string::npos)
      << Resp.Error.Message;
}

//===----------------------------------------------------------------------===//
// AsdfService: bind-run
//===----------------------------------------------------------------------===//

TEST(ServiceTest, BindRunMatchesRecompilePerPointReference) {
  AsdfService Service;
  ServiceRequest R =
      bindRunRequest(1, {{0.0}, {45.5}, {90.0}, {181.25}}, 8, 0xfeedULL);
  ServiceResponse Resp = Service.handle(R);
  ASSERT_TRUE(Resp.Ok) << Resp.Error.Message;
  EXPECT_FALSE(Resp.CacheHit);
  EXPECT_EQ(Resp.PointResults, referenceSweep(R));

  // The same sweep again: the compiled circuit comes from the cache and
  // the bits are identical.
  R.Id = 2;
  ServiceResponse Again = Service.handle(R);
  ASSERT_TRUE(Again.Ok) << Again.Error.Message;
  EXPECT_TRUE(Again.CacheHit);
  EXPECT_EQ(Again.PointResults, Resp.PointResults);

  // The jobs knob must never change the bits.
  R.Id = 3;
  R.Jobs = 4;
  ServiceResponse Wide = Service.handle(R);
  ASSERT_TRUE(Wide.Ok) << Wide.Error.Message;
  EXPECT_EQ(Wide.PointResults, Resp.PointResults);

  ServiceRequest Stats;
  Stats.TheKind = ServiceRequest::Kind::Stats;
  Stats.Id = 4;
  ServiceResponse S = Service.handle(Stats);
  ASSERT_TRUE(S.Ok);
  EXPECT_EQ(S.StatsBody.get("requests")->get("bind_run")->asU64(), 3u);
}

TEST(ServiceTest, BindRunLiftsLiteralsIntoASharedKey) {
  // Two sources that differ only in their rotation-angle literal: the
  // canonicalizer lifts the literal before hashing, so the second request
  // reuses the first's compiled circuit — while each still runs with its
  // own angle.
  AsdfService Service;
  ServiceRequest A;
  A.TheKind = ServiceRequest::Kind::BindRun;
  A.Id = 1;
  A.Source = rotLiteralSource("45.5");
  A.Points = {{}};
  A.Shots = 16;
  A.Seed = 9;
  ServiceRequest B = A;
  B.Id = 2;
  B.Source = rotLiteralSource("170.25");

  ServiceResponse RespA = Service.handle(A);
  ASSERT_TRUE(RespA.Ok) << RespA.Error.Message;
  EXPECT_FALSE(RespA.CacheHit);
  ServiceResponse RespB = Service.handle(B);
  ASSERT_TRUE(RespB.Ok) << RespB.Error.Message;
  EXPECT_TRUE(RespB.CacheHit) << "angle-only edit must share the artifact";
  EXPECT_EQ(RespA.Key, RespB.Key);

  // Each request still gets its own angle's results: bit-identical to a
  // direct compile of its literal source run at the derived point seed.
  for (const ServiceRequest *R : {&A, &B}) {
    CompileSession S(R->Source, ProgramBindings{});
    Circuit *Flat = S.flatCircuit();
    ASSERT_NE(Flat, nullptr) << S.errorMessage();
    SimBackend &Backend =
        *BackendRegistry::instance().lookup("sv"); // Matches the service's
                                                   // parametric dispatch.
    std::vector<std::string> Want;
    for (const ShotResult &Shot : Backend.runBatch(
             *Flat, R->Shots, deriveSweepPointSeed(R->Seed, 0), RunOptions()))
      Want.push_back(formatShotBits(*Flat, Shot));
    const ServiceResponse &Resp = R == &A ? RespA : RespB;
    ASSERT_EQ(Resp.PointResults.size(), 1u);
    EXPECT_EQ(Resp.PointResults[0], Want);
  }
}

TEST(ServiceTest, BindRunErrorsCarryMachineReadableKinds) {
  AsdfService Service;

  // No points at all.
  ServiceRequest R = bindRunRequest(1, {});
  ServiceResponse Resp = Service.handle(R);
  EXPECT_EQ(Resp.Error.Kind, "bad-request");
  EXPECT_NE(Resp.Error.Message.find("at least one point"),
            std::string::npos);

  // Point arity vs "params".
  R = bindRunRequest(2, {{1.0, 2.0}});
  EXPECT_EQ(Service.handle(R).Error.Kind, "bad-request");

  // Unknown sweep parameter.
  R = bindRunRequest(3, {{1.0}});
  R.SweepParams = {"phi"};
  Resp = Service.handle(R);
  EXPECT_EQ(Resp.Error.Kind, "bad-request");
  EXPECT_NE(Resp.Error.Message.find("phi"), std::string::npos);

  // Duplicate sweep parameter.
  R = bindRunRequest(4, {{1.0, 2.0}});
  R.SweepParams = {"theta", "theta"};
  EXPECT_EQ(Service.handle(R).Error.Kind, "bad-request");

  // The reserved lifted-name prefix.
  R = bindRunRequest(5, {{1.0}});
  R.SweepParams = {"__a0"};
  Resp = Service.handle(R);
  EXPECT_EQ(Resp.Error.Kind, "bad-request");
  EXPECT_NE(Resp.Error.Message.find("reserved"), std::string::npos);

  // A declared $param not covered by "params" and not liftable.
  R = bindRunRequest(6, {{}});
  R.SweepParams = {};
  Resp = Service.handle(R);
  EXPECT_EQ(Resp.Error.Kind, "bad-request");
  EXPECT_NE(Resp.Error.Message.find("theta"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Single-flight coalescing: concurrent identical requests compile once
//===----------------------------------------------------------------------===//

TEST(ServiceTest, ConcurrentIdenticalRequestsCompileExactlyOnce) {
  // The cache-stampede fix: N identical cold requests racing through
  // handle() must produce exactly one compilation — the leader's — with
  // every other request either coalescing onto the in-flight compile or
  // hitting the cache the leader populated. Before single-flight, all N
  // compiled the same program in parallel.
  constexpr unsigned N = 8;
  AsdfService Service;
  std::vector<ServiceResponse> Got(N);
  std::vector<std::thread> Threads;
  std::atomic<bool> Go{false};
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      while (!Go.load())
        std::this_thread::yield();
      Got[I] = Service.handle(bvCompileRequest(I + 1));
    });
  Go.store(true);
  for (std::thread &T : Threads)
    T.join();

  unsigned Misses = 0;
  for (unsigned I = 0; I < N; ++I) {
    ASSERT_TRUE(Got[I].Ok) << Got[I].Error.Message;
    EXPECT_EQ(Got[I].Id, I + 1);
    EXPECT_EQ(Got[I].Artifact, Got[0].Artifact);
    EXPECT_EQ(Got[I].Key, Got[0].Key);
    Misses += !Got[I].CacheHit;
  }
  EXPECT_EQ(Misses, 1u) << "exactly one leader compiles";

  ServiceRequest Stats;
  Stats.TheKind = ServiceRequest::Kind::Stats;
  Stats.Id = 99;
  ServiceResponse S = Service.handle(Stats);
  ASSERT_TRUE(S.Ok);
  const json::Value *Req = S.StatsBody.get("requests");
  ASSERT_NE(Req, nullptr);
  EXPECT_EQ(Req->get("compiled")->asU64(), 1u)
      << "the program must have been compiled exactly once";
  // Every non-leader either coalesced onto the flight or hit the cache.
  EXPECT_EQ(Req->get("coalesced")->asU64() +
                Service.cache().stats().Hits,
            N - 1u);
}

TEST(ServiceTest, StatsReportTheCountersAndFingerprint) {
  AsdfService Service;
  Service.handle(bvCompileRequest(1));
  Service.handle(bvCompileRequest(2)); // Hit.
  Service.handle(coinRunRequest(3, 4, 1));

  ServiceRequest Stats;
  Stats.TheKind = ServiceRequest::Kind::Stats;
  Stats.Id = 4;
  ServiceResponse Resp = Service.handle(Stats);
  ASSERT_TRUE(Resp.Ok);
  const json::Value *Cache = Resp.StatsBody.get("cache");
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->get("hits")->asU64(), 1u);
  EXPECT_EQ(Cache->get("misses")->asU64(), 2u);
  const json::Value *Req = Resp.StatsBody.get("requests");
  ASSERT_NE(Req, nullptr);
  EXPECT_EQ(Req->get("compile")->asU64(), 2u);
  EXPECT_EQ(Req->get("run")->asU64(), 1u);
  EXPECT_EQ(Req->get("shots")->asU64(), 4u);
  EXPECT_EQ(Resp.StatsBody.get("fingerprint")->asString(),
            buildFingerprint());
}

TEST(ServiceTest, ShutdownFlipsTheFlagAndSubmitRejects) {
  AsdfService Service;
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Shutdown;
  R.Id = 1;
  EXPECT_FALSE(Service.shuttingDown());
  EXPECT_TRUE(Service.handle(R).Ok);
  EXPECT_TRUE(Service.shuttingDown());
  Service.drain();
  EXPECT_EQ(Service.submit(coinRunRequest(), [](ServiceResponse) {}),
            JobQueue::Submit::Draining)
      << "submit after drain must be rejected without running";
}

//===----------------------------------------------------------------------===//
// Load shedding and admission control
//===----------------------------------------------------------------------===//

TEST(ServiceShedTest, BoundedQueueShedsWithARetryHint) {
  ServiceOptions Options;
  Options.Workers = 1;
  Options.MaxQueueDepth = 2;
  AsdfService Service(Options);
  Service.queue().pause();
  std::atomic<int> Answered{0};
  auto Sink = [&](ServiceResponse) { Answered.fetch_add(1); };
  ASSERT_EQ(Service.submit(coinRunRequest(1), Sink),
            JobQueue::Submit::Accepted);
  ASSERT_EQ(Service.submit(coinRunRequest(2), Sink),
            JobQueue::Submit::Accepted);
  EXPECT_EQ(Service.submit(coinRunRequest(3), Sink),
            JobQueue::Submit::Overloaded);

  // The wire answer the server sends for that outcome: machine-readable
  // kind plus a bounded backoff hint.
  ServiceResponse Shed = Service.overloadedResponse(3);
  EXPECT_FALSE(Shed.Ok);
  EXPECT_EQ(Shed.Id, 3u);
  EXPECT_EQ(Shed.Error.Kind, "overloaded");
  EXPECT_GE(Shed.Error.RetryAfterMs, 25u);
  EXPECT_LE(Shed.Error.RetryAfterMs, 2000u);

  Service.queue().resume();
  Service.drain();
  EXPECT_EQ(Answered.load(), 2) << "accepted jobs still answer";

  ServiceRequest Stats;
  Stats.TheKind = ServiceRequest::Kind::Stats;
  Stats.Id = 9;
  ServiceResponse Resp = Service.handle(Stats);
  ASSERT_TRUE(Resp.Ok);
  EXPECT_EQ(Resp.StatsBody.get("requests")->get("shed_overloaded")->asU64(),
            1u);
  EXPECT_EQ(Resp.StatsBody.get("queue")->get("shed")->asU64(), 1u);
}

TEST(ServiceShedTest, RunMemoryBudgetRefusesOversizedStatevectors) {
  ServiceOptions Options;
  Options.Workers = 1;
  Options.RunMemoryBytes = 16; // One amplitude: even 1 qubit won't fit.
  AsdfService Service(Options);
  ServiceRequest R = coinRunRequest();
  R.Backend = "sv";
  ServiceResponse Resp = Service.handle(R);
  ASSERT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Error.Kind, "resource-exhausted");
  EXPECT_NE(Resp.Error.Message.find("--run-mem-mb"), std::string::npos)
      << "the refusal must name the knob that raises the budget: "
      << Resp.Error.Message;

  ServiceRequest Stats;
  Stats.TheKind = ServiceRequest::Kind::Stats;
  Stats.Id = 2;
  ServiceResponse S = Service.handle(Stats);
  ASSERT_TRUE(S.Ok);
  EXPECT_EQ(S.StatsBody.get("requests")->get("shed_memory")->asU64(), 1u);
  Service.drain();
}

TEST(ServiceShedTest, RunMemoryBudgetAdmitsWhatFits) {
  ServiceOptions Options;
  Options.Workers = 1;
  Options.RunMemoryBytes = 1 << 20;
  AsdfService Service(Options);
  ServiceRequest R = coinRunRequest();
  R.Backend = "sv";
  ServiceResponse Resp = Service.handle(R);
  ASSERT_TRUE(Resp.Ok) << Resp.Error.Message;
  // The reservation is released after the run: repeats keep fitting.
  ServiceResponse Again = Service.handle(R);
  EXPECT_TRUE(Again.Ok) << Again.Error.Message;
  EXPECT_EQ(Again.Results, Resp.Results);
  Service.drain();
}

TEST(ServiceShedTest, ExpiredDeadlineCountsAsShed) {
  AsdfService Service(ServiceOptions{1});
  ServiceRequest R = coinRunRequest();
  ServiceResponse Resp = Service.handle(
      R, std::chrono::steady_clock::now() - std::chrono::seconds(1));
  ASSERT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Error.Kind, "timeout");
  ServiceRequest Stats;
  Stats.TheKind = ServiceRequest::Kind::Stats;
  Stats.Id = 2;
  ServiceResponse S = Service.handle(Stats);
  ASSERT_TRUE(S.Ok);
  EXPECT_EQ(S.StatsBody.get("requests")->get("shed_expired")->asU64(), 1u);
  Service.drain();
}

//===----------------------------------------------------------------------===//
// Concurrency: N threads x M mixed requests == the serial reference
//===----------------------------------------------------------------------===//

TEST(ServiceConcurrencyTest, MixedLoadIsBitIdenticalToSerial) {
  // A pool of distinct programs (different secrets -> different cache
  // keys) plus per-request seeds: enough variety that hits, misses, and
  // evictions all happen under load.
  constexpr unsigned NumThreads = 8;
  constexpr unsigned PerThread = 12;

  auto makeRequest = [](unsigned T, unsigned I) {
    ServiceRequest R;
    R.Id = T * 1000 + I;
    if (I % 3 == 0) {
      R.TheKind = ServiceRequest::Kind::Compile;
      R.Source = BVSource;
      R.Bindings = bvBindings(I % 2 ? "1011" : "0110");
      R.Emit = (I % 6 == 0) ? std::string("qasm") : std::string("circuit");
    } else {
      R.TheKind = ServiceRequest::Kind::Run;
      R.Source = CoinSource;
      R.Shots = 16 + I;
      R.Seed = uint64_t(T) << 32 | I;
      R.Jobs = 1 + I % 3;
    }
    return R;
  };

  // Serial reference on a fresh service.
  std::vector<std::vector<ServiceResponse>> Want(NumThreads);
  {
    AsdfService Serial(ServiceOptions{1, ArtifactCache::DefaultByteBudget});
    for (unsigned T = 0; T < NumThreads; ++T)
      for (unsigned I = 0; I < PerThread; ++I)
        Want[T].push_back(Serial.handle(makeRequest(T, I)));
  }

  // Concurrent execution of the identical request set.
  AsdfService Service(ServiceOptions{4, ArtifactCache::DefaultByteBudget});
  std::vector<std::vector<ServiceResponse>> Got(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < PerThread; ++I)
        Got[T].push_back(Service.handle(makeRequest(T, I)));
    });
  for (std::thread &Th : Threads)
    Th.join();

  for (unsigned T = 0; T < NumThreads; ++T)
    for (unsigned I = 0; I < PerThread; ++I) {
      const ServiceResponse &W = Want[T][I], &G = Got[T][I];
      ASSERT_EQ(G.Ok, W.Ok) << "thread " << T << " request " << I << ": "
                            << G.Error.Message;
      EXPECT_EQ(G.Artifact, W.Artifact) << "thread " << T << " req " << I;
      EXPECT_EQ(G.Results, W.Results) << "thread " << T << " req " << I;
      EXPECT_EQ(G.Key, W.Key) << "thread " << T << " req " << I;
    }

  // The duplicate programs across threads must have produced cache hits.
  EXPECT_GT(Service.cache().stats().Hits, 0u);
}

TEST(ServiceConcurrencyTest, SubmitCallbacksFireExactlyOnce) {
  AsdfService Service(ServiceOptions{4, ArtifactCache::DefaultByteBudget});
  constexpr unsigned N = 32;
  std::atomic<unsigned> Fired{0};
  std::vector<ServiceResponse> Out(N);
  std::atomic<unsigned> Done{0};
  for (unsigned I = 0; I < N; ++I)
    ASSERT_EQ(Service.submit(coinRunRequest(I, 8, I),
                             [&, I](ServiceResponse R) {
                               Out[I] = std::move(R);
                               Fired.fetch_add(1);
                               Done.fetch_add(1);
                             }),
              JobQueue::Submit::Accepted);
  Service.drain();
  EXPECT_EQ(Fired.load(), N);
  for (unsigned I = 0; I < N; ++I) {
    ASSERT_TRUE(Out[I].Ok) << Out[I].Error.Message;
    EXPECT_EQ(Out[I].Id, I);
    EXPECT_EQ(Out[I].Results, referenceRun(coinRunRequest(I, 8, I)))
        << "async result diverges from the serial reference";
  }
}

} // namespace
