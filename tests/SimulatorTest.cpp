//===- SimulatorTest.cpp - State-vector simulator unit tests --------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace asdf;

namespace {

constexpr double S2 = 0.70710678118654752440;

//===----------------------------------------------------------------------===//
// Single-qubit gates against known matrices
//===----------------------------------------------------------------------===//

TEST(SimulatorTest, XFlips) {
  StateVector SV(1);
  SV.apply(GateKind::X, {}, {0}, 0);
  EXPECT_NEAR(std::abs(SV.amplitudes()[1]), 1.0, 1e-12);
}

TEST(SimulatorTest, HCreatesSuperposition) {
  StateVector SV(1);
  SV.apply(GateKind::H, {}, {0}, 0);
  EXPECT_NEAR(SV.amplitudes()[0].real(), S2, 1e-12);
  EXPECT_NEAR(SV.amplitudes()[1].real(), S2, 1e-12);
}

TEST(SimulatorTest, YOnZero) {
  // Y|0> = i|1>.
  StateVector SV(1);
  SV.apply(GateKind::Y, {}, {0}, 0);
  EXPECT_NEAR(SV.amplitudes()[1].imag(), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(SV.amplitudes()[0]), 0.0, 1e-12);
}

TEST(SimulatorTest, SThenSIsZ) {
  StateVector A(1), B(1);
  A.apply(GateKind::H, {}, {0}, 0);
  B.apply(GateKind::H, {}, {0}, 0);
  A.apply(GateKind::S, {}, {0}, 0);
  A.apply(GateKind::S, {}, {0}, 0);
  B.apply(GateKind::Z, {}, {0}, 0);
  EXPECT_NEAR(A.overlap(B), 1.0, 1e-12);
}

TEST(SimulatorTest, TFourthPowerIsZ) {
  StateVector A(1), B(1);
  A.apply(GateKind::H, {}, {0}, 0);
  B.apply(GateKind::H, {}, {0}, 0);
  for (int I = 0; I < 4; ++I)
    A.apply(GateKind::T, {}, {0}, 0);
  B.apply(GateKind::Z, {}, {0}, 0);
  EXPECT_NEAR(A.overlap(B), 1.0, 1e-12);
}

TEST(SimulatorTest, PIsPhaseOnOne) {
  StateVector SV(1);
  SV.apply(GateKind::H, {}, {0}, 0);
  SV.apply(GateKind::P, {}, {0}, M_PI / 3);
  Amplitude A1 = SV.amplitudes()[1];
  EXPECT_NEAR(std::arg(A1), M_PI / 3, 1e-12);
  // |0> amplitude untouched.
  EXPECT_NEAR(SV.amplitudes()[0].real(), S2, 1e-12);
}

TEST(SimulatorTest, RotationPeriodicity) {
  // RX(2 pi) = -I: probabilities unchanged.
  StateVector SV(1);
  SV.apply(GateKind::RX, {}, {0}, 2 * M_PI);
  EXPECT_NEAR(std::abs(SV.amplitudes()[0]), 1.0, 1e-12);
  EXPECT_NEAR(SV.amplitudes()[0].real(), -1.0, 1e-12); // global -1 phase
}

TEST(SimulatorTest, RYAngleSweep) {
  for (double Theta : {0.3, 0.9, 1.7, 2.9}) {
    StateVector SV(1);
    SV.apply(GateKind::RY, {}, {0}, Theta);
    EXPECT_NEAR(SV.probOne(0), std::pow(std::sin(Theta / 2), 2), 1e-12);
  }
}

TEST(SimulatorTest, RZIsDiagonal) {
  StateVector SV(1);
  SV.apply(GateKind::H, {}, {0}, 0);
  SV.apply(GateKind::RZ, {}, {0}, 0.8);
  EXPECT_NEAR(SV.probOne(0), 0.5, 1e-12); // no population transfer
}

//===----------------------------------------------------------------------===//
// Multi-qubit behavior and conventions
//===----------------------------------------------------------------------===//

TEST(SimulatorTest, Qubit0IsMostSignificant) {
  StateVector SV(2);
  SV.apply(GateKind::X, {}, {0}, 0);
  // |10>: index 0b10 = 2.
  EXPECT_NEAR(std::abs(SV.amplitudes()[2]), 1.0, 1e-12);
}

TEST(SimulatorTest, CxEntangles) {
  StateVector SV(2);
  SV.apply(GateKind::H, {}, {0}, 0);
  SV.apply(GateKind::X, {0}, {1}, 0);
  // Bell state: (|00> + |11>)/sqrt2.
  EXPECT_NEAR(std::abs(SV.amplitudes()[0]), S2, 1e-12);
  EXPECT_NEAR(std::abs(SV.amplitudes()[3]), S2, 1e-12);
  EXPECT_NEAR(std::abs(SV.amplitudes()[1]), 0.0, 1e-12);
}

TEST(SimulatorTest, ControlOnZeroDoesNothing) {
  StateVector SV(2);
  SV.apply(GateKind::X, {0}, {1}, 0);
  EXPECT_NEAR(std::abs(SV.amplitudes()[0]), 1.0, 1e-12);
}

TEST(SimulatorTest, SwapExchanges) {
  StateVector SV(2);
  SV.apply(GateKind::X, {}, {0}, 0); // |10>
  SV.apply(GateKind::Swap, {}, {0, 1}, 0);
  EXPECT_NEAR(std::abs(SV.amplitudes()[1]), 1.0, 1e-12); // |01>
}

TEST(SimulatorTest, ControlledSwapIsFredkin) {
  StateVector SV(3);
  SV.apply(GateKind::X, {}, {0}, 0);
  SV.apply(GateKind::X, {}, {1}, 0); // |110>
  SV.apply(GateKind::Swap, {0}, {1, 2}, 0);
  EXPECT_NEAR(std::abs(SV.amplitudes()[0b101]), 1.0, 1e-12);
}

TEST(SimulatorTest, MultiControlRequiresAll) {
  StateVector SV(3);
  SV.apply(GateKind::X, {}, {0}, 0); // only one control set
  SV.apply(GateKind::X, {0, 1}, {2}, 0);
  EXPECT_NEAR(std::abs(SV.amplitudes()[0b100]), 1.0, 1e-12);
  SV.apply(GateKind::X, {}, {1}, 0); // both controls set
  SV.apply(GateKind::X, {0, 1}, {2}, 0);
  EXPECT_NEAR(std::abs(SV.amplitudes()[0b111]), 1.0, 1e-12);
}

//===----------------------------------------------------------------------===//
// Measurement and reset
//===----------------------------------------------------------------------===//

TEST(SimulatorTest, MeasurementCollapses) {
  std::mt19937_64 Rng(5);
  StateVector SV(1);
  SV.apply(GateKind::H, {}, {0}, 0);
  bool Outcome = SV.measure(0, Rng);
  EXPECT_NEAR(SV.probOne(0), Outcome ? 1.0 : 0.0, 1e-12);
}

TEST(SimulatorTest, MeasurementStatisticsFollowBorn) {
  // RY(theta) gives P(1) = sin^2(theta/2); check frequencies.
  double Theta = 1.2;
  unsigned Ones = 0, Shots = 4000;
  for (unsigned S = 0; S < Shots; ++S) {
    std::mt19937_64 Rng(S);
    StateVector SV(1);
    SV.apply(GateKind::RY, {}, {0}, Theta);
    Ones += SV.measure(0, Rng);
  }
  double Want = std::pow(std::sin(Theta / 2), 2);
  EXPECT_NEAR(double(Ones) / Shots, Want, 0.03);
}

TEST(SimulatorTest, MeasuringBellCorrelates) {
  for (unsigned S = 0; S < 20; ++S) {
    std::mt19937_64 Rng(S * 3 + 1);
    StateVector SV(2);
    SV.apply(GateKind::H, {}, {0}, 0);
    SV.apply(GateKind::X, {0}, {1}, 0);
    bool A = SV.measure(0, Rng);
    bool B = SV.measure(1, Rng);
    EXPECT_EQ(A, B);
  }
}

TEST(SimulatorTest, ResetToZero) {
  std::mt19937_64 Rng(11);
  StateVector SV(1);
  SV.apply(GateKind::H, {}, {0}, 0);
  SV.reset(0, Rng);
  EXPECT_NEAR(SV.probOne(0), 0.0, 1e-12);
}

//===----------------------------------------------------------------------===//
// Circuit-level execution helpers
//===----------------------------------------------------------------------===//

TEST(SimulatorTest, ConditionalInstructionsHonorBits) {
  // Measure |1>, then conditionally flip another qubit.
  Circuit C;
  C.NumQubits = 2;
  C.NumBits = 1;
  C.append(CircuitInstr::gate(GateKind::X, {}, {0}));
  C.append(CircuitInstr::measure(0, 0));
  CircuitInstr Cond = CircuitInstr::gate(GateKind::X, {}, {1});
  Cond.CondBit = 0;
  C.append(Cond);
  C.append(CircuitInstr::measure(1, 1)); // re-measure to observe
  // Hmm: need a second cbit for qubit 1.
  C.NumBits = 2;
  C.Instrs.back() = CircuitInstr::measure(1, 1);
  ShotResult R = simulate(C, 3);
  EXPECT_TRUE(R.Bits[0]);
  EXPECT_TRUE(R.Bits[1]);
}

TEST(SimulatorTest, RunShotsAggregates) {
  Circuit C;
  C.NumQubits = 1;
  C.NumBits = 1;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::measure(0, 0));
  std::map<std::string, unsigned> Counts = runShots(C, 2000, 9);
  ASSERT_EQ(Counts.size(), 2u);
  EXPECT_NEAR(Counts["0"] / 2000.0, 0.5, 0.05);
}

TEST(SimulatorTest, UnitaryOfCxMatchesMatrix) {
  Circuit C;
  C.NumQubits = 2;
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  std::vector<std::vector<Amplitude>> U = circuitUnitary(C);
  std::vector<std::vector<Amplitude>> Want(4, std::vector<Amplitude>(4));
  Want[0][0] = Want[1][1] = Want[3][2] = Want[2][3] = Amplitude(1);
  EXPECT_TRUE(unitariesEquivalent(U, Want));
}

TEST(SimulatorTest, UnitaryEquivalenceUpToGlobalPhase) {
  Circuit A, B;
  A.NumQubits = B.NumQubits = 1;
  // RZ(pi) = diag(-i, i) vs Z = diag(1, -1): equal up to phase -i.
  A.append(CircuitInstr::gate(GateKind::RZ, {}, {0}, M_PI));
  B.append(CircuitInstr::gate(GateKind::Z, {}, {0}));
  EXPECT_TRUE(unitariesEquivalent(circuitUnitary(A), circuitUnitary(B)));
}

TEST(SimulatorTest, OverlapDetectsOrthogonality) {
  StateVector A(1), B(1);
  B.apply(GateKind::X, {}, {0}, 0);
  EXPECT_NEAR(A.overlap(B), 0.0, 1e-12);
  EXPECT_NEAR(A.overlap(A), 1.0, 1e-12);
}

} // namespace
