//===- BackendTest.cpp - Codegen, estimator, and baseline tests -----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "codegen/QasmEmitter.h"
#include "codegen/QirEmitter.h"
#include "compiler/CompileSession.h"
#include "estimate/ResourceEstimator.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace asdf;

namespace {

Circuit bvCircuit(const std::string &Secret) {
  const char *Source = R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";
  ProgramBindings B;
  B.Captures["f"]["secret"] = CaptureValue::bitsFromString(Secret);
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  CompileSession S(Source, B);
  Circuit *C = S.flatCircuit();
  EXPECT_NE(C, nullptr) << S.errorMessage();
  return C ? std::move(*C) : Circuit();
}

//===----------------------------------------------------------------------===//
// OpenQASM 3
//===----------------------------------------------------------------------===//

TEST(QasmTest, EmitsWellFormedProgram) {
  Circuit C = bvCircuit("101");
  std::string Qasm = emitOpenQasm3(C);
  EXPECT_NE(Qasm.find("OPENQASM 3.0;"), std::string::npos);
  EXPECT_NE(Qasm.find("include \"stdgates.inc\";"), std::string::npos);
  EXPECT_NE(Qasm.find("qubit["), std::string::npos);
  EXPECT_NE(Qasm.find("h q["), std::string::npos);
  EXPECT_NE(Qasm.find("measure q["), std::string::npos);
}

TEST(QasmTest, NamedControlledGates) {
  Circuit C;
  C.NumQubits = 3;
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  C.append(CircuitInstr::gate(GateKind::X, {0, 1}, {2}));
  C.append(CircuitInstr::gate(GateKind::Z, {0}, {1}));
  C.append(CircuitInstr::gate(GateKind::P, {0}, {1}, 0.25));
  std::string Qasm = emitOpenQasm3(C);
  EXPECT_NE(Qasm.find("cx q[0], q[1];"), std::string::npos);
  EXPECT_NE(Qasm.find("ccx q[0], q[1], q[2];"), std::string::npos);
  EXPECT_NE(Qasm.find("cz q[0], q[1];"), std::string::npos);
  EXPECT_NE(Qasm.find("cp(0.25) q[0], q[1];"), std::string::npos);
}

TEST(QasmTest, DynamicCircuitConditions) {
  Circuit C;
  C.NumQubits = 1;
  C.NumBits = 1;
  C.append(CircuitInstr::measure(0, 0));
  CircuitInstr I = CircuitInstr::gate(GateKind::X, {}, {0});
  I.CondBit = 0;
  C.append(I);
  std::string Qasm = emitOpenQasm3(C);
  EXPECT_NE(Qasm.find("if (c[0] == 1) { x q[0]; }"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// QIR
//===----------------------------------------------------------------------===//

TEST(QirTest, BaseProfileStraightLine) {
  Circuit C = bvCircuit("1011");
  std::optional<std::string> Qir = emitQirBaseProfile(C);
  ASSERT_TRUE(Qir.has_value());
  EXPECT_NE(Qir->find("define void @main()"), std::string::npos);
  EXPECT_NE(Qir->find("__quantum__qis__h__body"), std::string::npos);
  EXPECT_NE(Qir->find("__quantum__qis__mz__body"), std::string::npos);
  EXPECT_NE(Qir->find("base_profile"), std::string::npos);
  // Base profile forbids callables entirely.
  EXPECT_EQ(Qir->find("callable"), std::string::npos);
}

TEST(QirTest, BaseProfileRejectsDynamicCircuits) {
  Circuit C;
  C.NumQubits = 1;
  C.NumBits = 1;
  C.append(CircuitInstr::measure(0, 0));
  CircuitInstr I = CircuitInstr::gate(GateKind::X, {}, {0});
  I.CondBit = 0;
  C.append(I);
  EXPECT_FALSE(emitQirBaseProfile(C).has_value());
}

TEST(QirTest, UnrestrictedEmitsCallablesWhenNotInlined) {
  const char *Source = R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";
  ProgramBindings B;
  B.Captures["f"]["secret"] = CaptureValue::bitsFromString("101");
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  SessionOptions Opts;
  Opts.Plan = presetPlan("no-opt");
  CompileSession S(Source, B, Opts);
  Module *QCircIR = S.qcircIR();
  ASSERT_NE(QCircIR, nullptr) << S.errorMessage();
  QirCallableStats Stats;
  std::string Qir = emitQirUnrestricted(*QCircIR, &Stats);
  EXPECT_GT(Stats.Creates, 0u);
  EXPECT_GT(Stats.Invokes, 0u);
  EXPECT_NE(Qir.find("__quantum__rt__callable_create"), std::string::npos);
  EXPECT_NE(Qir.find("__quantum__rt__callable_invoke"), std::string::npos);
  EXPECT_NE(Qir.find("__FunctionTable"), std::string::npos);
}

TEST(QirTest, UnrestrictedInlinedHasNoCallables) {
  const char *Source = R"(
qpu kernel(q: qubit[2]) -> qubit[2] { return q | pm[2] >> std[2] }
)";
  CompileSession S(Source, {});
  Module *QCircIR = S.qcircIR();
  ASSERT_NE(QCircIR, nullptr) << S.errorMessage();
  QirCallableStats Stats;
  emitQirUnrestricted(*QCircIR, &Stats);
  EXPECT_EQ(Stats.Creates, 0u);
  EXPECT_EQ(Stats.Invokes, 0u);
}

//===----------------------------------------------------------------------===//
// Resource estimator
//===----------------------------------------------------------------------===//

TEST(EstimatorTest, PaperParameters) {
  SurfaceCodeParams P;
  EXPECT_EQ(P.PhysPerLogical, 338u); // [[338, 1, 13]]
  EXPECT_EQ(P.CodeDistance, 13u);
  EXPECT_DOUBLE_EQ(P.LogicalCycleSeconds, 5.2e-6);
}

TEST(EstimatorTest, MonotoneInTCount) {
  CircuitStats A, B;
  A.TCount = 100;
  A.TDepth = 100;
  A.Depth = 100;
  B = A;
  B.TCount = 1000;
  B.TDepth = 1000;
  B.Depth = 1000;
  ResourceEstimate EA = estimateResources(A, 10);
  ResourceEstimate EB = estimateResources(B, 10);
  EXPECT_GT(EB.RuntimeSeconds, EA.RuntimeSeconds);
  EXPECT_GE(EB.PhysicalQubits, EA.PhysicalQubits);
}

TEST(EstimatorTest, MonotoneInWidth) {
  CircuitStats S;
  S.Depth = 10;
  ResourceEstimate Narrow = estimateResources(S, 8);
  ResourceEstimate Wide = estimateResources(S, 64);
  EXPECT_GT(Wide.PhysicalQubits, Narrow.PhysicalQubits);
  EXPECT_GT(Wide.LogicalQubits, Narrow.LogicalQubits);
}

TEST(EstimatorTest, TwoQubitSerializationDrivesCliffordRuntime) {
  CircuitStats S;
  S.Depth = 3;
  S.TwoQubitCount = 500; // Clifford-only circuit, many CNOTs.
  ResourceEstimate E = estimateResources(S, 16);
  EXPECT_GE(E.LogicalDepth, 500u);
}

//===----------------------------------------------------------------------===//
// Baselines
//===----------------------------------------------------------------------===//

class BaselineCorrectness
    : public ::testing::TestWithParam<std::tuple<BenchAlgorithm, int>> {};

TEST_P(BaselineCorrectness, BVStyleRecoverSecret) {
  auto [Alg, StyleInt] = GetParam();
  if (Alg != BenchAlgorithm::BV && Alg != BenchAlgorithm::DJ)
    GTEST_SKIP();
  BaselineStyle Style = static_cast<BaselineStyle>(StyleInt);
  unsigned N = 5;
  Circuit C = buildBaselineCircuit(Alg, Style, N);
  ShotResult Shot = simulate(C, 3);
  std::string Out;
  for (unsigned I = 0; I < N; ++I)
    Out.push_back(Shot.Bits[I] ? '1' : '0');
  std::string Want;
  for (unsigned I = 0; I < N; ++I)
    Want.push_back(Alg == BenchAlgorithm::BV ? (I % 2 == 0 ? '1' : '0')
                                             : '1');
  EXPECT_EQ(Out, Want) << baselineStyleName(Style);
}

TEST_P(BaselineCorrectness, GroverFindsAllOnes) {
  auto [Alg, StyleInt] = GetParam();
  if (Alg != BenchAlgorithm::Grover)
    GTEST_SKIP();
  BaselineStyle Style = static_cast<BaselineStyle>(StyleInt);
  unsigned N = 3;
  Circuit C = buildBaselineCircuit(Alg, Style, N);
  unsigned Hits = 0, Shots = 48;
  for (unsigned S = 0; S < Shots; ++S) {
    ShotResult Shot = simulate(C, S);
    bool All = true;
    for (unsigned I = 0; I < N; ++I)
      All &= Shot.Bits[I];
    Hits += All;
  }
  // 2 iterations at N=3: success probability ~0.94.
  EXPECT_GT(Hits * 1.0 / Shots, 0.8) << baselineStyleName(Style);
}

INSTANTIATE_TEST_SUITE_P(
    Backend, BaselineCorrectness,
    ::testing::Combine(::testing::Values(BenchAlgorithm::BV,
                                         BenchAlgorithm::DJ,
                                         BenchAlgorithm::Grover),
                       ::testing::Values(0, 1, 2)));

TEST(BaselineTest, QuipperUsesMoreQubitsOnBV) {
  Circuit Qiskit =
      buildBaselineCircuit(BenchAlgorithm::BV, BaselineStyle::Qiskit, 8);
  Circuit Quipper =
      buildBaselineCircuit(BenchAlgorithm::BV, BaselineStyle::Quipper, 8);
  EXPECT_GT(Quipper.NumQubits, Qiskit.NumQubits);
  EXPECT_GT(Quipper.stats().Total, Qiskit.stats().Total);
}

TEST(BaselineTest, SelingerBeatsNaiveOnGroverTCount) {
  Circuit Qiskit =
      buildBaselineCircuit(BenchAlgorithm::Grover, BaselineStyle::Qiskit, 8);
  Circuit QSharp =
      buildBaselineCircuit(BenchAlgorithm::Grover, BaselineStyle::QSharp, 8);
  EXPECT_LT(QSharp.stats().TCount, Qiskit.stats().TCount);
}

TEST(BaselineTest, QuipperPeriodFindingHasNoSwaps) {
  Circuit Quipper = buildBaselineCircuit(BenchAlgorithm::PeriodFinding,
                                         BaselineStyle::Quipper, 8);
  Circuit Qiskit = buildBaselineCircuit(BenchAlgorithm::PeriodFinding,
                                        BaselineStyle::Qiskit, 8);
  auto CountSwaps = [](const Circuit &C) {
    unsigned Count = 0;
    for (const CircuitInstr &I : C.Instrs)
      Count += I.TheKind == CircuitInstr::Kind::Gate &&
               I.Gate == GateKind::Swap;
    return Count;
  };
  EXPECT_EQ(CountSwaps(Quipper), 0u); // Renaming-based swaps (§8.3).
  EXPECT_GT(CountSwaps(Qiskit), 0u);
}

TEST(TranspileTest, CancelsAdjacentInverses) {
  Circuit C;
  C.NumQubits = 2;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::S, {}, {1}));
  C.append(CircuitInstr::gate(GateKind::Sdg, {}, {1}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  Circuit Out = transpileO3(C);
  EXPECT_EQ(Out.Instrs.size(), 1u);
  EXPECT_EQ(Out.Instrs[0].Gate, GateKind::X);
}

TEST(TranspileTest, MergesRotations) {
  Circuit C;
  C.NumQubits = 1;
  C.append(CircuitInstr::gate(GateKind::P, {}, {0}, 0.5));
  C.append(CircuitInstr::gate(GateKind::P, {}, {0}, -0.5));
  Circuit Out = transpileO3(C);
  EXPECT_TRUE(Out.Instrs.empty());
}

TEST(TranspileTest, BlockedCancellationPreserved) {
  Circuit C;
  C.NumQubits = 2;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1})); // Blocks the pair.
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  Circuit Out = transpileO3(C);
  EXPECT_EQ(Out.Instrs.size(), 3u);
}

TEST(TranspileTest, PreservesSemantics) {
  Circuit C = buildBaselineCircuit(BenchAlgorithm::Grover,
                                   BaselineStyle::QSharp, 3);
  Circuit Opt = transpileO3(C);
  // Both circuits must find the marked item.
  unsigned Hits = 0;
  for (unsigned S = 0; S < 24; ++S) {
    ShotResult Shot = simulate(Opt, S);
    bool All = Shot.Bits[0] && Shot.Bits[1] && Shot.Bits[2];
    Hits += All;
  }
  EXPECT_GT(Hits, 18u);
}

//===----------------------------------------------------------------------===//
// Circuit stats
//===----------------------------------------------------------------------===//

TEST(StatsTest, CountsTGates) {
  Circuit C;
  C.NumQubits = 2;
  C.append(CircuitInstr::gate(GateKind::T, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::Tdg, {}, {1}));
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  CircuitStats S = C.stats();
  EXPECT_EQ(S.TCount, 2u);
  EXPECT_EQ(S.CxCount, 1u);
  EXPECT_EQ(S.TwoQubitCount, 1u);
  EXPECT_EQ(S.Total, 4u);
}

TEST(StatsTest, DepthLayering) {
  Circuit C;
  C.NumQubits = 2;
  // Parallel single-qubit gates: depth 1.
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::H, {}, {1}));
  EXPECT_EQ(C.stats().Depth, 1u);
  // A CX serializes them.
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  EXPECT_EQ(C.stats().Depth, 2u);
}

TEST(StatsTest, CliffordAngleRotationsNotCountedAsT) {
  Circuit C;
  C.NumQubits = 1;
  C.append(CircuitInstr::gate(GateKind::P, {}, {0}, M_PI / 2)); // S: Clifford
  C.append(CircuitInstr::gate(GateKind::P, {}, {0}, M_PI / 4)); // T
  C.append(CircuitInstr::gate(GateKind::P, {}, {0}, 0.3)); // arbitrary
  CircuitStats S = C.stats();
  EXPECT_EQ(S.TCount, 2u);
}

} // namespace
