//===- NoiseTest.cpp - Noise-model subsystem tests ------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The noise subsystem, pinned end to end: every built-in channel is CPTP,
/// trajectory sampling converges to closed-form expectations at fixed
/// seed, the stabilizer engine's Pauli-frame and Monte-Carlo paths agree
/// with dense trajectories in distribution, fusion respects channel
/// barriers, the spec parser round-trips and rejects garbage, and —
/// load-bearing — noisy runs stay bit-identical across every
/// {jobs, fuse} configuration.
///
//===----------------------------------------------------------------------===//

#include "noise/NoiseModel.h"
#include "noise/NoiseSpec.h"
#include "noise/PauliFrame.h"
#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"
#include "sim/StabilizerBackend.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

using namespace asdf;

namespace {

//===----------------------------------------------------------------------===//
// Channels
//===----------------------------------------------------------------------===//

TEST(ChannelTest, BuiltinsAreCPTP) {
  for (double P : {0.0, 0.01, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_TRUE(KrausChannel::depolarizing(P).isCPTP()) << "p=" << P;
    EXPECT_TRUE(KrausChannel::bitFlip(P).isCPTP()) << "p=" << P;
    EXPECT_TRUE(KrausChannel::phaseFlip(P).isCPTP()) << "p=" << P;
    EXPECT_TRUE(KrausChannel::amplitudeDamping(P).isCPTP()) << "g=" << P;
    EXPECT_TRUE(KrausChannel::phaseDamping(P).isCPTP()) << "l=" << P;
  }
  // A non-trace-preserving operator set must be rejected.
  Mat2 Half = Mat2::identity();
  Half.M[0][0] = Half.M[1][1] = 0.5;
  EXPECT_FALSE(KrausChannel::kraus({Half}, "broken").isCPTP());
}

TEST(ChannelTest, PauliDetection) {
  PauliProbs P;
  ASSERT_TRUE(KrausChannel::depolarizing(0.3).pauliProbs(P));
  EXPECT_NEAR(P.PI, 0.7, 1e-12);
  EXPECT_NEAR(P.PX, 0.1, 1e-12);
  EXPECT_NEAR(P.PY, 0.1, 1e-12);
  EXPECT_NEAR(P.PZ, 0.1, 1e-12);

  ASSERT_TRUE(KrausChannel::bitFlip(0.25).pauliProbs(P));
  EXPECT_NEAR(P.PX, 0.25, 1e-12);
  EXPECT_NEAR(P.PZ, 0.0, 1e-12);

  ASSERT_TRUE(KrausChannel::phaseFlip(0.125).pauliProbs(P));
  EXPECT_NEAR(P.PZ, 0.125, 1e-12);

  // Damping channels are not Pauli (except at rate 0).
  EXPECT_FALSE(KrausChannel::amplitudeDamping(0.2).pauliProbs(P));
  EXPECT_FALSE(KrausChannel::phaseDamping(0.2).pauliProbs(P));
  EXPECT_TRUE(KrausChannel::amplitudeDamping(0.0).pauliProbs(P));
}

//===----------------------------------------------------------------------===//
// Model assembly and lookup
//===----------------------------------------------------------------------===//

TEST(NoiseModelTest, ChannelLookupOrderAndClassification) {
  NoiseModel M;
  EXPECT_TRUE(M.empty());
  M.addGateChannel(GateKind::X, KrausChannel::bitFlip(0.1));
  M.addDefaultChannel(KrausChannel::depolarizing(0.01));
  M.addQubitChannel(1, KrausChannel::phaseFlip(0.2));
  M.setReadoutError(0.01, 0.02);
  EXPECT_FALSE(M.empty());
  EXPECT_TRUE(M.hasGateNoise());
  EXPECT_TRUE(M.isPauliOnly());

  // CX carries GateKind::X: the x channel applies to target then control,
  // and qubit 1's channel stacks on top wherever qubit 1 is touched.
  CircuitInstr Cx = CircuitInstr::gate(GateKind::X, {0}, {1});
  ASSERT_TRUE(M.affectsGate(Cx));
  std::vector<NoiseOp> Ops = M.noiseFor(Cx);
  ASSERT_EQ(Ops.size(), 3u);
  EXPECT_EQ(Ops[0].Qubit, 1u); // target: gate-kind channel
  EXPECT_EQ(Ops[1].Qubit, 1u); // target: per-qubit channel
  EXPECT_EQ(Ops[2].Qubit, 0u); // control: gate-kind channel

  // A kind with its own channels suppresses the default; one without
  // falls back to it.
  CircuitInstr H = CircuitInstr::gate(GateKind::H, {}, {0});
  std::vector<NoiseOp> HOps = M.noiseFor(H);
  ASSERT_EQ(HOps.size(), 1u);
  EXPECT_EQ(HOps[0].Channel->Name, KrausChannel::depolarizing(0.01).Name);

  // Measure/reset instructions carry no channels.
  EXPECT_FALSE(M.affectsGate(CircuitInstr::measure(0, 0)));
  EXPECT_TRUE(M.noiseFor(CircuitInstr::reset(0)).empty());

  // Readout lookup: per-qubit override beats the global error.
  M.setQubitReadoutError(3, 0.5, 0.5);
  EXPECT_NEAR(M.readoutFor(0).P0to1, 0.01, 1e-15);
  EXPECT_NEAR(M.readoutFor(3).P0to1, 0.5, 1e-15);

  // One general Kraus channel flips the whole model off the Pauli path.
  M.addQubitChannel(2, KrausChannel::amplitudeDamping(0.1));
  EXPECT_FALSE(M.isPauliOnly());

  std::string Error;
  EXPECT_TRUE(M.validate(Error)) << Error;
}

TEST(NoiseModelTest, ValidateRejectsBrokenChannels) {
  NoiseModel M;
  Mat2 Half = Mat2::identity();
  Half.M[0][0] = Half.M[1][1] = 0.5;
  M.addGateChannel(GateKind::H, KrausChannel::kraus({Half}, "broken"));
  std::string Error;
  EXPECT_FALSE(M.validate(Error));
  EXPECT_NE(Error.find("broken"), std::string::npos);
}

TEST(NoiseModelTest, PlanFindsFirstNoisyInstr) {
  NoiseModel M;
  M.addGateChannel(GateKind::T, KrausChannel::depolarizing(0.1));
  Circuit C;
  C.NumQubits = 2;
  C.NumBits = 2;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::T, {}, {0}));
  C.append(CircuitInstr::measure(0, 0));
  NoisePlan Plan = planNoise(M, C);
  ASSERT_EQ(Plan.PerInstr.size(), 3u);
  EXPECT_TRUE(Plan.PerInstr[0].empty());
  EXPECT_EQ(Plan.PerInstr[1].size(), 1u);
  EXPECT_EQ(Plan.FirstNoisyInstr, 1u);
}

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

TEST(NoiseSpecTest, ParsesFullSpec) {
  const char *Good = R"(
# gate channels
[gate:x]
depolarizing = 0.01

[gate:*]
bit_flip = 0.001     ; catch-all

[qubit:2]
amplitude_damping = 0.05
phase_damping = 0.02

[readout]
p0to1 = 0.01
p1to0 = 0.03

[readout:4]
p0to1 = 0.08
)";
  NoiseModel M;
  std::string Error;
  ASSERT_TRUE(parseNoiseSpec(Good, M, Error)) << Error;
  EXPECT_TRUE(M.hasGateNoise());
  EXPECT_FALSE(M.isPauliOnly()); // amplitude damping on qubit 2
  EXPECT_TRUE(M.validate(Error)) << Error;

  EXPECT_TRUE(M.affectsGate(CircuitInstr::gate(GateKind::X, {}, {0})));
  // H falls back to the catch-all channel.
  std::vector<NoiseOp> HOps =
      M.noiseFor(CircuitInstr::gate(GateKind::H, {}, {0}));
  ASSERT_EQ(HOps.size(), 1u);
  // Qubit 2 stacks its two damping channels in file order.
  std::vector<NoiseOp> Q2 =
      M.noiseFor(CircuitInstr::gate(GateKind::H, {}, {2}));
  ASSERT_EQ(Q2.size(), 3u);
  EXPECT_NE(Q2[1].Channel->Name.find("amplitude_damping"),
            std::string::npos);
  EXPECT_NE(Q2[2].Channel->Name.find("phase_damping"), std::string::npos);

  EXPECT_NEAR(M.readoutFor(0).P1to0, 0.03, 1e-15);
  EXPECT_NEAR(M.readoutFor(4).P0to1, 0.08, 1e-15);
  EXPECT_NEAR(M.readoutFor(4).P1to0, 0.0, 1e-15);
}

TEST(NoiseSpecTest, ReopenedReadoutSectionsMerge) {
  // Re-opening [readout] must continue it, not zero the keys the earlier
  // section set — and an empty re-open changes nothing.
  NoiseModel M;
  std::string Error;
  ASSERT_TRUE(parseNoiseSpec("[readout]\np0to1 = 0.01\n"
                             "[readout]\np1to0 = 0.03\n"
                             "[readout]\n",
                             M, Error))
      << Error;
  EXPECT_NEAR(M.globalReadoutError().P0to1, 0.01, 1e-15);
  EXPECT_NEAR(M.globalReadoutError().P1to0, 0.03, 1e-15);

  NoiseModel Q;
  ASSERT_TRUE(parseNoiseSpec("[readout:2]\np0to1 = 0.05\n"
                             "[readout:2]\np1to0 = 0.07\n",
                             Q, Error))
      << Error;
  ASSERT_NE(Q.qubitReadoutOverride(2), nullptr);
  EXPECT_NEAR(Q.readoutFor(2).P0to1, 0.05, 1e-15);
  EXPECT_NEAR(Q.readoutFor(2).P1to0, 0.07, 1e-15);
  // A fresh per-qubit section starts from zero, not from the global error.
  NoiseModel R;
  ASSERT_TRUE(parseNoiseSpec("[readout]\np0to1 = 0.5\n"
                             "[readout:1]\np1to0 = 0.25\n",
                             R, Error))
      << Error;
  EXPECT_NEAR(R.readoutFor(1).P0to1, 0.0, 1e-15);
  EXPECT_NEAR(R.readoutFor(1).P1to0, 0.25, 1e-15);
}

TEST(NoiseSpecTest, RejectsGarbageWithLineNumbers) {
  NoiseModel M;
  std::string Error;
  EXPECT_FALSE(parseNoiseSpec("[gate:cnot]\n", M, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos);
  EXPECT_FALSE(parseNoiseSpec("[gate:x]\nwarp_drive = 0.1\n", M, Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos);
  EXPECT_FALSE(parseNoiseSpec("[gate:x]\ndepolarizing = 1.5\n", M, Error));
  EXPECT_FALSE(parseNoiseSpec("[gate:x]\ndepolarizing = nope\n", M, Error));
  EXPECT_FALSE(parseNoiseSpec("depolarizing = 0.1\n", M, Error));
  EXPECT_NE(Error.find("outside any section"), std::string::npos);
  EXPECT_FALSE(parseNoiseSpec("[qubit:abc]\n", M, Error));
  EXPECT_FALSE(parseNoiseSpec("[readout]\nq = 0.1\n", M, Error));
  EXPECT_FALSE(parseNoiseSpec("[planet:3]\n", M, Error));
}

//===----------------------------------------------------------------------===//
// Fusion channel barriers
//===----------------------------------------------------------------------===//

TEST(FusionBarrierTest, PredicateAndChannelBarriers) {
  EXPECT_TRUE(isFusionBarrier(CircuitInstr::measure(0, 0)));
  EXPECT_TRUE(isFusionBarrier(CircuitInstr::reset(0)));
  CircuitInstr Cond = CircuitInstr::gate(GateKind::X, {}, {0});
  Cond.CondBit = 0;
  EXPECT_TRUE(isFusionBarrier(Cond));
  EXPECT_FALSE(isFusionBarrier(CircuitInstr::gate(GateKind::X, {}, {0})));

  // A fusible 4-gate run: one op without noise, but a channel on T splits
  // it and closes the shared prefix at the first noisy gate.
  Circuit C;
  C.NumQubits = 1;
  C.NumBits = 1;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::T, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::T, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::measure(0, 0));

  FusedCircuit Ideal = fuseCircuit(C);
  EXPECT_EQ(Ideal.GatesFused, 4u);
  EXPECT_EQ(Ideal.UnconditionalPrefixOps, 1u);

  NoiseModel M;
  M.addGateChannel(GateKind::T, KrausChannel::depolarizing(0.1));
  FusedCircuit Noisy = fuseCircuit(C, &M);
  // H runs stay fusible around them, but both T gates pass through.
  unsigned PassThroughT = 0;
  for (const FusedOp &Op : Noisy.Ops)
    if (Op.TheKind == FusedOp::Kind::Instr &&
        C.Instrs[Op.InstrIndex].TheKind == CircuitInstr::Kind::Gate &&
        C.Instrs[Op.InstrIndex].Gate == GateKind::T)
      ++PassThroughT;
  EXPECT_EQ(PassThroughT, 2u);
  // The shared prefix ends before the first noisy gate (only the leading
  // H remains shareable).
  EXPECT_EQ(Noisy.UnconditionalPrefixOps, 1u);
  EXPECT_EQ(Noisy.Ops[0].TheKind, FusedOp::Kind::Instr);
  EXPECT_EQ(C.Instrs[Noisy.Ops[0].InstrIndex].Gate, GateKind::H);
}

//===----------------------------------------------------------------------===//
// Trajectory convergence to closed forms
//===----------------------------------------------------------------------===//

double oneFrequency(const std::map<std::string, unsigned> &Counts,
                    unsigned Shots, char Bit = '1') {
  unsigned Ones = 0;
  for (const auto &KV : Counts)
    if (KV.first[0] == Bit)
      Ones += KV.second;
  return double(Ones) / Shots;
}

TEST(TrajectoryTest, AmplitudeDampingMatchesClosedForm) {
  // X |0> = |1>, then damping with rate g: P(1) = 1 - g.
  const double Gamma = 0.3;
  NoiseModel M;
  M.addGateChannel(GateKind::X, KrausChannel::amplitudeDamping(Gamma));
  Circuit C;
  C.NumQubits = 1;
  C.NumBits = 1;
  C.append(CircuitInstr::gate(GateKind::X, {}, {0}));
  C.append(CircuitInstr::measure(0, 0));
  RunOptions Opts;
  Opts.Noise = &M;
  const unsigned Shots = 20000;
  std::map<std::string, unsigned> Counts =
      runShots(C, Shots, 7, BackendKind::Statevector, Opts);
  EXPECT_NEAR(oneFrequency(Counts, Shots), 1.0 - Gamma, 0.02);
}

TEST(TrajectoryTest, RepeatedDampingCompounds) {
  // X then Z, damping after every gate: P(1) = (1 - g)^2 — the Z leaves
  // populations alone but triggers the catch-all channel.
  const double Gamma = 0.25;
  NoiseModel M;
  M.addDefaultChannel(KrausChannel::amplitudeDamping(Gamma));
  Circuit C;
  C.NumQubits = 1;
  C.NumBits = 1;
  C.append(CircuitInstr::gate(GateKind::X, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::Z, {}, {0}));
  C.append(CircuitInstr::measure(0, 0));
  RunOptions Opts;
  Opts.Noise = &M;
  const unsigned Shots = 20000;
  std::map<std::string, unsigned> Counts =
      runShots(C, Shots, 11, BackendKind::Statevector, Opts);
  EXPECT_NEAR(oneFrequency(Counts, Shots), (1.0 - Gamma) * (1.0 - Gamma),
              0.02);
}

TEST(TrajectoryTest, DepolarizingMatchesClosedForm) {
  // X |0> = |1>, depolarizing p: X and Y branches flip the population,
  // so P(0) = 2p/3 — on both engines (the model is Pauli-only).
  const double P = 0.3;
  NoiseModel M;
  M.addGateChannel(GateKind::X, KrausChannel::depolarizing(P));
  Circuit C;
  C.NumQubits = 1;
  C.NumBits = 1;
  C.append(CircuitInstr::gate(GateKind::X, {}, {0}));
  C.append(CircuitInstr::measure(0, 0));
  RunOptions Opts;
  Opts.Noise = &M;
  const unsigned Shots = 20000;
  for (BackendKind K : {BackendKind::Statevector, BackendKind::Stabilizer}) {
    std::map<std::string, unsigned> Counts = runShots(C, Shots, 13, K, Opts);
    EXPECT_NEAR(oneFrequency(Counts, Shots, '0'), 2.0 * P / 3.0, 0.02)
        << "backend " << int(K);
  }
}

TEST(TrajectoryTest, ReadoutErrorMatchesClosedForm) {
  NoiseModel M;
  M.setReadoutError(0.08, 0.15);
  Circuit C;
  C.NumQubits = 2;
  C.NumBits = 2;
  C.append(CircuitInstr::gate(GateKind::X, {}, {1}));
  C.append(CircuitInstr::measure(0, 0)); // true 0: flips with p0to1
  C.append(CircuitInstr::measure(1, 1)); // true 1: flips with p1to0
  RunOptions Opts;
  Opts.Noise = &M;
  const unsigned Shots = 20000;
  for (BackendKind K : {BackendKind::Statevector, BackendKind::Stabilizer}) {
    std::map<std::string, unsigned> Counts = runShots(C, Shots, 17, K, Opts);
    unsigned Bit0One = 0, Bit1Zero = 0;
    for (const auto &KV : Counts) {
      if (KV.first[0] == '1')
        Bit0One += KV.second;
      if (KV.first[1] == '0')
        Bit1Zero += KV.second;
    }
    EXPECT_NEAR(double(Bit0One) / Shots, 0.08, 0.01) << "backend " << int(K);
    EXPECT_NEAR(double(Bit1Zero) / Shots, 0.15, 0.015)
        << "backend " << int(K);
  }
}

TEST(TrajectoryTest, DepolarizedBellPairCorrelation) {
  // Bell pair with one depolarizing hit on qubit 1 (touched only by the
  // CX): X or Y branches break the correlation, Z does not, so
  // P(equal outcomes) = 1 - 2p/3. Both engines must land there.
  const double P = 0.24;
  NoiseModel M;
  M.addQubitChannel(1, KrausChannel::depolarizing(P));
  Circuit C;
  C.NumQubits = 2;
  C.NumBits = 2;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  C.append(CircuitInstr::measure(0, 0));
  C.append(CircuitInstr::measure(1, 1));
  RunOptions Opts;
  Opts.Noise = &M;
  const unsigned Shots = 20000;
  for (BackendKind K : {BackendKind::Statevector, BackendKind::Stabilizer}) {
    std::map<std::string, unsigned> Counts = runShots(C, Shots, 23, K, Opts);
    unsigned Equal = 0;
    for (const auto &KV : Counts)
      if (KV.first[0] == KV.first[1])
        Equal += KV.second;
    EXPECT_NEAR(double(Equal) / Shots, 1.0 - 2.0 * P / 3.0, 0.02)
        << "backend " << int(K);
  }
}

//===----------------------------------------------------------------------===//
// Cross-backend distribution agreement
//===----------------------------------------------------------------------===//

/// A random Clifford circuit ending in measure-all (as in SimBackendTest).
Circuit randomClifford(std::mt19937_64 &Rng, unsigned NumQubits,
                       unsigned NumGates) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  std::uniform_int_distribution<unsigned> PickGate(0, 8);
  std::uniform_int_distribution<unsigned> PickQubit(0, NumQubits - 1);
  for (unsigned G = 0; G < NumGates; ++G) {
    unsigned A = PickQubit(Rng), B = PickQubit(Rng);
    while (NumQubits > 1 && B == A)
      B = PickQubit(Rng);
    switch (PickGate(Rng)) {
    case 0: C.append(CircuitInstr::gate(GateKind::H, {}, {A})); break;
    case 1: C.append(CircuitInstr::gate(GateKind::S, {}, {A})); break;
    case 2: C.append(CircuitInstr::gate(GateKind::Sdg, {}, {A})); break;
    case 3: C.append(CircuitInstr::gate(GateKind::X, {}, {A})); break;
    case 4: C.append(CircuitInstr::gate(GateKind::Y, {}, {A})); break;
    case 5: C.append(CircuitInstr::gate(GateKind::Z, {}, {A})); break;
    case 6: C.append(CircuitInstr::gate(GateKind::X, {A}, {B})); break;
    case 7: C.append(CircuitInstr::gate(GateKind::Z, {A}, {B})); break;
    default: C.append(CircuitInstr::gate(GateKind::Swap, {}, {A, B})); break;
    }
  }
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

NoiseModel pauliTestModel() {
  NoiseModel M;
  M.addDefaultChannel(KrausChannel::depolarizing(0.02));
  M.addGateChannel(GateKind::X, KrausChannel::bitFlip(0.05));
  M.setReadoutError(0.01, 0.02);
  return M;
}

TEST(CrossBackendNoiseTest, PauliModelDistributionsAgree) {
  // The acceptance bar: Pauli-noise Clifford circuits produce the same
  // distribution on the dense trajectory engine and the stabilizer
  // Pauli-frame path.
  NoiseModel M = pauliTestModel();
  RunOptions Opts;
  Opts.Noise = &M;
  std::mt19937_64 Rng(20260727);
  const unsigned Shots = 4000;
  for (unsigned Trial = 0; Trial < 6; ++Trial) {
    Circuit C = randomClifford(Rng, 2 + Trial % 4, 16 + 2 * Trial);
    ASSERT_TRUE(analyzeCircuit(C).CliffordOnly);
    std::map<std::string, unsigned> Sv =
        runShots(C, Shots, 100 + Trial, BackendKind::Statevector, Opts);
    std::map<std::string, unsigned> Stab =
        runShots(C, Shots, 900 + Trial, BackendKind::Stabilizer, Opts);
    EXPECT_LT(tvDistance(Sv, Stab, Shots), 0.1) << "trial " << Trial;
  }
}

TEST(CrossBackendNoiseTest, FeedForwardFallsBackToMonteCarlo) {
  // Feed-forward keeps the stabilizer engine off the frame path; the
  // per-shot tableau Monte-Carlo fallback must still match dense
  // trajectories in distribution.
  NoiseModel M = pauliTestModel();
  RunOptions Opts;
  Opts.Noise = &M;
  Circuit C;
  C.NumQubits = 3;
  C.NumBits = 3;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  C.append(CircuitInstr::measure(0, 0));
  CircuitInstr Fix = CircuitInstr::gate(GateKind::X, {}, {2});
  Fix.CondBit = 0;
  C.append(Fix);
  C.append(CircuitInstr::reset(1));
  C.append(CircuitInstr::gate(GateKind::H, {}, {1}));
  C.append(CircuitInstr::measure(1, 1));
  C.append(CircuitInstr::measure(2, 2));
  ASSERT_TRUE(analyzeCircuit(C).HasFeedForward);
  const unsigned Shots = 4000;
  std::map<std::string, unsigned> Sv =
      runShots(C, Shots, 3, BackendKind::Statevector, Opts);
  std::map<std::string, unsigned> Stab =
      runShots(C, Shots, 41, BackendKind::Stabilizer, Opts);
  EXPECT_LT(tvDistance(Sv, Stab, Shots), 0.1);
}

TEST(CrossBackendNoiseTest, FramePathMatchesMonteCarlo) {
  // The frame sampler against independent noisy tableau runs on a circuit
  // with random collapses, mid-circuit measurement, and reset (but no
  // feed-forward): distributions must agree — the collapse-coin machinery
  // is exactly what this pins.
  NoiseModel M = pauliTestModel();
  Circuit C;
  C.NumQubits = 4;
  C.NumBits = 4;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  C.append(CircuitInstr::gate(GateKind::X, {1}, {2}));
  C.append(CircuitInstr::measure(2, 2)); // random mid-circuit collapse
  C.append(CircuitInstr::reset(2));
  C.append(CircuitInstr::gate(GateKind::H, {}, {2}));
  C.append(CircuitInstr::gate(GateKind::S, {}, {3}));
  C.append(CircuitInstr::gate(GateKind::Z, {0}, {3}));
  C.append(CircuitInstr::measure(0, 0));
  C.append(CircuitInstr::measure(1, 1));
  C.append(CircuitInstr::measure(3, 3));
  ASSERT_FALSE(analyzeCircuit(C).HasFeedForward);

  StabilizerBackend Stab;
  const unsigned Shots = 6000;
  RunOptions Opts;
  Opts.Noise = &M;
  // runBatch takes the frame path (no feed-forward)...
  std::map<std::string, unsigned> Frame;
  for (const ShotResult &R : Stab.runBatch(C, Shots, 5, Opts))
    ++Frame[R.str()];
  // ...and runNoisy is always the per-shot Monte-Carlo tableau.
  std::map<std::string, unsigned> Mc;
  for (unsigned S = 0; S < Shots; ++S)
    ++Mc[Stab.runNoisy(C, deriveShotSeed(77, S), M).str()];
  EXPECT_LT(tvDistance(Frame, Mc, Shots), 0.08);
}

TEST(CrossBackendNoiseTest, NoiselessFramePathMatchesIdealDistribution) {
  // With an all-readout (gate-noise-free) Pauli model, the frame path's
  // collapse coins alone must reproduce the ideal outcome distribution —
  // GHZ correlations included.
  NoiseModel M;
  M.setReadoutError(0.0, 0.0);
  M.addDefaultChannel(KrausChannel::depolarizing(0.0));
  Circuit C;
  C.NumQubits = 3;
  C.NumBits = 3;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  C.append(CircuitInstr::gate(GateKind::X, {1}, {2}));
  for (unsigned Q = 0; Q < 3; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  StabilizerBackend Stab;
  RunOptions Opts;
  Opts.Noise = &M;
  EXPECT_FALSE(M.empty()); // depolarizing(0) keeps the noisy path engaged
  const unsigned Shots = 4000;
  std::map<std::string, unsigned> Counts;
  for (const ShotResult &R : Stab.runBatch(C, Shots, 9, Opts))
    ++Counts[R.str()];
  // Only the two GHZ strings, split close to evenly.
  ASSERT_EQ(Counts.size(), 2u);
  EXPECT_NEAR(double(Counts["000"]) / Shots, 0.5, 0.03);
  EXPECT_NEAR(double(Counts["111"]) / Shots, 0.5, 0.03);
}

//===----------------------------------------------------------------------===//
// Determinism: jobs and fusion must not change noisy bits
//===----------------------------------------------------------------------===//

/// A non-Clifford dynamic circuit exercising every noise code path.
Circuit mixedNoisyCircuit() {
  Circuit C;
  C.NumQubits = 4;
  C.NumBits = 4;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::RY, {}, {1}, 0.8));
  C.append(CircuitInstr::gate(GateKind::T, {}, {1}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {2}));
  C.append(CircuitInstr::measure(0, 0));
  CircuitInstr Fix = CircuitInstr::gate(GateKind::X, {}, {3});
  Fix.CondBit = 0;
  C.append(Fix);
  C.append(CircuitInstr::reset(2));
  C.append(CircuitInstr::gate(GateKind::H, {}, {2}));
  for (unsigned Q = 1; Q < 4; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

NoiseModel krausTestModel() {
  NoiseModel M;
  M.addDefaultChannel(KrausChannel::depolarizing(0.01));
  M.addGateChannel(GateKind::H, KrausChannel::amplitudeDamping(0.05));
  M.addQubitChannel(1, KrausChannel::phaseDamping(0.04));
  M.setReadoutError(0.02, 0.03);
  return M;
}

TEST(NoiseDeterminismTest, JobsAndFusionDoNotChangeNoisyBits) {
  // The acceptance bar: noisy runs are bit-identical across
  // {jobs 1, 4} x {fuse on, off} — both with noise on every gate (nothing
  // fusible) and with sparse noise, where fusion really merges runs
  // between the channel barriers.
  NoiseModel Dense = krausTestModel();
  NoiseModel Sparse;
  Sparse.addGateChannel(GateKind::T, KrausChannel::amplitudeDamping(0.1));
  Sparse.setReadoutError(0.02, 0.03);
  Circuit C = mixedNoisyCircuit();
  StatevectorBackend Sv;
  const unsigned Shots = 48;
  for (const NoiseModel *M : {&Dense, &Sparse}) {
    RunOptions Ref;
    Ref.Jobs = 1;
    Ref.Fuse = false;
    Ref.Noise = M;
    std::vector<ShotResult> Baseline = Sv.runBatch(C, Shots, 21, Ref);
    for (unsigned Jobs : {1u, 4u}) {
      for (bool Fuse : {true, false}) {
        RunOptions Opts;
        Opts.Jobs = Jobs;
        Opts.Fuse = Fuse;
        Opts.Noise = M;
        std::vector<ShotResult> Got = Sv.runBatch(C, Shots, 21, Opts);
        ASSERT_EQ(Got.size(), Baseline.size());
        for (unsigned S = 0; S < Shots; ++S)
          ASSERT_EQ(Got[S].Bits, Baseline[S].Bits)
              << "jobs " << Jobs << (Fuse ? " fused" : " unfused")
              << " shot " << S;
      }
    }
    // And the serial-unfused batch equals independent runNoisy replays.
    for (unsigned S : {0u, 7u, 47u})
      EXPECT_EQ(Baseline[S].Bits,
                Sv.runNoisy(C, deriveShotSeed(21, S), *M).Bits)
          << "shot " << S;
  }
}

TEST(NoiseDeterminismTest, StabilizerNoisyBatchesAreJobsInvariant) {
  NoiseModel M = pauliTestModel();
  StabilizerBackend Stab;
  // Frame path (no feed-forward) and Monte-Carlo path (feed-forward).
  std::mt19937_64 Rng(5);
  Circuit Plain = randomClifford(Rng, 5, 30);
  Circuit Dynamic = Plain;
  CircuitInstr Fix = CircuitInstr::gate(GateKind::Z, {}, {0});
  Fix.CondBit = 4;
  Dynamic.append(Fix);
  Dynamic.append(CircuitInstr::measure(0, 0));
  for (const Circuit &C : {Plain, Dynamic}) {
    RunOptions J1, J4;
    J1.Jobs = 1;
    J4.Jobs = 4;
    J1.Noise = J4.Noise = &M;
    std::vector<ShotResult> A = Stab.runBatch(C, 64, 31, J1);
    std::vector<ShotResult> B = Stab.runBatch(C, 64, 31, J4);
    for (unsigned S = 0; S < 64; ++S)
      ASSERT_EQ(A[S].Bits, B[S].Bits) << "shot " << S;
  }
}

TEST(NoiseDeterminismTest, SeedsMatterAndReplaysAreExact) {
  NoiseModel M = krausTestModel();
  Circuit C = mixedNoisyCircuit();
  RunOptions Opts;
  Opts.Noise = &M;
  std::map<std::string, unsigned> A = runShots(C, 400, 1, BackendKind::Auto,
                                               Opts);
  EXPECT_EQ(A, runShots(C, 400, 1, BackendKind::Auto, Opts));
  EXPECT_NE(A, runShots(C, 400, 2, BackendKind::Auto, Opts));
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

TEST(NoiseDispatchTest, AutoRoutesByModelKind) {
  Circuit Cliff;
  Cliff.NumQubits = 2;
  Cliff.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  Cliff.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  BackendRegistry &Reg = BackendRegistry::instance();

  NoiseModel Pauli = pauliTestModel();
  NoiseModel Kraus = krausTestModel();
  NoiseModel Empty;
  EXPECT_STREQ(Reg.select(Cliff, BackendKind::Auto, nullptr, &Pauli).name(),
               "stab");
  EXPECT_STREQ(Reg.select(Cliff, BackendKind::Auto, nullptr, &Kraus).name(),
               "sv");
  EXPECT_STREQ(Reg.select(Cliff, BackendKind::Auto, nullptr, &Empty).name(),
               "stab");
  EXPECT_STREQ(Reg.select(Cliff, BackendKind::Auto).name(), "stab");

  EXPECT_TRUE(Reg.lookup("sv")->supportsNoise(Kraus));
  EXPECT_TRUE(Reg.lookup("sv")->supportsNoise(Pauli));
  EXPECT_FALSE(Reg.lookup("stab")->supportsNoise(Kraus));
  EXPECT_TRUE(Reg.lookup("stab")->supportsNoise(Pauli));
}

} // namespace
