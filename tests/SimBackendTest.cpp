//===- SimBackendTest.cpp - Backend subsystem tests -----------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the pluggable backend subsystem: circuit classification,
/// registry dispatch, per-shot seed derivation, multi-shot amortization,
/// and — the load-bearing property — that the stabilizer tableau and the
/// dense statevector engine induce the same outcome distributions on random
/// small Clifford circuits.
///
//===----------------------------------------------------------------------===//

#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"
#include "sim/StabilizerBackend.h"
#include "sim/mps/MPSBackend.h"
#include "sim/mps/MPSState.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

using namespace asdf;

namespace {

//===----------------------------------------------------------------------===//
// Circuit analysis
//===----------------------------------------------------------------------===//

TEST(CircuitAnalysisTest, ClassifiesCliffordAndPrefix) {
  Circuit C;
  C.NumQubits = 3;
  C.NumBits = 1;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  C.append(CircuitInstr::measure(1, 0));
  CircuitInstr Cond = CircuitInstr::gate(GateKind::Z, {}, {2});
  Cond.CondBit = 0;
  C.append(Cond);
  CircuitProfile P = analyzeCircuit(C);
  EXPECT_TRUE(P.CliffordOnly);
  EXPECT_TRUE(P.HasMeasure);
  EXPECT_TRUE(P.HasFeedForward);
  EXPECT_FALSE(P.HasReset);
  EXPECT_EQ(P.UnconditionalGatePrefix, 2u);
  EXPECT_EQ(P.MaxControls, 1u);
}

TEST(CircuitAnalysisTest, TGateBreaksClifford) {
  Circuit C;
  C.NumQubits = 1;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  EXPECT_TRUE(analyzeCircuit(C).CliffordOnly);
  C.append(CircuitInstr::gate(GateKind::T, {}, {0}));
  EXPECT_FALSE(analyzeCircuit(C).CliffordOnly);
}

TEST(CircuitAnalysisTest, PhaseAngleGranularity) {
  auto Gate1Q = [](GateKind G, double Theta) {
    Circuit C;
    C.NumQubits = 2;
    C.append(CircuitInstr::gate(G, {}, {0}, Theta));
    return analyzeCircuit(C).CliffordOnly;
  };
  EXPECT_TRUE(Gate1Q(GateKind::P, M_PI / 2));
  EXPECT_TRUE(Gate1Q(GateKind::P, -M_PI / 2));
  EXPECT_TRUE(Gate1Q(GateKind::P, M_PI));
  EXPECT_TRUE(Gate1Q(GateKind::RZ, 3 * M_PI / 2));
  EXPECT_FALSE(Gate1Q(GateKind::P, M_PI / 4));
  EXPECT_FALSE(Gate1Q(GateKind::RZ, 0.7));

  // Controlled P(pi) is CZ (Clifford); controlled P(pi/2) is CS (not).
  Circuit C;
  C.NumQubits = 2;
  C.append(CircuitInstr::gate(GateKind::P, {0}, {1}, M_PI));
  EXPECT_TRUE(analyzeCircuit(C).CliffordOnly);
  C.append(CircuitInstr::gate(GateKind::P, {0}, {1}, M_PI / 2));
  EXPECT_FALSE(analyzeCircuit(C).CliffordOnly);

  // Toffoli leaves the Clifford group.
  Circuit D;
  D.NumQubits = 3;
  D.append(CircuitInstr::gate(GateKind::X, {0, 1}, {2}));
  EXPECT_FALSE(analyzeCircuit(D).CliffordOnly);
}

TEST(CircuitAnalysisTest, EmptyCircuitIsCliffordAndDispatchesToTableau) {
  Circuit C;
  C.NumQubits = 0;
  C.NumBits = 0;
  CircuitProfile P = analyzeCircuit(C);
  EXPECT_TRUE(P.CliffordOnly);
  EXPECT_TRUE(P.measureFree());
  EXPECT_FALSE(P.HasFeedForward);
  EXPECT_EQ(P.UnconditionalGatePrefix, 0u);
  EXPECT_EQ(P.MaxControls, 0u);
  // Degenerate but legal: auto-dispatch picks the tableau and a run
  // returns the empty bit string.
  BackendRegistry &Reg = BackendRegistry::instance();
  EXPECT_STREQ(Reg.select(C, BackendKind::Auto, &P).name(), "stab");
  EXPECT_TRUE(simulate(C, 3).Bits.empty());
}

TEST(CircuitAnalysisTest, MeasureOnlyCircuitHasEmptyPrefix) {
  Circuit C;
  C.NumQubits = 2;
  C.NumBits = 2;
  C.append(CircuitInstr::measure(0, 0));
  C.append(CircuitInstr::measure(1, 1));
  CircuitProfile P = analyzeCircuit(C);
  EXPECT_TRUE(P.CliffordOnly);
  EXPECT_TRUE(P.HasMeasure);
  EXPECT_FALSE(P.HasReset);
  EXPECT_EQ(P.UnconditionalGatePrefix, 0u);
  BackendRegistry &Reg = BackendRegistry::instance();
  EXPECT_STREQ(Reg.select(C, BackendKind::Auto, &P).name(), "stab");
  // |00> measured is deterministic on both engines.
  for (BackendKind K : {BackendKind::Statevector, BackendKind::Stabilizer}) {
    std::map<std::string, unsigned> Counts = runShots(C, 20, 1, K);
    ASSERT_EQ(Counts.size(), 1u);
    EXPECT_EQ(Counts.begin()->first, "00");
  }
}

TEST(CircuitAnalysisTest, ResetInterruptsPrefixButNotCliffordness) {
  Circuit C;
  C.NumQubits = 2;
  C.NumBits = 2;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  C.append(CircuitInstr::reset(1));
  C.append(CircuitInstr::gate(GateKind::H, {}, {1}));
  C.append(CircuitInstr::measure(0, 0));
  C.append(CircuitInstr::measure(1, 1));
  CircuitProfile P = analyzeCircuit(C);
  // The reset ends the shareable prefix after two gates; the circuit
  // stays Clifford (reset is a native tableau operation), so dispatch
  // still picks the tableau.
  EXPECT_EQ(P.UnconditionalGatePrefix, 2u);
  EXPECT_TRUE(P.CliffordOnly);
  EXPECT_TRUE(P.HasReset);
  EXPECT_FALSE(P.HasFeedForward);
  BackendRegistry &Reg = BackendRegistry::instance();
  EXPECT_STREQ(Reg.select(C, BackendKind::Auto, &P).name(), "stab");

  // A non-Clifford gate after the reset flips the dispatch decision; the
  // prefix is unchanged.
  Circuit D = C;
  D.Instrs.insert(D.Instrs.begin() + 4,
                  CircuitInstr::gate(GateKind::T, {}, {1}));
  CircuitProfile Q = analyzeCircuit(D);
  EXPECT_EQ(Q.UnconditionalGatePrefix, 2u);
  EXPECT_FALSE(Q.CliffordOnly);
  EXPECT_STREQ(Reg.select(D, BackendKind::Auto, &Q).name(), "sv");
}

//===----------------------------------------------------------------------===//
// Registry and dispatch
//===----------------------------------------------------------------------===//

TEST(BackendRegistryTest, BuiltinsRegistered) {
  BackendRegistry &Reg = BackendRegistry::instance();
  ASSERT_NE(Reg.lookup("sv"), nullptr);
  ASSERT_NE(Reg.lookup("stab"), nullptr);
  ASSERT_NE(Reg.lookup("mps"), nullptr);
  EXPECT_EQ(Reg.lookup("nope"), nullptr);
  EXPECT_EQ(Reg.names().size(), 3u);
}

TEST(BackendRegistryTest, AutoPrefersStabilizerForClifford) {
  Circuit Cliff;
  Cliff.NumQubits = 2;
  Cliff.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  Cliff.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  BackendRegistry &Reg = BackendRegistry::instance();
  EXPECT_STREQ(Reg.select(Cliff, BackendKind::Auto).name(), "stab");
  EXPECT_STREQ(Reg.select(Cliff, BackendKind::Statevector).name(), "sv");

  Circuit Magic = Cliff;
  Magic.append(CircuitInstr::gate(GateKind::T, {}, {1}));
  EXPECT_STREQ(Reg.select(Magic, BackendKind::Auto).name(), "sv");
  EXPECT_STREQ(Reg.select(Magic, BackendKind::Stabilizer).name(), "stab");
}

TEST(BackendRegistryTest, ParseBackendKind) {
  BackendKind K;
  EXPECT_TRUE(parseBackendKind("auto", K));
  EXPECT_EQ(K, BackendKind::Auto);
  EXPECT_TRUE(parseBackendKind("sv", K));
  EXPECT_EQ(K, BackendKind::Statevector);
  EXPECT_TRUE(parseBackendKind("stabilizer", K));
  EXPECT_EQ(K, BackendKind::Stabilizer);
  EXPECT_TRUE(parseBackendKind("mps", K));
  EXPECT_EQ(K, BackendKind::MPS);
  EXPECT_FALSE(parseBackendKind("qpu", K));
}

//===----------------------------------------------------------------------===//
// Per-shot seed derivation
//===----------------------------------------------------------------------===//

TEST(ShotSeedTest, DeterministicAndWellSpread) {
  EXPECT_EQ(deriveShotSeed(7, 3), deriveShotSeed(7, 3));
  // Nearby (seed, shot) pairs land far apart; in particular the collision
  // family seed+shot == const of the old Seed+S scheme is gone.
  EXPECT_NE(deriveShotSeed(7, 3), deriveShotSeed(7, 4));
  EXPECT_NE(deriveShotSeed(7, 3), deriveShotSeed(8, 3));
  EXPECT_NE(deriveShotSeed(7, 3), deriveShotSeed(6, 4));
  EXPECT_NE(deriveShotSeed(7, 3), deriveShotSeed(8, 2));
}

TEST(ShotSeedTest, RunShotsReproducible) {
  Circuit C;
  C.NumQubits = 2;
  C.NumBits = 2;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::H, {}, {1}));
  C.append(CircuitInstr::measure(0, 0));
  C.append(CircuitInstr::measure(1, 1));
  for (BackendKind K : {BackendKind::Statevector, BackendKind::Stabilizer}) {
    std::map<std::string, unsigned> A = runShots(C, 200, 5, K);
    std::map<std::string, unsigned> B = runShots(C, 200, 5, K);
    EXPECT_EQ(A, B);
    EXPECT_NE(A, runShots(C, 200, 6, K));
  }
}

TEST(ShotSeedTest, PrefixAmortizationMatchesPerShotRuns) {
  // The statevector runShots forks the shared prefix; every shot must equal
  // an independent run() with the same derived seed.
  Circuit C;
  C.NumQubits = 3;
  C.NumBits = 3;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::T, {}, {0})); // keep it off the tableau
  C.append(CircuitInstr::gate(GateKind::H, {}, {1}));
  C.append(CircuitInstr::gate(GateKind::X, {1}, {2}));
  for (unsigned Q = 0; Q < 3; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  StatevectorBackend Sv;
  std::map<std::string, unsigned> Amortized = Sv.runShots(C, 300, 17);
  std::map<std::string, unsigned> Manual;
  for (unsigned S = 0; S < 300; ++S)
    ++Manual[Sv.run(C, deriveShotSeed(17, S)).str()];
  EXPECT_EQ(Amortized, Manual);
}

//===----------------------------------------------------------------------===//
// Cross-backend equivalence on random Clifford circuits
//===----------------------------------------------------------------------===//

/// A random Clifford circuit on \p NumQubits qubits ending in measure-all
/// (qubit i -> classical bit i).
Circuit randomCliffordCircuit(std::mt19937_64 &Rng, unsigned NumQubits,
                              unsigned NumGates) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  std::uniform_int_distribution<unsigned> PickGate(0, 8);
  std::uniform_int_distribution<unsigned> PickQubit(0, NumQubits - 1);
  for (unsigned G = 0; G < NumGates; ++G) {
    unsigned A = PickQubit(Rng);
    unsigned B = PickQubit(Rng);
    while (NumQubits > 1 && B == A)
      B = PickQubit(Rng);
    switch (PickGate(Rng)) {
    case 0:
      C.append(CircuitInstr::gate(GateKind::H, {}, {A}));
      break;
    case 1:
      C.append(CircuitInstr::gate(GateKind::S, {}, {A}));
      break;
    case 2:
      C.append(CircuitInstr::gate(GateKind::Sdg, {}, {A}));
      break;
    case 3:
      C.append(CircuitInstr::gate(GateKind::X, {}, {A}));
      break;
    case 4:
      C.append(CircuitInstr::gate(GateKind::Y, {}, {A}));
      break;
    case 5:
      C.append(CircuitInstr::gate(GateKind::Z, {}, {A}));
      break;
    case 6:
      C.append(CircuitInstr::gate(GateKind::X, {A}, {B}));
      break;
    case 7:
      C.append(CircuitInstr::gate(GateKind::Z, {A}, {B}));
      break;
    default:
      C.append(CircuitInstr::gate(GateKind::Swap, {}, {A, B}));
      break;
    }
  }
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

/// Exact outcome distribution of the measure-all tail, read off the dense
/// amplitudes of the gate prefix. Outcome strings are bit 0 first, matching
/// ShotResult::str with qubit i measured into bit i.
std::map<std::string, double> exactDistribution(const Circuit &C) {
  StateVector SV(C.NumQubits);
  for (const CircuitInstr &I : C.Instrs)
    if (I.TheKind == CircuitInstr::Kind::Gate)
      SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
  std::map<std::string, double> Dist;
  uint64_t Dim = uint64_t(1) << C.NumQubits;
  for (uint64_t Idx = 0; Idx < Dim; ++Idx) {
    double P = std::norm(SV.amplitudes()[Idx]);
    if (P < 1e-15)
      continue;
    std::string Key;
    // Qubit 0 is the most significant bit of a basis index.
    for (unsigned Q = 0; Q < C.NumQubits; ++Q)
      Key.push_back((Idx >> (C.NumQubits - 1 - Q)) & 1 ? '1' : '0');
    Dist[Key] += P;
  }
  return Dist;
}

TEST(BackendEquivalenceTest, RandomCliffordDistributionsMatch) {
  std::mt19937_64 Rng(20250726);
  const unsigned Shots = 4000;
  for (unsigned Trial = 0; Trial < 20; ++Trial) {
    unsigned NumQubits = 2 + Trial % 7; // 2..8 qubits
    Circuit C = randomCliffordCircuit(Rng, NumQubits, 24 + 2 * Trial);
    ASSERT_TRUE(analyzeCircuit(C).CliffordOnly);
    std::map<std::string, unsigned> Counts =
        runShots(C, Shots, 1000 + Trial, BackendKind::Stabilizer);
    std::map<std::string, double> Exact = exactDistribution(C);
    // Every sampled outcome is possible.
    double Tv = 0.0;
    for (const auto &KV : Counts) {
      ASSERT_TRUE(Exact.count(KV.first))
          << "trial " << Trial << ": impossible outcome " << KV.first;
    }
    // Total variation between empirical and exact stays at sampling noise.
    for (const auto &KV : Exact) {
      auto It = Counts.find(KV.first);
      double Freq = It == Counts.end() ? 0.0 : double(It->second) / Shots;
      Tv += std::abs(Freq - KV.second);
    }
    Tv /= 2.0;
    EXPECT_LT(Tv, 0.12) << "trial " << Trial << " (" << NumQubits
                        << " qubits)";
  }
}

TEST(BackendEquivalenceTest, DynamicCliffordCircuitsMatch) {
  // Mid-circuit measurement, feed-forward, and reset: compare the two
  // engines' sampled distributions directly.
  std::mt19937_64 Rng(77);
  for (unsigned Trial = 0; Trial < 8; ++Trial) {
    Circuit C = randomCliffordCircuit(Rng, 3, 12);
    // Splice in a mid-circuit measurement feeding a correction, plus a
    // reset, before the final measure-all (keeps the tail intact).
    std::vector<CircuitInstr> Tail(C.Instrs.end() - 3, C.Instrs.end());
    C.Instrs.resize(C.Instrs.size() - 3);
    C.append(CircuitInstr::measure(0, 0));
    CircuitInstr Fix = CircuitInstr::gate(GateKind::X, {}, {1});
    Fix.CondBit = 0;
    C.append(Fix);
    C.append(CircuitInstr::reset(2));
    C.append(CircuitInstr::gate(GateKind::H, {}, {2}));
    for (const CircuitInstr &I : Tail)
      C.append(I);
    const unsigned Shots = 4000;
    std::map<std::string, unsigned> Sv =
        runShots(C, Shots, 5 + Trial, BackendKind::Statevector);
    std::map<std::string, unsigned> Stab =
        runShots(C, Shots, 900 + Trial, BackendKind::Stabilizer);
    EXPECT_LT(tvDistance(Sv, Stab, Shots), 0.1) << "trial " << Trial;
  }
}

TEST(BackendEquivalenceTest, DegenerateGatesAreNoOpsOnBothBackends) {
  // Ill-formed control == target and swap(q, q) instructions have always
  // been no-ops in the dense engine; the tableau must agree instead of
  // corrupting its rows.
  Circuit C;
  C.NumQubits = 2;
  C.NumBits = 2;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {1}, {1}));
  C.append(CircuitInstr::gate(GateKind::Z, {0}, {0}));
  C.append(CircuitInstr::gate(GateKind::Y, {1}, {1}));
  C.append(CircuitInstr::gate(GateKind::Swap, {}, {0, 0}));
  C.append(CircuitInstr::gate(GateKind::H, {}, {0})); // net identity
  C.append(CircuitInstr::measure(0, 0));
  C.append(CircuitInstr::measure(1, 1));
  ASSERT_TRUE(analyzeCircuit(C).CliffordOnly);
  for (BackendKind K : {BackendKind::Statevector, BackendKind::Stabilizer}) {
    std::map<std::string, unsigned> Counts = runShots(C, 50, 3, K);
    ASSERT_EQ(Counts.size(), 1u) << "backend " << int(K);
    EXPECT_EQ(Counts.begin()->first, "00") << "backend " << int(K);
  }
}

//===----------------------------------------------------------------------===//
// Simulation counters
//===----------------------------------------------------------------------===//

TEST(SimStatsTest, CountersTrackKernelsAndAmplitudes) {
  // Rotation runs on every wire plus a CX ladder: with the default fuse-k
  // of 3 the plan must form multi-qubit blocks, and every kernel must
  // report the amplitudes it touched.
  Circuit C;
  C.NumQubits = 6;
  C.NumBits = 6;
  for (unsigned Q = 0; Q < 6; ++Q) {
    C.append(CircuitInstr::gate(GateKind::RY, {}, {Q}, 0.3 + 0.1 * Q));
    C.append(CircuitInstr::gate(GateKind::H, {}, {Q}));
  }
  for (unsigned Q = 1; Q < 6; ++Q)
    C.append(CircuitInstr::gate(GateKind::X, {Q - 1}, {Q}));
  for (unsigned Q = 0; Q < 6; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  StatevectorBackend Sv;

  SimStats Fused;
  RunOptions FusedOpts;
  FusedOpts.Jobs = 1;
  FusedOpts.SimCounters = &Fused;
  Sv.runBatch(C, 4, 11, FusedOpts);
  EXPECT_GT(Fused.FusedOps, 0u);
  EXPECT_GT(Fused.FusedBlocks, 0u);
  EXPECT_GT(Fused.AmplitudesTouched, 0u);
  EXPECT_GT(Fused.GatesApplied, 0u); // the measure kernels

  SimStats Unfused;
  RunOptions UnfusedOpts;
  UnfusedOpts.Jobs = 1;
  UnfusedOpts.Fuse = false;
  UnfusedOpts.SimCounters = &Unfused;
  Sv.runBatch(C, 4, 11, UnfusedOpts);
  EXPECT_EQ(Unfused.FusedOps, 0u);
  EXPECT_EQ(Unfused.FusedBlocks, 0u);
  EXPECT_GT(Unfused.GatesApplied, Fused.GatesApplied);
  // Fusion's whole point, now measurable: fewer amplitudes touched.
  EXPECT_LT(Fused.AmplitudesTouched,
            Unfused.AmplitudesTouched);
}

TEST(BackendEquivalenceTest, AutoMatchesForcedStabilizer) {
  std::mt19937_64 Rng(123);
  Circuit C = randomCliffordCircuit(Rng, 4, 20);
  // Auto must dispatch to the tableau: identical counts, same seeds.
  EXPECT_EQ(runShots(C, 500, 9, BackendKind::Auto),
            runShots(C, 500, 9, BackendKind::Stabilizer));
}

//===----------------------------------------------------------------------===//
// Cost model
//===----------------------------------------------------------------------===//

/// GHZ preparation on a line: H then a nearest-neighbor CX ladder, measure
/// all. Clifford, and every bisection is crossed by exactly one entangler.
Circuit ghzLine(unsigned N) {
  Circuit C;
  C.NumQubits = N;
  C.NumBits = N;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  for (unsigned Q = 1; Q < N; ++Q)
    C.append(CircuitInstr::gate(GateKind::X, {Q - 1}, {Q}));
  for (unsigned Q = 0; Q < N; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

/// Depth-1 QAOA on a ring: H layer, one RZZ (CX-RZ-CX) per ring edge at a
/// generic angle, RX mixer layer, measure all. Non-Clifford, wide, and
/// lowly entangled — the circuit family the MPS engine exists for.
Circuit qaoaRing(unsigned N) {
  Circuit C;
  C.NumQubits = N;
  C.NumBits = N;
  for (unsigned Q = 0; Q < N; ++Q)
    C.append(CircuitInstr::gate(GateKind::H, {}, {Q}));
  for (unsigned E = 0; E < N; ++E) {
    unsigned A = E, B = (E + 1) % N;
    C.append(CircuitInstr::gate(GateKind::X, {A}, {B}));
    C.append(CircuitInstr::gate(GateKind::RZ, {}, {B}, 0.7));
    C.append(CircuitInstr::gate(GateKind::X, {A}, {B}));
  }
  for (unsigned Q = 0; Q < N; ++Q)
    C.append(CircuitInstr::gate(GateKind::RX, {}, {Q}, 0.4));
  for (unsigned Q = 0; Q < N; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

/// A wide circuit whose entanglement estimate saturates every bound: 64
/// maximally-long-range entanglers plus a T gate so no engine is exact.
Circuit wideDense(unsigned N) {
  Circuit C;
  C.NumQubits = N;
  C.NumBits = N;
  for (unsigned Q = 0; Q < N; ++Q)
    C.append(CircuitInstr::gate(GateKind::H, {}, {Q}));
  for (unsigned R = 0; R < 64; ++R)
    C.append(CircuitInstr::gate(GateKind::X, {0}, {N - 1}));
  C.append(CircuitInstr::gate(GateKind::T, {}, {0}));
  for (unsigned Q = 0; Q < N; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

TEST(CostModelTest, GhzLineBondIsTwo) {
  CostModel M = estimateCost(ghzLine(100));
  EXPECT_EQ(M.NumQubits, 100u);
  EXPECT_TRUE(M.CliffordOnly);
  EXPECT_EQ(M.EntanglingGates, 99u);
  EXPECT_EQ(M.MaxGateSpan, 1u);
  EXPECT_EQ(M.MaxCutCrossings, 1u);
  EXPECT_EQ(M.EstimatedLogBond, 1u);
  EXPECT_EQ(M.estimatedMaxBond(), 2u);
  EXPECT_FALSE(M.summary().empty());
}

TEST(CostModelTest, QaoaRingBondFitsDefaultChi) {
  CostModel M = estimateCost(qaoaRing(100));
  EXPECT_FALSE(M.CliffordOnly);
  EXPECT_GT(M.NonCliffordGates, 0u);
  // Each cut sees two CXs from its local edge plus two from the
  // wrap-around edge: rank at most 2^4, far under the default chi of 64.
  EXPECT_EQ(M.MaxCutCrossings, 4u);
  EXPECT_EQ(M.EstimatedLogBond, 4u);
  EXPECT_LE(M.estimatedMaxBond(), RunOptions().MpsChi);
}

TEST(CostModelTest, DenseLongRangeSaturates) {
  // 64 entanglers across every cut of a 130-qubit register: the crossing
  // count saturates, the side-dimension bound is wider, and the log-bond
  // clamp at 63 keeps estimatedMaxBond from overflowing.
  CostModel M = estimateCost(wideDense(130));
  EXPECT_EQ(M.MaxCutCrossings, 64u);
  EXPECT_EQ(M.EstimatedLogBond, 63u);
  EXPECT_EQ(M.estimatedMaxBond(), UINT64_MAX);
  EXPECT_EQ(M.MaxGateSpan, 129u);
}

//===----------------------------------------------------------------------===//
// Cost-model auto-dispatch
//===----------------------------------------------------------------------===//

const char *autoPick(const Circuit &C) {
  BackendSelection Sel = BackendRegistry::instance().selectWithReasons(
      C, BackendKind::Auto);
  EXPECT_TRUE(Sel.Supported) << Sel.describe();
  return Sel.Chosen->name();
}

TEST(AutoDispatchTest, LabeledCircuitsLandOnExpectedEngines) {
  // GHZ line at 100 qubits is Clifford: the tableau wins even though the
  // MPS engine could run it.
  EXPECT_STREQ(autoPick(ghzLine(100)), "stab");

  // QAOA ring at 100 qubits: non-Clifford kicks out the tableau, the
  // width kicks out the dense engine, and the entanglement estimate fits
  // chi — the tensor network's home turf.
  EXPECT_STREQ(autoPick(qaoaRing(100)), "mps");

  // A random dense circuit at 12 qubits with T gates: inside the dense
  // cap, so the statevector wins (it is exact; MPS would only add SVDs).
  std::mt19937_64 Rng(42);
  Circuit Dense = randomCliffordCircuit(Rng, 12, 60);
  Dense.Instrs.insert(Dense.Instrs.begin() + 10,
                      CircuitInstr::gate(GateKind::T, {}, {3}));
  EXPECT_STREQ(autoPick(Dense), "sv");

  // Clifford-only with feed-forward stays on the tableau.
  Circuit Ff = ghzLine(8);
  CircuitInstr Fix = CircuitInstr::gate(GateKind::X, {}, {1});
  Fix.CondBit = 0;
  Ff.append(Fix);
  EXPECT_STREQ(autoPick(Ff), "stab");

  // Non-Clifford feed-forward at small width: the dense engine.
  Ff.Instrs.insert(Ff.Instrs.begin() + 1,
                   CircuitInstr::gate(GateKind::T, {}, {0}));
  EXPECT_STREQ(autoPick(Ff), "sv");
}

TEST(AutoDispatchTest, NothingEligibleReportsPerBackendReasons) {
  Circuit C = wideDense(130);
  BackendSelection Sel = BackendRegistry::instance().selectWithReasons(
      C, BackendKind::Auto);
  EXPECT_FALSE(Sel.Supported);
  ASSERT_NE(Sel.Chosen, nullptr); // fallback engine, still named
  ASSERT_EQ(Sel.Verdicts.size(), BackendRegistry::instance().names().size());
  for (const BackendVerdict &V : Sel.Verdicts) {
    EXPECT_FALSE(V.Eligible) << V.Name;
    EXPECT_FALSE(V.Why.empty()) << V.Name;
  }
  // Every registered backend shows up in the one-line rejection summary.
  std::string Summary = Sel.rejectionSummary();
  for (const std::string &Name : BackendRegistry::instance().names())
    EXPECT_NE(Summary.find(Name + ":"), std::string::npos) << Summary;
  EXPECT_FALSE(Sel.CostSummary.empty());
}

TEST(AutoDispatchTest, ForcedMpsOverChiTruncatesButRuns) {
  // Forcing mps on an over-chi circuit is allowed (the run truncates);
  // auto-dispatch would have refused it.
  Circuit C = wideDense(40);
  BackendSelection Sel = BackendRegistry::instance().selectWithReasons(
      C, BackendKind::MPS);
  EXPECT_TRUE(Sel.Supported);
  EXPECT_STREQ(Sel.Chosen->name(), "mps");
  EXPECT_NE(Sel.Reason.find("forced"), std::string::npos) << Sel.Reason;
}

//===----------------------------------------------------------------------===//
// MPS engine
//===----------------------------------------------------------------------===//

TEST(MPSStateTest, BellAndLongRangeGhzExact) {
  MPSState Bell(2);
  Bell.apply(CircuitInstr::gate(GateKind::H, {}, {0}));
  Bell.apply(CircuitInstr::gate(GateKind::X, {0}, {1}));
  const double R = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(Bell.amplitude(0)), R, 1e-12);
  EXPECT_NEAR(std::abs(Bell.amplitude(3)), R, 1e-12);
  EXPECT_NEAR(std::abs(Bell.amplitude(1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(Bell.amplitude(2)), 0.0, 1e-12);
  EXPECT_EQ(Bell.maxBond(), 2u);
  EXPECT_EQ(Bell.truncationError(), 0.0);

  // GHZ-6 built from long-range CX(0, q): every gate routes through swaps,
  // yet the state stays exactly rank 2 across each cut.
  MPSState Ghz(6);
  Ghz.apply(CircuitInstr::gate(GateKind::H, {}, {0}));
  for (unsigned Q = 1; Q < 6; ++Q)
    Ghz.apply(CircuitInstr::gate(GateKind::X, {0}, {Q}));
  std::vector<MPSState::Cplx> Amp = Ghz.statevector();
  EXPECT_NEAR(std::abs(Amp[0]), R, 1e-12);
  EXPECT_NEAR(std::abs(Amp[63]), R, 1e-12);
  double Middle = 0.0;
  for (unsigned Idx = 1; Idx < 63; ++Idx)
    Middle += std::norm(Amp[Idx]);
  EXPECT_NEAR(Middle, 0.0, 1e-20);
  EXPECT_EQ(Ghz.maxBond(), 2u);
}

TEST(MPSStateTest, MatchesDenseAmplitudesOnMixedGateSet) {
  // Toffoli, Swap, controlled phase, and generic rotations — every apply()
  // path (single-site, contiguous block, routed block) against the dense
  // engine, exactly (chi unlimited).
  Circuit C;
  C.NumQubits = 4;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::H, {}, {1}));
  C.append(CircuitInstr::gate(GateKind::RY, {}, {3}, 0.9));
  C.append(CircuitInstr::gate(GateKind::X, {0, 1}, {2}));
  C.append(CircuitInstr::gate(GateKind::Swap, {}, {1, 3}));
  C.append(CircuitInstr::gate(GateKind::P, {0}, {3}, 0.37));
  C.append(CircuitInstr::gate(GateKind::RZ, {}, {2}, -1.2));
  C.append(CircuitInstr::gate(GateKind::X, {3}, {0}));
  C.append(CircuitInstr::gate(GateKind::T, {}, {1}));

  MPSState Mps(4);
  StateVector Sv(4);
  for (const CircuitInstr &I : C.Instrs) {
    Mps.apply(I);
    Sv.apply(I.Gate, I.Controls, I.Targets, I.Param);
  }
  std::vector<MPSState::Cplx> Amp = Mps.statevector();
  for (uint64_t Idx = 0; Idx < 16; ++Idx)
    EXPECT_LT(std::abs(Amp[Idx] - Sv.amplitudes()[Idx]), 1e-10)
        << "index " << Idx;
  EXPECT_EQ(Mps.truncationError(), 0.0);
}

TEST(MPSBackendTest, ChiOneTruncatesBellToProduct) {
  Circuit C = ghzLine(2);
  MPSBackend Mps;
  SimStats Stats;
  RunOptions Opts;
  Opts.Jobs = 1;
  Opts.MpsChi = 1;
  Opts.SimCounters = &Stats;
  Mps.runBatch(C, 1, 7, Opts);
  // The CX split must truncate rank 2 -> 1, discarding half the weight.
  EXPECT_GE(Stats.MpsSvds, 1u);
  EXPECT_GE(Stats.MpsTruncations, 1u);
  EXPECT_NEAR(Stats.MpsTruncationError, 0.5, 1e-12);
  EXPECT_EQ(Stats.MpsMaxBond, 1u);
}

TEST(MPSBackendTest, MatchesExactDistributionAndOtherEngines) {
  // Random Clifford circuits with a T-gate sprinkle, measure-all: the MPS
  // samples must match the dense amplitudes' exact distribution.
  std::mt19937_64 Rng(2025);
  const unsigned Shots = 3000;
  for (unsigned Trial = 0; Trial < 6; ++Trial) {
    unsigned NumQubits = 2 + Trial; // 2..7
    Circuit C = randomCliffordCircuit(Rng, NumQubits, 18 + 3 * Trial);
    C.Instrs.insert(C.Instrs.begin() + 5,
                    CircuitInstr::gate(GateKind::T, {}, {Trial % NumQubits}));
    std::map<std::string, unsigned> Counts =
        runShots(C, Shots, 300 + Trial, BackendKind::MPS);
    std::map<std::string, double> Exact = exactDistribution(C);
    for (const auto &KV : Counts)
      ASSERT_TRUE(Exact.count(KV.first))
          << "trial " << Trial << ": impossible outcome " << KV.first;
    double Tv = 0.0;
    for (const auto &KV : Exact) {
      auto It = Counts.find(KV.first);
      double Freq = It == Counts.end() ? 0.0 : double(It->second) / Shots;
      Tv += std::abs(Freq - KV.second);
    }
    Tv /= 2.0;
    EXPECT_LT(Tv, 0.12) << "trial " << Trial;
  }
}

TEST(MPSBackendTest, DynamicCircuitMatchesDenseEngine) {
  // Teleportation-flavored dynamic circuit: mid-circuit measurement,
  // feed-forward corrections, and a reset, on a non-Clifford state.
  Circuit C;
  C.NumQubits = 3;
  C.NumBits = 3;
  C.append(CircuitInstr::gate(GateKind::RY, {}, {0}, 0.8)); // payload
  C.append(CircuitInstr::gate(GateKind::T, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::H, {}, {1})); // Bell pair
  C.append(CircuitInstr::gate(GateKind::X, {1}, {2}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1})); // Bell measure
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::measure(0, 0));
  C.append(CircuitInstr::measure(1, 1));
  CircuitInstr FixX = CircuitInstr::gate(GateKind::X, {}, {2});
  FixX.CondBit = 1;
  C.append(FixX);
  CircuitInstr FixZ = CircuitInstr::gate(GateKind::Z, {}, {2});
  FixZ.CondBit = 0;
  C.append(FixZ);
  C.append(CircuitInstr::reset(0));
  C.append(CircuitInstr::gate(GateKind::H, {}, {2})); // measure payload
  C.append(CircuitInstr::gate(GateKind::RY, {}, {2}, -0.8));
  C.append(CircuitInstr::measure(2, 2));
  const unsigned Shots = 4000;
  std::map<std::string, unsigned> Mps =
      runShots(C, Shots, 11, BackendKind::MPS);
  std::map<std::string, unsigned> Sv =
      runShots(C, Shots, 900, BackendKind::Statevector);
  EXPECT_LT(tvDistance(Mps, Sv, Shots), 0.1);
}

TEST(MPSBackendTest, BatchMatchesPerShotRunsAcrossJobs) {
  std::mt19937_64 Rng(7);
  Circuit C = randomCliffordCircuit(Rng, 5, 20);
  C.Instrs.insert(C.Instrs.begin() + 3,
                  CircuitInstr::gate(GateKind::T, {}, {2}));
  MPSBackend Mps;
  // Batch (prefix amortized) must equal independent per-shot runs...
  std::vector<ShotResult> Batch = Mps.runBatch(C, 60, 13);
  for (unsigned S = 0; S < 60; ++S)
    EXPECT_EQ(Batch[S].str(), Mps.run(C, deriveShotSeed(13, S)).str())
        << "shot " << S;
  // ...and the execution plan must not change any shot.
  RunOptions Par;
  Par.Jobs = 4;
  std::vector<ShotResult> Parallel = Mps.runBatch(C, 60, 13, Par);
  for (unsigned S = 0; S < 60; ++S)
    EXPECT_EQ(Batch[S].str(), Parallel[S].str()) << "shot " << S;
}

TEST(MPSBackendTest, HundredQubitGhzRunsCheaply) {
  // The headline capability: 100 qubits, far beyond the dense cap, exact
  // at bond dimension 2.
  Circuit C = ghzLine(100);
  MPSBackend Mps;
  SimStats Stats;
  RunOptions Opts;
  Opts.SimCounters = &Stats;
  std::vector<ShotResult> Shots = Mps.runBatch(C, 20, 99, Opts);
  ASSERT_EQ(Shots.size(), 20u);
  for (const ShotResult &R : Shots) {
    std::string S = R.str();
    ASSERT_EQ(S.size(), 100u);
    // Perfect correlation: all zeros or all ones.
    EXPECT_TRUE(S == std::string(100, '0') || S == std::string(100, '1'))
        << S;
  }
  EXPECT_EQ(Stats.MpsMaxBond, 2u);
  EXPECT_EQ(Stats.MpsTruncations, 0u);
}

} // namespace
