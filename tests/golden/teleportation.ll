; Asdf reproduction: QIR Unrestricted Profile
%Qubit = type opaque
%Result = type opaque
%Array = type opaque
%Callable = type opaque
%Tuple = type opaque


define %Array* @teleport(%Array* %v0) {
entry:
  %v1 = call %Qubit* @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(%Qubit* %v1)
  %v2 = call %Qubit* @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__cx__body(%Qubit* %v1, %Qubit* %v2)
  %v3 = call %Array* @__quantum__rt__array_create_1d(i64 1, %Qubit* %v2)
  %v4 = call %Qubit* @__quantum__rt__array_get_element_ptr_1d(%Array* %v0, i64 0)
  call void @__quantum__qis__cx__body(%Qubit* %v4, %Qubit* %v1)
  call void @__quantum__qis__h__body(%Qubit* %v4)
  %v5 = call %Result* @__quantum__qis__m__body(%Qubit* %v4)
  call void @__quantum__rt__qubit_release(%Qubit* %v4)
  %v6 = call %Result* @__quantum__qis__m__body(%Qubit* %v1)
  call void @__quantum__rt__qubit_release(%Qubit* %v1)
  ; if %v6 (structured control flow lowered to br in full LLVM)
  call void @__quantum__qis__x__body(%Qubit* %v2)
  %v7 = call %Array* @__quantum__rt__array_create_1d(i64 1, %Qubit* %v2)
  ; if %v5 (structured control flow lowered to br in full LLVM)
  %v8 = call %Qubit* @__quantum__rt__array_get_element_ptr_1d(%Array* %v7, i64 0)
  call void @__quantum__qis__z__body(%Qubit* %v8)
  %v9 = call %Array* @__quantum__rt__array_create_1d(i64 1, %Qubit* %v8)
  ret %Array* %v9
}

declare %Array* @__quantum__rt__array_create_1d(i64, %Qubit*)
declare %Qubit* @__quantum__rt__array_get_element_ptr_1d(%Array*, i64)
declare %Qubit* @__quantum__rt__qubit_allocate()
declare %Result* @__quantum__qis__m__body(%Qubit*)
declare void @__quantum__qis__cx__body(%Qubit*, %Qubit*)
declare void @__quantum__qis__h__body(%Qubit*)
declare void @__quantum__qis__x__body(%Qubit*)
declare void @__quantum__qis__z__body(%Qubit*)
declare void @__quantum__rt__qubit_release(%Qubit*)
