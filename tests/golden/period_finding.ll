; Asdf reproduction: QIR Unrestricted Profile
%Qubit = type opaque
%Result = type opaque
%Array = type opaque
%Callable = type opaque
%Tuple = type opaque


define %Array* @kernel() {
entry:
  %v0 = call %Qubit* @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(%Qubit* %v0)
  %v1 = call %Qubit* @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(%Qubit* %v1)
  %v2 = call %Qubit* @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(%Qubit* %v2)
  %v3 = call %Qubit* @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(%Qubit* %v3)
  %v4 = call %Qubit* @__quantum__rt__qubit_allocate()
  %v5 = call %Qubit* @__quantum__rt__qubit_allocate()
  %v6 = call %Qubit* @__quantum__rt__qubit_allocate()
  %v7 = call %Qubit* @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__cx__body(%Qubit* %v1, %Qubit* %v5)
  call void @__quantum__qis__cx__body(%Qubit* %v2, %Qubit* %v6)
  call void @__quantum__qis__cx__body(%Qubit* %v3, %Qubit* %v7)
  call void @__quantum__qis__swap__body(%Qubit* %v1, %Qubit* %v2)
  call void @__quantum__qis__swap__body(%Qubit* %v0, %Qubit* %v3)
  call void @__quantum__qis__h__body(%Qubit* %v3)
  call void @__quantum__qis__rz__body(double -1.5708, %Qubit* %v3, %Qubit* %v2)
  call void @__quantum__qis__h__body(%Qubit* %v2)
  call void @__quantum__qis__rz__body(double -0.785398, %Qubit* %v3, %Qubit* %v1)
  call void @__quantum__qis__rz__body(double -1.5708, %Qubit* %v2, %Qubit* %v1)
  call void @__quantum__qis__h__body(%Qubit* %v1)
  call void @__quantum__qis__rz__body(double -0.392699, %Qubit* %v3, %Qubit* %v0)
  call void @__quantum__qis__rz__body(double -0.785398, %Qubit* %v2, %Qubit* %v0)
  call void @__quantum__qis__rz__body(double -1.5708, %Qubit* %v1, %Qubit* %v0)
  call void @__quantum__qis__h__body(%Qubit* %v0)
  %v8 = call %Result* @__quantum__qis__m__body(%Qubit* %v0)
  call void @__quantum__rt__qubit_release(%Qubit* %v0)
  %v9 = call %Result* @__quantum__qis__m__body(%Qubit* %v1)
  call void @__quantum__rt__qubit_release(%Qubit* %v1)
  %v10 = call %Result* @__quantum__qis__m__body(%Qubit* %v2)
  call void @__quantum__rt__qubit_release(%Qubit* %v2)
  %v11 = call %Result* @__quantum__qis__m__body(%Qubit* %v3)
  call void @__quantum__rt__qubit_release(%Qubit* %v3)
  %v12 = call %Array* @__quantum__rt__array_create_1d(i64 4, %Result* %v8, %Result* %v9, %Result* %v10, %Result* %v11)
  %v13 = call %Result* @__quantum__qis__m__body(%Qubit* %v4)
  call void @__quantum__rt__qubit_release(%Qubit* %v4)
  %v14 = call %Result* @__quantum__qis__m__body(%Qubit* %v5)
  call void @__quantum__rt__qubit_release(%Qubit* %v5)
  %v15 = call %Result* @__quantum__qis__m__body(%Qubit* %v6)
  call void @__quantum__rt__qubit_release(%Qubit* %v6)
  %v16 = call %Result* @__quantum__qis__m__body(%Qubit* %v7)
  call void @__quantum__rt__qubit_release(%Qubit* %v7)
  ret %Array* %v12
}

declare %Array* @__quantum__rt__array_create_1d(i64, %Result*, %Result*, %Result*, %Result*)
declare %Qubit* @__quantum__rt__qubit_allocate()
declare %Result* @__quantum__qis__m__body(%Qubit*)
declare void @__quantum__qis__cx__body(%Qubit*, %Qubit*)
declare void @__quantum__qis__h__body(%Qubit*)
declare void @__quantum__qis__rz__body(double, %Qubit*, %Qubit*)
declare void @__quantum__qis__swap__body(%Qubit*, %Qubit*)
declare void @__quantum__rt__qubit_release(%Qubit*)
