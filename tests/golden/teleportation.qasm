OPENQASM 3.0;
include "stdgates.inc";
qubit[3] q;
bit[2] c;
h q[1];
cx q[1], q[2];
cx q[0], q[1];
h q[0];
c[0] = measure q[0];
reset q[0];
c[1] = measure q[1];
reset q[1];
if (c[1] == 1) { x q[2]; }
if (c[0] == 1) { z q[2]; }
