//===- PipelineTest.cpp - End-to-end compiler + simulator tests -----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs whole Qwerty programs through every stage of Fig. 2 and validates
/// the executed semantics on the state-vector simulator: Bernstein-Vazirani
/// recovers its secret, Deutsch-Jozsa distinguishes balanced oracles,
/// Grover finds the marked item, Simon's samples are orthogonal to the
/// secret, and teleportation preserves arbitrary states through the
/// classically-conditioned circuit.
///
//===----------------------------------------------------------------------===//

#include "classical/LogicNetwork.h"
#include "classical/ReversibleSynth.h"
#include "ast/Parser.h"
#include "ast/TypeChecker.h"
#include "compiler/CompileSession.h"
#include "qcirc/Flatten.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace asdf;

namespace {

/// Reads the output bits of a shot through the circuit's output mapping.
std::string outputString(const Circuit &C, const ShotResult &R) {
  std::string S;
  for (int Ref : C.OutputBits) {
    if (Ref == -2)
      S.push_back('1');
    else if (Ref == -3)
      S.push_back('0');
    else
      S.push_back(R.Bits[static_cast<unsigned>(Ref)] ? '1' : '0');
  }
  return S;
}

const char *BVSource = R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";

ProgramBindings bvBindings(const std::string &Secret) {
  ProgramBindings B;
  B.Captures["f"]["secret"] = CaptureValue::bitsFromString(Secret);
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  return B;
}

TEST(PipelineTest, BernsteinVaziraniRecoversSecret) {
  for (const char *Secret : {"1010", "1111", "0001", "1011010"}) {
    CompileSession S(BVSource, bvBindings(Secret));
    Circuit *C = S.flatCircuit();
    ASSERT_TRUE(C) << S.errorMessage();
    // B-V is deterministic: every shot yields the secret.
    ShotResult Shot = simulate(*C, 42);
    EXPECT_EQ(outputString(*C, Shot), Secret);
  }
}

TEST(PipelineTest, BVFullyInlines) {
  CompileSession S(BVSource, bvBindings("1010"));
  Module *QwertyIR = S.qwertyIR();
  ASSERT_TRUE(QwertyIR) << S.errorMessage();
  // With optimization, everything inlines into one function with no
  // call_indirect ops (§8.2).
  EXPECT_EQ(QwertyIR->Functions.size(), 1u);
  for (auto &O : QwertyIR->Functions[0]->Body.Ops) {
    EXPECT_NE(O->Kind, OpKind::CallIndirect);
    EXPECT_NE(O->Kind, OpKind::Call);
  }
}

TEST(PipelineTest, BVNoOptKeepsCallIndirects) {
  SessionOptions Opts;
  Opts.Plan = presetPlan("no-opt");
  CompileSession S(BVSource, bvBindings("1010"), Opts);
  Module *QwertyIR = S.qwertyIR();
  ASSERT_TRUE(QwertyIR) << S.errorMessage();
  unsigned Consts = 0, Indirects = 0;
  for (auto &F : QwertyIR->Functions)
    for (auto &O : F->Body.Ops) {
      Consts += O->Kind == OpKind::FuncConst;
      Indirects += O->Kind == OpKind::CallIndirect;
    }
  EXPECT_GT(Consts, 0u);
  EXPECT_GT(Indirects, 0u);
}

TEST(PipelineTest, DeutschJozsaBalancedDetected) {
  // Balanced oracle (XOR of all bits): kernel output must be nonzero.
  const char *Source = R"(
classical f[N](x: bit[N]) -> bit {
    return x.xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";
  ProgramBindings B;
  B.DimVars["N"] = 5;
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  CompileSession S(Source, B);
  Circuit *C = S.flatCircuit();
  ASSERT_TRUE(C) << S.errorMessage();
  ShotResult Shot = simulate(*C, 7);
  // XOR-of-all-bits oracle is the secret 11111 in B-V terms.
  EXPECT_EQ(outputString(*C, Shot), "11111");
}

TEST(PipelineTest, GroverFindsMarkedItem) {
  // One Grover iteration on 2 qubits finds the all-ones item with
  // certainty: 'p'[2] | f.sign | diffuser.
  const char *Source = R"(
classical oracle[N](x: bit[N]) -> bit {
    return x.and_reduce()
}
qpu kernel[N](oracle: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | oracle.sign \
        | {'p'[N]} >> {-'p'[N]} \
        | std[N].measure
}
)";
  ProgramBindings B;
  B.DimVars["N"] = 2;
  B.Captures["kernel"]["oracle"] = CaptureValue::classicalFunc("oracle");
  CompileSession Session(Source, B);
  Circuit *C = Session.flatCircuit();
  ASSERT_TRUE(C) << Session.errorMessage();
  // Grover on N=2 with one iteration succeeds with probability 1; note the
  // diffuser {'p'[2]} >> {-'p'[2]} flips the sign of everything EXCEPT...
  // rather, exactly ON |++>, which is the standard diffuser up to global
  // phase.
  std::map<std::string, unsigned> Counts;
  for (unsigned S = 0; S < 32; ++S)
    ++Counts[outputString(*C, simulate(*C, S))];
  ASSERT_EQ(Counts.size(), 1u);
  EXPECT_EQ(Counts.begin()->first, "11");
}

TEST(PipelineTest, SimonSamplesOrthogonalToSecret) {
  // Simon's with secret s: f(x) = f(x ^ s). Use f(x) = (x & mask) where
  // mask zeroes the last bit and secret = 00...01: f(x) = x >> drops the
  // last bit. Measured samples y obey y . s = 0, i.e. the last bit of y is
  // always 0.
  const char *Source = R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = 'p'[N] + '0'[N] | f.xor | (pm[N] >> std[N]) + id[N]
    first, second = q | (std[N] + std[N]).measure
    return first
}
)";
  unsigned N = 4;
  ProgramBindings B;
  B.Captures["f"]["mask"] = CaptureValue::bitsFromString("1110");
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  CompileSession Session(Source, B);
  Circuit *C = Session.flatCircuit();
  ASSERT_TRUE(C) << Session.errorMessage();
  for (unsigned S = 0; S < 40; ++S) {
    std::string Y = outputString(*C, simulate(*C, S));
    ASSERT_EQ(Y.size(), N);
    // y . s = 0 with s = 0001 means the last bit of y is 0.
    EXPECT_EQ(Y[3], '0') << "sample " << Y;
  }
}

TEST(PipelineTest, TeleportPreservesState) {
  const char *Source = R"(
qpu teleport(secret: qubit) -> qubit {
    alice, bob = 'p0' | '1' & std.flip
    m_pm, m_std = secret + alice | '1' & std.flip | (pm + std).measure
    secret_teleported = bob | (std.flip if m_std else id) \
        | (pm.flip if m_pm else id)
    return secret_teleported
}
)";
  // Note: Fig. C13 of the paper conditions pm.flip on m_std and std.flip
  // on m_pm; working the algebra (and simulating), the corrections are the
  // other way around: X^(m_std) then Z^(m_pm).
  SessionOptions Opts;
  Opts.Entry = "teleport";
  CompileSession Session(Source, {}, Opts);
  Circuit *Flat = Session.flatCircuit();
  ASSERT_TRUE(Flat) << Session.errorMessage();
  const Circuit &C = *Flat;
  ASSERT_EQ(C.OutputQubits.size(), 1u);
  unsigned OutQ = C.OutputQubits.front();

  // Teleport a few distinct states prepared on the input register (the
  // argument occupies register 0).
  for (double Theta : {0.0, 0.7, 1.3, 2.2, M_PI}) {
    StateVector SV(C.NumQubits);
    SV.apply(GateKind::RY, {}, {0}, Theta);
    std::mt19937_64 Rng(round(Theta * 1000));
    std::vector<bool> Bits(C.NumBits, false);
    for (const CircuitInstr &I : C.Instrs) {
      if (I.CondBit >= 0 &&
          Bits[static_cast<unsigned>(I.CondBit)] != I.CondVal)
        continue;
      switch (I.TheKind) {
      case CircuitInstr::Kind::Gate:
        SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
        break;
      case CircuitInstr::Kind::Measure:
        Bits[static_cast<unsigned>(I.Cbit)] = SV.measure(I.Targets[0], Rng);
        break;
      case CircuitInstr::Kind::Reset:
        SV.reset(I.Targets[0], Rng);
        break;
      }
    }
    // The output qubit must be in state RY(theta)|0>: check probability.
    double WantP1 = std::pow(std::sin(Theta / 2.0), 2);
    EXPECT_NEAR(SV.probOne(OutQ), WantP1, 1e-9) << "theta=" << Theta;
  }
}

TEST(PipelineTest, AdjointOfKernelUndoesIt) {
  const char *Source = R"(
qpu prep(q: qubit[2]) -> qubit[2] {
    return q | pm[2] >> std[2] | {'00','01'} >> {'01','00'}
}
qpu kernel(q: qubit[2]) -> qubit[2] {
    return q | prep | ~prep
}
)";
  CompileSession Session(Source, {});
  Circuit *C = Session.flatCircuit();
  ASSERT_TRUE(C) << Session.errorMessage();
  // prep then ~prep is the identity.
  std::vector<std::vector<Amplitude>> U = circuitUnitary(*C);
  std::vector<std::vector<Amplitude>> Id(
      U.size(), std::vector<Amplitude>(U.size(), Amplitude(0)));
  for (unsigned I = 0; I < Id.size(); ++I)
    Id[I][I] = Amplitude(1);
  EXPECT_TRUE(unitariesEquivalent(U, Id, 1e-8));
}

TEST(PipelineTest, PredicatedKernelActsOnlyInSpan) {
  const char *Source = R"(
qpu flipper(q: qubit) -> qubit {
    return q | std.flip
}
qpu kernel(q: qubit[2]) -> qubit[2] {
    return q | '1' & flipper
}
)";
  CompileSession Session(Source, {});
  Circuit *C = Session.flatCircuit();
  ASSERT_TRUE(C) << Session.errorMessage();
  // '1' & X == CX.
  std::vector<std::vector<Amplitude>> U = circuitUnitary(*C);
  std::vector<std::vector<Amplitude>> CX(4, std::vector<Amplitude>(4));
  CX[0][0] = CX[1][1] = CX[3][2] = CX[2][3] = Amplitude(1);
  EXPECT_TRUE(unitariesEquivalent(U, CX, 1e-8));
}

TEST(PipelineTest, RenamingSwapPredication) {
  // A kernel whose body swaps its two qubits by renaming; predicated, this
  // must become a controlled swap (Fig. 5).
  const char *Source = R"(
qpu swapper(q: qubit[2]) -> qubit[2] {
    a, b = q | id[2]
    return b + a
}
qpu kernel(q: qubit[3]) -> qubit[3] {
    return q | '1' & swapper
}
)";
  CompileSession Session(Source, {});
  Circuit *C = Session.flatCircuit();
  ASSERT_TRUE(C) << Session.errorMessage();
  std::vector<std::vector<Amplitude>> URaw = circuitUnitary(*C);
  // The kernel's qubit outputs may be a permutation of the physical
  // registers (renaming survives to the entry boundary); fold that
  // permutation into the unitary so we compare position-space semantics.
  const std::vector<unsigned> &OutQ = C->OutputQubits;
  ASSERT_EQ(OutQ.size(), 3u);
  unsigned N = C->NumQubits;
  std::vector<std::vector<Amplitude>> U(URaw.size(),
                                        std::vector<Amplitude>(URaw.size()));
  for (uint64_t RIdx = 0; RIdx < URaw.size(); ++RIdx) {
    uint64_t Pos = 0;
    for (unsigned P = 0; P < OutQ.size(); ++P)
      if (RIdx & (uint64_t(1) << (N - 1 - OutQ[P])))
        Pos |= uint64_t(1) << (OutQ.size() - 1 - P);
    for (uint64_t CIdx = 0; CIdx < URaw.size(); ++CIdx)
      U[Pos][CIdx] = URaw[RIdx][CIdx];
  }
  // Controlled-SWAP (Fredkin) on (control q0; targets q1,q2).
  std::vector<std::vector<Amplitude>> F(8, std::vector<Amplitude>(8));
  for (unsigned I = 0; I < 8; ++I) {
    unsigned J = I;
    if (I & 4) { // control set: swap the low two bits
      unsigned B1 = (I >> 1) & 1, B0 = I & 1;
      J = (I & 4) | (B0 << 1) | B1;
    }
    F[J][I] = Amplitude(1);
  }
  EXPECT_TRUE(unitariesEquivalent(U, F, 1e-8));
}

//===----------------------------------------------------------------------===//
// Oracle synthesis (§6.4)
//===----------------------------------------------------------------------===//

/// Builds U_f for a classical source function and checks the full truth
/// table against LogicNetwork::evaluate.
void expectOracleCorrect(const std::string &Source, const std::string &Func,
                         const ProgramBindings &Bindings) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Source, Diags);
  ASSERT_TRUE(P) << Diags.str();
  std::unique_ptr<Program> E = expandProgram(*P, Bindings, Diags);
  ASSERT_TRUE(E) << Diags.str();
  ASSERT_TRUE(typeCheckProgram(*E, Diags)) << Diags.str();
  FunctionDef *F = E->lookup(Func);
  ASSERT_TRUE(F);
  std::optional<LogicNetwork> Net = buildLogicNetwork(*F, Diags);
  ASSERT_TRUE(Net) << Diags.str();
  unsigned NIn = Net->numInputs(), NOut = Net->numOutputs();
  ASSERT_LE(NIn + NOut, 10u);

  // Emit the embedding into a standalone circuit.
  Module M;
  IRFunction *IRF = M.create("u_f");
  Builder B(&IRF->Body);
  std::vector<Value *> Qs;
  for (unsigned I = 0; I < NIn + NOut; ++I)
    Qs.push_back(B.qalloc());
  GateEmitter GE(B, Qs);
  std::vector<unsigned> In, Out;
  for (unsigned I = 0; I < NIn; ++I)
    In.push_back(I);
  for (unsigned I = 0; I < NOut; ++I)
    Out.push_back(NIn + I);
  ASSERT_TRUE(emitXorEmbedding(GE, *Net, In, Out, {}));
  for (unsigned I = 0; I < NIn + NOut; ++I)
    B.qfreez(GE.wire(I));
  B.ret({});
  DiagnosticEngine FlatDiags;
  std::optional<Circuit> C = flattenToCircuit(M, "u_f", FlatDiags);
  ASSERT_TRUE(C) << FlatDiags.str();

  // Truth table: |x>|0...0> -> |x>|f(x)>.
  for (uint64_t X = 0; X < (uint64_t(1) << NIn); ++X) {
    std::vector<bool> InBits;
    for (unsigned I = 0; I < NIn; ++I)
      InBits.push_back(bitAt(X, NIn, I));
    std::vector<bool> Want = Net->evaluate(InBits);
    StateVector SV(C->NumQubits);
    SV.setBasisState(X << (C->NumQubits - NIn));
    for (const CircuitInstr &I : C->Instrs)
      SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
    // Expected basis state: x concatenated with f(x), ancillas |0>.
    uint64_t WantIdx = X;
    for (unsigned I = 0; I < NOut; ++I)
      WantIdx = (WantIdx << 1) | (Want[I] ? 1 : 0);
    WantIdx <<= C->NumQubits - NIn - NOut;
    EXPECT_NEAR(std::abs(SV.amplitudes()[WantIdx]), 1.0, 1e-9)
        << "input " << X;
  }
}

TEST(OracleTest, BVInnerProductOracle) {
  ProgramBindings B;
  B.Captures["f"]["secret"] = CaptureValue::bitsFromString("101");
  expectOracleCorrect(R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
)",
                      "f", B);
}

TEST(OracleTest, AndReduceOracle) {
  ProgramBindings B;
  B.DimVars["N"] = 3;
  expectOracleCorrect(R"(
classical f[N](x: bit[N]) -> bit {
    return x.and_reduce()
}
)",
                      "f", B);
}

TEST(OracleTest, MaskOracle) {
  ProgramBindings B;
  B.Captures["f"]["mask"] = CaptureValue::bitsFromString("110");
  expectOracleCorrect(R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
)",
                      "f", B);
}

TEST(OracleTest, MixedLogicOracle) {
  ProgramBindings B;
  B.DimVars["N"] = 3;
  expectOracleCorrect(R"(
classical f[N](x: bit[N]) -> bit {
    a = x ^ ~x
    b = x | x
    return (a & b).xor_reduce()
}
)",
                      "f", B);
}

TEST(OracleTest, OrReduceNeedsAncilla) {
  ProgramBindings B;
  B.DimVars["N"] = 4;
  expectOracleCorrect(R"(
classical f[N](x: bit[N]) -> bit {
    return x.or_reduce()
}
)",
                      "f", B);
}

TEST(LogicNetworkTest, ConstantFoldingKillsCapturedAnds) {
  // (secret & x).xor_reduce() with a constant secret must become a pure
  // XOR cone: zero AND nodes (the paper's ancilla-free B-V oracle).
  ProgramBindings B;
  B.Captures["f"]["secret"] = CaptureValue::bitsFromString("1010");
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
)",
                                            Diags);
  ASSERT_TRUE(P);
  std::unique_ptr<Program> E = expandProgram(*P, B, Diags);
  ASSERT_TRUE(E);
  ASSERT_TRUE(typeCheckProgram(*E, Diags));
  std::optional<LogicNetwork> Net =
      buildLogicNetwork(*E->lookup("f"), Diags);
  ASSERT_TRUE(Net);
  EXPECT_EQ(Net->numAndNodes(), 0u);
}

//===----------------------------------------------------------------------===//
// Parametric compilation: $params through the pipeline, bind diagnostics,
// and literal-angle lifting (parameterizeSource)
//===----------------------------------------------------------------------===//

const char *RotParamSource = R"(
qpu kernel() -> bit {
    return 'p' | std.rotate($theta) | std.measure
}
)";

const char *RotLiteralSource = R"(
qpu kernel() -> bit {
    return 'p' | std.rotate(45.5) | std.measure
}
)";

TEST(ParametricTest, ParamSurvivesToTheFlatCircuit) {
  CompileSession S(RotParamSource, ProgramBindings{});
  const std::vector<std::string> *Names = S.paramNames();
  ASSERT_NE(Names, nullptr) << S.errorMessage();
  ASSERT_EQ(Names->size(), 1u);
  EXPECT_EQ((*Names)[0], "theta");
  Circuit *C = S.flatCircuit();
  ASSERT_TRUE(C);
  EXPECT_TRUE(C->isParametric());
  unsigned Symbolic = 0;
  for (const CircuitInstr &I : C->Instrs)
    Symbolic += I.isSymbolic();
  EXPECT_EQ(Symbolic, 1u) << "the $theta rotation must stay symbolic";
}

TEST(ParametricTest, BoundParamsMatchLiteralCompileBitForBit) {
  CompileSession Sym(RotParamSource, ProgramBindings{});
  std::string Err;
  std::optional<Circuit> Bound =
      Sym.bindParams(std::map<std::string, double>{{"theta", 45.5}}, &Err);
  ASSERT_TRUE(Bound) << Err;
  EXPECT_FALSE(Bound->isParametric());

  CompileSession Lit(RotLiteralSource, ProgramBindings{});
  Circuit *Want = Lit.flatCircuit();
  ASSERT_TRUE(Want) << Lit.errorMessage();

  // Structural identity: same instructions, and the bound angle is the
  // exact double the literal compile produced (both run degrees through
  // the one degreesToRadians).
  ASSERT_EQ(Bound->Instrs.size(), Want->Instrs.size());
  for (size_t I = 0; I < Want->Instrs.size(); ++I)
    EXPECT_EQ(Bound->Instrs[I].Param, Want->Instrs[I].Param) << "instr " << I;

  // And the executed bits agree shot-for-shot.
  for (uint64_t Seed = 0; Seed < 16; ++Seed)
    EXPECT_EQ(simulate(*Bound, Seed).Bits, simulate(*Want, Seed).Bits)
        << "seed " << Seed;

  // Positional binding produces the identical circuit.
  std::optional<Circuit> Positional =
      Sym.bindParams(std::vector<double>{45.5}, &Err);
  ASSERT_TRUE(Positional) << Err;
  for (size_t I = 0; I < Bound->Instrs.size(); ++I)
    EXPECT_EQ(Positional->Instrs[I].Param, Bound->Instrs[I].Param);
}

TEST(ParametricTest, BindDiagnostics) {
  CompileSession S(RotParamSource, ProgramBindings{});
  std::string Err;

  // Arity mismatch names the counts and the declared parameters.
  EXPECT_FALSE(S.bindParams(std::vector<double>{1.0, 2.0}, &Err));
  EXPECT_NE(Err.find("cannot bind 2 value(s) to 1 parameter(s)"),
            std::string::npos)
      << Err;
  EXPECT_NE(Err.find("$theta"), std::string::npos) << Err;

  // Unknown name lists what the program declares.
  EXPECT_FALSE(
      S.bindParams(std::map<std::string, double>{{"phi", 1.0}}, &Err));
  EXPECT_NE(Err.find("unknown parameter '$phi'"), std::string::npos) << Err;
  EXPECT_NE(Err.find("$theta"), std::string::npos) << Err;

  // Missing value for a declared parameter.
  EXPECT_FALSE(S.bindParams(std::map<std::string, double>{}, &Err));
  EXPECT_NE(Err.find("missing value for parameter '$theta'"),
            std::string::npos)
      << Err;

  // A failed bind does not poison the session.
  EXPECT_TRUE(S.bindParams(std::vector<double>{45.5}, &Err)) << Err;

  // Binding a program with no parameters: only the empty bind works.
  CompileSession Lit(RotLiteralSource, ProgramBindings{});
  EXPECT_FALSE(
      Lit.bindParams(std::map<std::string, double>{{"theta", 1.0}}, &Err));
  EXPECT_NE(Err.find("declares no parameters"), std::string::npos) << Err;
  EXPECT_TRUE(Lit.bindParams(std::vector<double>{}, &Err)) << Err;
}

TEST(ParametricTest, ParameterizeSourceLiftsLiterals) {
  std::optional<ParameterizedSource> PS =
      parameterizeSource(RotLiteralSource);
  ASSERT_TRUE(PS);
  ASSERT_EQ(PS->LiftedNames.size(), 1u);
  EXPECT_EQ(PS->LiftedNames[0], "__a0");
  ASSERT_EQ(PS->LiftedValues.size(), 1u);
  EXPECT_EQ(PS->LiftedValues[0], 45.5);
  EXPECT_NE(PS->Source.find(".rotate($__a0)"), std::string::npos)
      << PS->Source;

  // The lifted program compiles, and binding the lifted values back
  // reproduces the literal compile exactly.
  CompileSession Lifted(PS->Source, ProgramBindings{});
  std::string Err;
  std::optional<Circuit> Bound = Lifted.bindParams(PS->LiftedValues, &Err);
  ASSERT_TRUE(Bound) << Err;
  CompileSession Lit(RotLiteralSource, ProgramBindings{});
  Circuit *Want = Lit.flatCircuit();
  ASSERT_TRUE(Want) << Lit.errorMessage();
  ASSERT_EQ(Bound->Instrs.size(), Want->Instrs.size());
  for (size_t I = 0; I < Want->Instrs.size(); ++I)
    EXPECT_EQ(Bound->Instrs[I].Param, Want->Instrs[I].Param) << "instr " << I;
}

TEST(ParametricTest, ParameterizeSourceHandlesSignsAndIntegers) {
  // Negative and integer angles fold the sign into the lifted value.
  std::optional<ParameterizedSource> PS = parameterizeSource(R"(
qpu kernel() -> bit {
    return 'p' | std.rotate(-30.5) | pm.rotate(90) | std.measure
}
)");
  ASSERT_TRUE(PS);
  ASSERT_EQ(PS->LiftedValues.size(), 2u);
  EXPECT_EQ(PS->LiftedValues[0], -30.5);
  EXPECT_EQ(PS->LiftedValues[1], 90.0);
  EXPECT_NE(PS->Source.find(".rotate($__a0)"), std::string::npos);
  EXPECT_NE(PS->Source.find(".rotate($__a1)"), std::string::npos);
  EXPECT_EQ(PS->Source.find(".rotate(-"), std::string::npos)
      << "the minus sign must be spliced out with the literal";

  // Two sources differing only in their angles canonicalize identically —
  // the property the service's structure hash is built on.
  std::optional<ParameterizedSource> Other = parameterizeSource(R"(
qpu kernel() -> bit {
    return 'p' | std.rotate(11.25) | pm.rotate(-7) | std.measure
}
)");
  ASSERT_TRUE(Other);
  EXPECT_EQ(PS->Source, Other->Source);
}

TEST(ParametricTest, ParameterizeSourceEdgeCases) {
  // No literal rotations: returned unchanged with empty lift lists.
  std::optional<ParameterizedSource> PS =
      parameterizeSource(RotParamSource);
  ASSERT_TRUE(PS);
  EXPECT_EQ(PS->Source, RotParamSource);
  EXPECT_TRUE(PS->LiftedNames.empty());
  EXPECT_TRUE(PS->LiftedValues.empty());

  // The __a prefix is reserved for lifted names: refuse to canonicalize.
  EXPECT_FALSE(parameterizeSource(R"(
qpu kernel() -> bit {
    return 'p' | std.rotate($__a0) | std.measure
}
)"));

  // Unlexable input refuses rather than guessing.
  EXPECT_FALSE(parameterizeSource("qpu kernel() -> bit { ` }"));
}

TEST(LogicNetworkTest, AndTreeFlattensToOneNode) {
  ProgramBindings B;
  B.DimVars["N"] = 5;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(R"(
classical f[N](x: bit[N]) -> bit {
    return x.and_reduce()
}
)",
                                            Diags);
  ASSERT_TRUE(P);
  std::unique_ptr<Program> E = expandProgram(*P, B, Diags);
  ASSERT_TRUE(E);
  ASSERT_TRUE(typeCheckProgram(*E, Diags));
  std::optional<LogicNetwork> Net =
      buildLogicNetwork(*E->lookup("f"), Diags);
  ASSERT_TRUE(Net);
  // A single flattened 5-ary AND node -> one MCX when embedded.
  EXPECT_EQ(Net->numAndNodes(), 1u);
}

} // namespace
