//===- SpanCheckTest.cpp - Tests for span equivalence checking ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests Algorithms B1-B4, including the worked example of Fig. 3 and the
/// exponential-blowup-avoidance example of §4.1.
///
//===----------------------------------------------------------------------===//

#include "basis/SpanCheck.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace asdf;

namespace {

BasisLiteral lit(std::initializer_list<const char *> Strs) {
  std::vector<BasisVector> Vecs;
  for (const char *S : Strs)
    Vecs.push_back(BasisVector::fromString(S));
  return BasisLiteral(std::move(Vecs));
}

Basis litBasis(std::initializer_list<const char *> Strs) {
  return Basis::literal(lit(Strs));
}

TEST(SpanCheckTest, IdenticalBuiltins) {
  EXPECT_TRUE(spansEquivalent(Basis::builtin(PrimitiveBasis::Std, 3),
                              Basis::builtin(PrimitiveBasis::Std, 3)));
}

TEST(SpanCheckTest, DifferentPrimitiveBasesFullySpan) {
  // Lemma B.2: all fully-spanning bases of the same dimension agree in span.
  EXPECT_TRUE(spansEquivalent(Basis::builtin(PrimitiveBasis::Std, 3),
                              Basis::builtin(PrimitiveBasis::Pm, 3)));
  EXPECT_TRUE(spansEquivalent(Basis::builtin(PrimitiveBasis::Fourier, 4),
                              Basis::builtin(PrimitiveBasis::Ij, 4)));
}

TEST(SpanCheckTest, DimensionMismatchFails) {
  EXPECT_FALSE(spansEquivalent(Basis::builtin(PrimitiveBasis::Std, 3),
                               Basis::builtin(PrimitiveBasis::Std, 4)));
}

TEST(SpanCheckTest, SwapExample) {
  // {'01','10'} >> {'10','01'} from §2.2: same span on both sides.
  EXPECT_TRUE(spansEquivalent(litBasis({"01", "10"}), litBasis({"10", "01"})));
}

TEST(SpanCheckTest, DifferentSubspacesFail) {
  EXPECT_FALSE(spansEquivalent(litBasis({"01", "10"}),
                               litBasis({"00", "11"})));
}

TEST(SpanCheckTest, LiteralVsBuiltinFullSpan) {
  EXPECT_TRUE(spansEquivalent(litBasis({"00", "01", "10", "11"}),
                              Basis::builtin(PrimitiveBasis::Std, 2)));
  EXPECT_TRUE(spansEquivalent(litBasis({"pm", "mp", "pp", "mm"}),
                              Basis::builtin(PrimitiveBasis::Std, 2)));
}

TEST(SpanCheckTest, PartialLiteralVsBuiltinFails) {
  EXPECT_FALSE(spansEquivalent(litBasis({"00", "11"}),
                               Basis::builtin(PrimitiveBasis::Std, 2)));
}

TEST(SpanCheckTest, PhasesIgnored) {
  BasisVector V1(PrimitiveBasis::Std, 1, 0);
  BasisVector V2(PrimitiveBasis::Std, 1, 1, /*Phase=*/M_PI);
  Basis Lhs = Basis::literal(BasisLiteral({V1, V2}));
  EXPECT_TRUE(spansEquivalent(Lhs, Basis::builtin(PrimitiveBasis::Std, 1)));
}

TEST(SpanCheckTest, ExponentialExampleRunsInPolyTime) {
  // §4.1: {'0','1'}[64] >> {'1','0'}[64] represents 2^64 vectors; factoring
  // keeps the check polynomial. If this test finishes at all, we did not
  // take the naive product.
  Basis Lhs = litBasis({"0", "1"}).power(64);
  Basis Rhs = litBasis({"1", "0"}).power(64);
  EXPECT_TRUE(spansEquivalent(Lhs, Rhs));
}

TEST(SpanCheckTest, Figure3WorkedExample) {
  //    {'p'} + fourier[3] + {'1'@45} + pm
  // >> {-'p'} + std[2] + ij + {-'11','10'}
  BasisVector PhasedOne(PrimitiveBasis::Std, 1, 1, /*Phase=*/M_PI / 4);
  Basis Lhs = litBasis({"p"})
                  .tensor(Basis::builtin(PrimitiveBasis::Fourier, 3))
                  .tensor(Basis::literal(BasisLiteral({PhasedOne})))
                  .tensor(Basis::builtin(PrimitiveBasis::Pm, 1));
  BasisVector NegP(PrimitiveBasis::Pm, 1, 0, /*Phase=*/M_PI);
  BasisVector Neg11(PrimitiveBasis::Std, 2, 0b11, /*Phase=*/M_PI);
  BasisVector Ten(PrimitiveBasis::Std, 2, 0b10);
  Basis Rhs = Basis::literal(BasisLiteral({NegP}))
                  .tensor(Basis::builtin(PrimitiveBasis::Std, 2))
                  .tensor(Basis::builtin(PrimitiveBasis::Ij, 1))
                  .tensor(Basis::literal(BasisLiteral({Neg11, Ten})));
  EXPECT_TRUE(spansEquivalent(Lhs, Rhs));
}

TEST(SpanCheckTest, Figure3VariantWithWrongTailFails) {
  // Same as Fig. 3 but the final literal does not span {'10','11'}.
  Basis Lhs = litBasis({"p"})
                  .tensor(Basis::builtin(PrimitiveBasis::Fourier, 3))
                  .tensor(litBasis({"1"}))
                  .tensor(Basis::builtin(PrimitiveBasis::Pm, 1));
  Basis Rhs = litBasis({"p"})
                  .tensor(Basis::builtin(PrimitiveBasis::Std, 2))
                  .tensor(Basis::builtin(PrimitiveBasis::Ij, 1))
                  .tensor(litBasis({"00", "01"}));
  EXPECT_FALSE(spansEquivalent(Lhs, Rhs));
}

TEST(SpanCheckTest, FourierSeparability) {
  // Lemma B.1: fourier[4] factors into fourier[1] x fourier[3] span-wise.
  Basis Lhs = Basis::builtin(PrimitiveBasis::Fourier, 4);
  Basis Rhs = Basis::builtin(PrimitiveBasis::Fourier, 1)
                  .tensor(Basis::builtin(PrimitiveBasis::Fourier, 3));
  EXPECT_TRUE(spansEquivalent(Lhs, Rhs));
}

TEST(SpanCheckTest, SingletonVsSingletonMatch) {
  EXPECT_TRUE(spansEquivalent(litBasis({"1"}), litBasis({"1"})));
  EXPECT_FALSE(spansEquivalent(litBasis({"1"}), litBasis({"0"})));
  // Different primitive basis singletons never match unless fully spanning.
  EXPECT_FALSE(spansEquivalent(litBasis({"1"}), litBasis({"m"})));
}

TEST(SpanCheckTest, LiteralFactorsAcrossElementBoundary) {
  // {'01','10'} + {'0','1'} vs the merged 3-qubit literal.
  Basis Lhs = litBasis({"01", "10"}).tensor(litBasis({"0", "1"}));
  Basis Rhs = litBasis({"010", "011", "100", "101"});
  EXPECT_TRUE(spansEquivalent(Lhs, Rhs));
}

TEST(SpanCheckTest, PredicatePrefixMustMatch) {
  // {'1'} + std vs {'11','10'}: prefix {'1'} factors out.
  Basis Lhs = litBasis({"1"}).tensor(Basis::builtin(PrimitiveBasis::Std, 1));
  Basis Rhs = litBasis({"11", "10"});
  EXPECT_TRUE(spansEquivalent(Lhs, Rhs));
  // But {'0'} + std does not span {'11','10'}.
  Basis Bad = litBasis({"0"}).tensor(Basis::builtin(PrimitiveBasis::Std, 1));
  EXPECT_FALSE(spansEquivalent(Bad, Rhs));
}

TEST(FactorTest, FullSpanPrefixSucceeds) {
  // {'00','01','10','11'} = std[1] x {'0','1'}.
  std::optional<BasisLiteral> Rem =
      factorFullSpanPrefix(lit({"00", "01", "10", "11"}), 1);
  ASSERT_TRUE(Rem.has_value());
  EXPECT_EQ(Rem->Dim, 1u);
  EXPECT_EQ(Rem->Vectors.size(), 2u);
}

TEST(FactorTest, FullSpanPrefixFailsOnEntangledLiteral) {
  // {'00','11'} cannot factor a fully-spanning 1-qubit prefix.
  EXPECT_FALSE(factorFullSpanPrefix(lit({"00", "11"}), 1).has_value());
}

TEST(FactorTest, FullSpanPrefixFailsOnIndivisibleCount) {
  EXPECT_FALSE(factorFullSpanPrefix(lit({"00", "01", "10"}), 1).has_value());
}

TEST(FactorTest, LiteralPrefixSucceeds) {
  // {'10','11'} = {'1'} x {'0','1'}.
  std::optional<BasisLiteral> Rem =
      factorLiteralPrefix(lit({"10", "11"}), lit({"1"}));
  ASSERT_TRUE(Rem.has_value());
  EXPECT_EQ(Rem->Vectors.size(), 2u);
  EXPECT_TRUE(Rem->fullySpans());
}

TEST(FactorTest, LiteralPrefixWrongPrefixFails) {
  EXPECT_FALSE(factorLiteralPrefix(lit({"10", "11"}), lit({"0"})).has_value());
}

TEST(FactorTest, LiteralPrefixMixedPrimFails) {
  EXPECT_FALSE(factorLiteralPrefix(lit({"10", "11"}), lit({"m"})).has_value());
}

TEST(FactorTest, FactorLiteralAtDiscoversPrefix) {
  std::optional<std::pair<BasisLiteral, BasisLiteral>> Fac =
      factorLiteralAt(lit({"101", "100", "011", "010"}), 2);
  ASSERT_TRUE(Fac.has_value());
  EXPECT_EQ(Fac->first.Vectors.size(), 2u);
  EXPECT_EQ(Fac->second.Vectors.size(), 2u);
  EXPECT_EQ(Fac->first.Dim, 2u);
  EXPECT_EQ(Fac->second.Dim, 1u);
}

TEST(FactorTest, FactorLiteralAtFailsOnNonProduct) {
  // Appendix F example: {'00','10','01','11'} with prefix 1 works, but the
  // 4-vector literal {'00','01','10','11'} minus one pair does not.
  EXPECT_FALSE(factorLiteralAt(lit({"00", "01", "10"}), 1).has_value());
}

TEST(FactorTest, MergeElementsFormsProduct) {
  BasisLiteral Merged = mergeElements(
      BasisElement::literal(lit({"0", "1"})),
      BasisElement::literal(lit({"0", "1"})));
  EXPECT_EQ(Merged.Dim, 2u);
  EXPECT_EQ(Merged.Vectors.size(), 4u);
  EXPECT_TRUE(Merged.fullySpans());
}

TEST(FactorTest, BuiltinToLiteralEnumerates) {
  BasisLiteral L = builtinToLiteral(PrimitiveBasis::Std, 3);
  EXPECT_EQ(L.Vectors.size(), 8u);
  EXPECT_TRUE(L.fullySpans());
}

// Property-style sweep: {'0','1'}[k] matches std[k] and any reordering.
class SpanPowerSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SpanPowerSweep, PowerOfFullSpanMatchesBuiltin) {
  unsigned K = GetParam();
  Basis Lhs = litBasis({"0", "1"}).power(K);
  EXPECT_TRUE(spansEquivalent(Lhs, Basis::builtin(PrimitiveBasis::Std, K)));
  EXPECT_TRUE(
      spansEquivalent(Lhs, litBasis({"1", "0"}).power(K)));
  EXPECT_FALSE(
      spansEquivalent(Lhs, Basis::builtin(PrimitiveBasis::Std, K + 1)));
}

INSTANTIATE_TEST_SUITE_P(SpanCheck, SpanPowerSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 33u, 64u));

// Property-style sweep: a predicate literal tensored with a fully spanning
// basis factors correctly regardless of how the right side is merged.
class SpanPredicateSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SpanPredicateSweep, PredicateFactorsFromMergedLiteral) {
  unsigned N = GetParam();
  // lhs = {'1'} + std[N]; rhs = the 2^N vectors prefixed by '1', merged.
  Basis Lhs =
      litBasis({"1"}).tensor(Basis::builtin(PrimitiveBasis::Std, N));
  std::vector<BasisVector> Vecs;
  for (uint64_t I = 0; I < (uint64_t(1) << N); ++I)
    Vecs.push_back(BasisVector(PrimitiveBasis::Std, N + 1,
                               bitConcat(1, I, N)));
  Basis Rhs = Basis::literal(BasisLiteral(std::move(Vecs)));
  EXPECT_TRUE(spansEquivalent(Lhs, Rhs));
}

INSTANTIATE_TEST_SUITE_P(SpanCheck, SpanPredicateSweep,
                         ::testing::Values(1u, 2u, 3u, 6u, 10u));

} // namespace
