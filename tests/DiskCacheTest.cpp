//===- DiskCacheTest.cpp - Crash-safe disk cache tier tests ---------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks down the durability story of the on-disk artifact tier:
///
///   - the entry codec round-trips text and flat-circuit artifacts
///     bit-exactly (raw double bit patterns included), and rejects every
///     truncation and every single-byte corruption of an encoded entry;
///   - entries from a different build fingerprint are recognized as such,
///     never served;
///   - a restarted cache warms from disk, quarantines invalid entries
///     (they are moved aside, not fatal, and never served), sweeps
///     half-written tmp files, and evicts oldest-first under the byte
///     budget by unlinking files;
///   - the ArtifactCache memory tier writes through to disk and promotes
///     disk hits back into memory;
///   - a *service* restarted on the same --disk-cache directory serves
///     bit-identical run results without recompiling;
///   - under fault injection (ASDF_FAULT_INJECTION builds): injected write
///     failures are counted and swallowed, torn writes are quarantined on
///     the next read, and read-time bit rot is caught by the checksum.
///
//===----------------------------------------------------------------------===//

#include "service/DiskCache.h"

#include "service/Request.h"
#include "service/Service.h"
#include "support/BuildInfo.h"
#include "support/FaultInject.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

using namespace asdf;

namespace {

/// A fresh private directory per test (TempDir is shared across suites).
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "diskcache-" + Name + "-" +
                    std::to_string(::getpid());
  // Tests may re-run in one process; start clean.
  ::system(("rm -rf " + Dir).c_str());
  return Dir;
}

bool fileExists(const std::string &Path) {
  struct stat St{};
  return ::stat(Path.c_str(), &St) == 0;
}

CachedArtifact textArtifact(const std::string &Text = "OPENQASM 3;\n") {
  CachedArtifact Art;
  Art.Kind = "qasm";
  Art.Text = Text;
  return Art;
}

/// A circuit exercising every field of the codec: symbolic and concrete
/// angles (awkward bit patterns), controls, measures, resets, classical
/// conditions, outputs, and parameter names.
std::shared_ptr<Circuit> gnarlyCircuit() {
  auto C = std::make_shared<Circuit>();
  C->NumQubits = 3;
  C->NumBits = 2;
  C->ParamNames = {"theta", "phi"};
  C->append(CircuitInstr::gate(GateKind::H, {}, {0}));
  CircuitInstr RZ = CircuitInstr::gate(GateKind::RZ, {0}, {1});
  RZ.Param = 0.1 + 0x1p-52; // Not exactly representable in fewer bits.
  C->append(RZ);
  CircuitInstr Sym = CircuitInstr::gate(GateKind::RY, {}, {2});
  Sym.ParamIdx = 1;
  Sym.ParamScale = -0.5;
  Sym.ParamOfs = 90.0 + 0x1p-30;
  C->append(Sym);
  C->append(CircuitInstr::measure(1, 0));
  CircuitInstr Cond = CircuitInstr::gate(GateKind::X, {}, {2});
  Cond.CondBit = 0;
  Cond.CondVal = false;
  C->append(Cond);
  C->append(CircuitInstr::reset(1));
  C->append(CircuitInstr::measure(2, 1));
  C->OutputQubits = {2};
  C->OutputBits = {1, 0};
  return C;
}

/// Field-by-field equality with raw-bit double compares: 0.0 == -0.0 and
/// NaN != NaN under operator==, but the disk round trip must preserve the
/// exact pattern.
bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

void expectCircuitsBitIdentical(const Circuit &A, const Circuit &B) {
  EXPECT_EQ(A.NumQubits, B.NumQubits);
  EXPECT_EQ(A.NumBits, B.NumBits);
  EXPECT_EQ(A.OutputQubits, B.OutputQubits);
  EXPECT_EQ(A.OutputBits, B.OutputBits);
  EXPECT_EQ(A.ParamNames, B.ParamNames);
  ASSERT_EQ(A.Instrs.size(), B.Instrs.size());
  for (size_t I = 0; I < A.Instrs.size(); ++I) {
    const CircuitInstr &X = A.Instrs[I], &Y = B.Instrs[I];
    EXPECT_EQ(X.TheKind, Y.TheKind) << "instr " << I;
    EXPECT_EQ(X.Gate, Y.Gate) << "instr " << I;
    EXPECT_TRUE(sameBits(X.Param, Y.Param)) << "instr " << I;
    EXPECT_EQ(X.ParamIdx, Y.ParamIdx) << "instr " << I;
    EXPECT_TRUE(sameBits(X.ParamScale, Y.ParamScale)) << "instr " << I;
    EXPECT_TRUE(sameBits(X.ParamOfs, Y.ParamOfs)) << "instr " << I;
    EXPECT_EQ(X.Controls, Y.Controls) << "instr " << I;
    EXPECT_EQ(X.Targets, Y.Targets) << "instr " << I;
    EXPECT_EQ(X.Cbit, Y.Cbit) << "instr " << I;
    EXPECT_EQ(X.CondBit, Y.CondBit) << "instr " << I;
    EXPECT_EQ(X.CondVal, Y.CondVal) << "instr " << I;
  }
}

//===----------------------------------------------------------------------===//
// Entry codec
//===----------------------------------------------------------------------===//

TEST(DiskCacheCodec, RoundTripsTextArtifact) {
  CachedArtifact In = textArtifact("OPENQASM 3;\nqubit[2] q;\n");
  std::string Bytes = DiskCache::encode(In);
  CachedArtifact Out;
  std::string Fingerprint;
  ASSERT_EQ(DiskCache::decode(Bytes, Out, Fingerprint),
            DiskCache::DecodeResult::Ok);
  EXPECT_EQ(Out.Kind, In.Kind);
  EXPECT_EQ(Out.Text, In.Text);
  EXPECT_EQ(Out.Flat, nullptr);
  EXPECT_EQ(Fingerprint, buildFingerprint());
}

TEST(DiskCacheCodec, RoundTripsFlatCircuitBitExact) {
  CachedArtifact In;
  In.Kind = "flat-circuit";
  In.Flat = gnarlyCircuit();
  std::string Bytes = DiskCache::encode(In);
  CachedArtifact Out;
  std::string Fingerprint;
  ASSERT_EQ(DiskCache::decode(Bytes, Out, Fingerprint),
            DiskCache::DecodeResult::Ok);
  EXPECT_EQ(Out.Kind, "flat-circuit");
  ASSERT_NE(Out.Flat, nullptr);
  expectCircuitsBitIdentical(*In.Flat, *Out.Flat);
  // The rehydrated circuit's size accounting matches too (the cache
  // budget must not drift across a restart).
  EXPECT_EQ(In.bytes(), Out.bytes());
}

TEST(DiskCacheCodec, RejectsEveryTruncation) {
  CachedArtifact In;
  In.Kind = "flat-circuit";
  In.Flat = gnarlyCircuit();
  std::string Bytes = DiskCache::encode(In);
  CachedArtifact Out;
  std::string Fingerprint;
  for (size_t Len = 0; Len < Bytes.size(); ++Len)
    ASSERT_EQ(DiskCache::decode(Bytes.substr(0, Len), Out, Fingerprint),
              DiskCache::DecodeResult::Corrupt)
        << "truncation to " << Len << " bytes must not decode";
}

TEST(DiskCacheCodec, RejectsEverySingleByteFlip) {
  CachedArtifact In = textArtifact();
  In.Flat = gnarlyCircuit();
  std::string Bytes = DiskCache::encode(In);
  CachedArtifact Out;
  std::string Fingerprint;
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::string Flipped = Bytes;
    Flipped[I] ^= 0x10;
    ASSERT_NE(DiskCache::decode(Flipped, Out, Fingerprint),
              DiskCache::DecodeResult::Ok)
        << "flip at byte " << I << " must not decode as Ok";
  }
}

TEST(DiskCacheCodec, DetectsForeignBuildFingerprint) {
  CachedArtifact In = textArtifact();
  std::string Bytes = DiskCache::encode(In, "asdf-other-build");
  CachedArtifact Out;
  std::string Fingerprint;
  EXPECT_EQ(DiskCache::decode(Bytes, Out, Fingerprint),
            DiskCache::DecodeResult::FingerprintMismatch);
  EXPECT_EQ(Fingerprint, "asdf-other-build");
  // Decoding against the matching expectation succeeds: structure was
  // never the problem.
  EXPECT_EQ(DiskCache::decode(Bytes, Out, Fingerprint, "asdf-other-build"),
            DiskCache::DecodeResult::Ok);
}

//===----------------------------------------------------------------------===//
// Filesystem tier: durability, quarantine, eviction
//===----------------------------------------------------------------------===//

TEST(DiskCacheTest, PutGetRoundTripAndStats) {
  std::string Dir = freshDir("roundtrip");
  DiskCache Cache(Dir);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  CacheKey K{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(Cache.get(K), nullptr);
  Cache.put(K, textArtifact("hello"));
  auto Hit = Cache.get(K);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Text, "hello");
  DiskCacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Insertions, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_GT(S.BytesUsed, 0u);
  EXPECT_TRUE(fileExists(Dir + "/objects/" + K.hex() + ".art"));
}

TEST(DiskCacheTest, WarmRestartServesPreviousEntries) {
  std::string Dir = freshDir("warm");
  CacheKey K{7, 9};
  {
    DiskCache Cache(Dir);
    std::string Error;
    ASSERT_TRUE(Cache.open(Error)) << Error;
    CachedArtifact Art;
    Art.Kind = "flat-circuit";
    Art.Flat = gnarlyCircuit();
    Cache.put(K, Art);
  } // "Crash": the process state is gone, only the files remain.
  DiskCache Reborn(Dir);
  std::string Error;
  ASSERT_TRUE(Reborn.open(Error)) << Error;
  EXPECT_EQ(Reborn.stats().WarmedEntries, 1u);
  auto Hit = Reborn.get(K);
  ASSERT_NE(Hit, nullptr);
  ASSERT_NE(Hit->Flat, nullptr);
  expectCircuitsBitIdentical(*gnarlyCircuit(), *Hit->Flat);
}

TEST(DiskCacheTest, TruncatedEntryIsQuarantinedOnOpenNotFatal) {
  std::string Dir = freshDir("truncated");
  CacheKey Good{1, 1}, Bad{2, 2};
  {
    DiskCache Cache(Dir);
    std::string Error;
    ASSERT_TRUE(Cache.open(Error)) << Error;
    Cache.put(Good, textArtifact("good"));
    Cache.put(Bad, textArtifact("doomed"));
  }
  // Tear the second entry as a crash would (the atomic rename makes this
  // impossible through the API, so rip the file directly).
  std::string BadPath = Dir + "/objects/" + Bad.hex() + ".art";
  ASSERT_EQ(::truncate(BadPath.c_str(), 11), 0);

  DiskCache Reborn(Dir);
  std::string Error;
  ASSERT_TRUE(Reborn.open(Error))
      << "a corrupt entry must never fail startup: " << Error;
  DiskCacheStats S = Reborn.stats();
  EXPECT_EQ(S.WarmedEntries, 1u);
  EXPECT_EQ(S.Corrupt, 1u);
  EXPECT_EQ(S.Quarantined, 1u);
  EXPECT_NE(Reborn.get(Good), nullptr) << "healthy entries still serve";
  EXPECT_EQ(Reborn.get(Bad), nullptr) << "the torn entry must not serve";
  EXPECT_FALSE(fileExists(BadPath));
  EXPECT_TRUE(
      fileExists(Dir + "/quarantine/" + Bad.hex() + ".art.corrupt"))
      << "invalid entries are moved aside for postmortems, not deleted";
}

TEST(DiskCacheTest, ForeignFingerprintEntryIsQuarantinedOnOpen) {
  std::string Dir = freshDir("fingerprint");
  CacheKey K{3, 4};
  {
    DiskCache Cache(Dir);
    std::string Error;
    ASSERT_TRUE(Cache.open(Error)) << Error;
  }
  // An entry produced by a differently-configured build: structurally
  // valid, wrong identity.
  std::string Foreign = DiskCache::encode(textArtifact(), "asdf-elsewhere");
  std::ofstream(Dir + "/objects/" + K.hex() + ".art",
                std::ios::binary | std::ios::trunc)
      << Foreign;
  DiskCache Reborn(Dir);
  std::string Error;
  ASSERT_TRUE(Reborn.open(Error)) << Error;
  EXPECT_EQ(Reborn.stats().WarmedEntries, 0u);
  EXPECT_EQ(Reborn.get(K), nullptr);
  EXPECT_TRUE(
      fileExists(Dir + "/quarantine/" + K.hex() + ".art.fingerprint"));
}

TEST(DiskCacheTest, StaleTmpFilesAreSweptOnOpen) {
  std::string Dir = freshDir("tmpsweep");
  {
    DiskCache Cache(Dir);
    std::string Error;
    ASSERT_TRUE(Cache.open(Error)) << Error;
  }
  // A crash mid-put leaves its partial write in tmp/, invisible as an
  // entry.
  std::string Stale = Dir + "/tmp/deadbeef.123";
  std::ofstream(Stale, std::ios::trunc) << "half an ent";
  ASSERT_TRUE(fileExists(Stale));
  DiskCache Reborn(Dir);
  std::string Error;
  ASSERT_TRUE(Reborn.open(Error)) << Error;
  EXPECT_FALSE(fileExists(Stale)) << "tmp files must be swept at open";
  EXPECT_EQ(Reborn.stats().WarmedEntries, 0u);
}

TEST(DiskCacheTest, ByteBudgetEvictsOldestFiles) {
  std::string Dir = freshDir("evict");
  CachedArtifact Big = textArtifact(std::string(4096, 'x'));
  size_t EntryBytes = DiskCache::encode(Big).size();
  // Room for two entries, not three.
  DiskCache Cache(Dir, 2 * EntryBytes + EntryBytes / 2);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  CacheKey A{1, 0}, B{2, 0}, C{3, 0};
  Cache.put(A, Big);
  Cache.put(B, Big);
  Cache.put(C, Big);
  DiskCacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Entries, 2u);
  EXPECT_LE(S.BytesUsed, 2 * EntryBytes + EntryBytes / 2);
  EXPECT_FALSE(fileExists(Dir + "/objects/" + A.hex() + ".art"))
      << "the oldest entry's file must be unlinked";
  EXPECT_NE(Cache.get(B), nullptr);
  EXPECT_NE(Cache.get(C), nullptr);
  EXPECT_EQ(Cache.get(A), nullptr);
}

TEST(DiskCacheTest, UnopenedCacheServesMissesAndDropsPuts) {
  DiskCache Cache(freshDir("unopened"));
  CacheKey K{5, 5};
  Cache.put(K, textArtifact());
  EXPECT_EQ(Cache.get(K), nullptr);
  EXPECT_EQ(Cache.stats().Insertions, 0u);
}

//===----------------------------------------------------------------------===//
// Integration with the memory tier and the service
//===----------------------------------------------------------------------===//

TEST(DiskCacheTest, ArtifactCacheWritesThroughAndPromotesDiskHits) {
  std::string Dir = freshDir("writethrough");
  DiskCache Disk(Dir);
  std::string Error;
  ASSERT_TRUE(Disk.open(Error)) << Error;
  CacheKey K{11, 13};
  {
    ArtifactCache Mem;
    Mem.attachDisk(&Disk);
    Mem.put(K, std::make_shared<CachedArtifact>(textArtifact("through")));
    EXPECT_EQ(Disk.stats().Insertions, 1u) << "puts must write through";
  }
  // A fresh memory tier (the restarted daemon) misses in memory, hits on
  // disk, and promotes.
  ArtifactCache Mem2;
  Mem2.attachDisk(&Disk);
  auto Hit = Mem2.get(K);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Text, "through");
  EXPECT_EQ(Disk.stats().Hits, 1u);
  EXPECT_EQ(Mem2.stats().Misses, 1u);
  // Promotion makes the next lookup a pure memory hit.
  ASSERT_NE(Mem2.get(K), nullptr);
  EXPECT_EQ(Disk.stats().Hits, 1u) << "promoted entries stop hitting disk";
  EXPECT_EQ(Mem2.stats().Hits, 1u);
}

TEST(DiskCacheTest, ServiceRestartServesBitIdenticalRunsFromDisk) {
  std::string Dir = freshDir("service");
  ServiceOptions Options;
  Options.Workers = 2;
  Options.DiskCacheDir = Dir;

  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Run;
  R.Id = 1;
  R.Source = "qpu kernel() -> bit {\n    return 'p' | std.measure\n}\n";
  R.Shots = 32;
  R.Seed = 0xfeedfacecafebeefULL;

  std::vector<std::string> ColdResults;
  std::string Key;
  {
    AsdfService Service(Options);
    ASSERT_TRUE(Service.diskCacheError().empty())
        << Service.diskCacheError();
    ServiceResponse Cold = Service.handle(R);
    ASSERT_TRUE(Cold.Ok) << Cold.Error.Message;
    EXPECT_FALSE(Cold.CacheHit);
    ColdResults = Cold.Results;
    Key = Cold.Key;
    Service.drain();
  } // The first daemon is gone; only the disk directory survives.

  AsdfService Reborn(Options);
  ServiceResponse Warm = Reborn.handle(R);
  ASSERT_TRUE(Warm.Ok) << Warm.Error.Message;
  EXPECT_TRUE(Warm.CacheHit)
      << "the restarted service must serve the compile from disk";
  EXPECT_EQ(Warm.Key, Key);
  EXPECT_EQ(Warm.Results, ColdResults)
      << "disk-served circuits must simulate bit-identically";
  ASSERT_NE(Reborn.diskCache(), nullptr);
  EXPECT_GE(Reborn.diskCache()->stats().WarmedEntries, 1u);
  EXPECT_GE(Reborn.diskCache()->stats().Hits, 1u);
  Reborn.drain();
}

//===----------------------------------------------------------------------===//
// Fault injection (compiled points only in ASDF_FAULT_INJECTION builds)
//===----------------------------------------------------------------------===//

#ifdef ASDF_FAULT_INJECTION

class DiskCacheFaultTest : public ::testing::Test {
protected:
  void TearDown() override { fault::reset(); }
};

TEST_F(DiskCacheFaultTest, SpecGrammarAndCounters) {
  std::string Error;
  EXPECT_FALSE(fault::arm("disk.write", Error)) << "missing =N";
  EXPECT_FALSE(fault::arm("disk.write=x", Error));
  EXPECT_TRUE(fault::arm("disk.write=2@1,worker.stall=1", Error)) << Error;
  EXPECT_FALSE(fault::shouldFail("disk.write")) << "skip=1 spares the 1st";
  EXPECT_TRUE(fault::shouldFail("disk.write"));
  EXPECT_TRUE(fault::shouldFail("disk.write"));
  EXPECT_FALSE(fault::shouldFail("disk.write")) << "budget of 2 exhausted";
  EXPECT_EQ(fault::fired("disk.write"), 2u);
  EXPECT_EQ(fault::evaluated("disk.write"), 4u);
  EXPECT_FALSE(fault::shouldFail("disk.read-corrupt")) << "unarmed point";
}

TEST_F(DiskCacheFaultTest, InjectedWriteFailureIsCountedAndSwallowed) {
  std::string Dir = freshDir("faultwrite");
  DiskCache Cache(Dir);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  ASSERT_TRUE(fault::arm("disk.write=1", Error)) << Error;
  CacheKey K{21, 22};
  Cache.put(K, textArtifact());
  DiskCacheStats S = Cache.stats();
  EXPECT_EQ(S.WriteFailures, 1u);
  EXPECT_EQ(S.Insertions, 0u);
  EXPECT_EQ(Cache.get(K), nullptr);
  EXPECT_FALSE(fileExists(Dir + "/objects/" + K.hex() + ".art"))
      << "a failed write must leave no visible entry";
  // The fault budget is spent; the tier heals on the next put.
  Cache.put(K, textArtifact());
  EXPECT_NE(Cache.get(K), nullptr);
}

TEST_F(DiskCacheFaultTest, TornWriteIsCaughtByChecksumAndQuarantined) {
  std::string Dir = freshDir("faulttorn");
  DiskCache Cache(Dir);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  ASSERT_TRUE(fault::arm("disk.torn-write=1", Error)) << Error;
  CacheKey K{31, 32};
  Cache.put(K, textArtifact(std::string(512, 'z')));
  // The torn entry is on disk under its real name — exactly the state a
  // power cut mid-write would leave without the tmp+rename discipline.
  // The checksum catches it at read time and quarantines.
  EXPECT_EQ(Cache.get(K), nullptr);
  DiskCacheStats S = Cache.stats();
  EXPECT_EQ(S.Corrupt, 1u);
  EXPECT_EQ(S.Quarantined, 1u);
  EXPECT_TRUE(fileExists(Dir + "/quarantine/" + K.hex() + ".art.corrupt"));
  // And a restart over the same directory stays healthy.
  DiskCache Reborn(Dir);
  ASSERT_TRUE(Reborn.open(Error)) << Error;
  EXPECT_EQ(Reborn.stats().WarmedEntries, 0u);
  EXPECT_EQ(Reborn.get(K), nullptr);
}

TEST_F(DiskCacheFaultTest, ReadTimeBitRotIsQuarantinedAndHealed) {
  std::string Dir = freshDir("faultrot");
  DiskCache Cache(Dir);
  std::string Error;
  ASSERT_TRUE(Cache.open(Error)) << Error;
  CacheKey K{41, 42};
  Cache.put(K, textArtifact("precious"));
  ASSERT_TRUE(fault::arm("disk.read-corrupt=1", Error)) << Error;
  EXPECT_EQ(Cache.get(K), nullptr)
      << "rotted bytes must fail the checksum, not decode";
  EXPECT_EQ(Cache.stats().Quarantined, 1u);
  // The entry is gone (quarantined) — a rewrite restores service.
  Cache.put(K, textArtifact("precious"));
  auto Hit = Cache.get(K);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Text, "precious");
}

TEST_F(DiskCacheFaultTest, CompileBadAllocMapsToResourceExhausted) {
  AsdfService Service(ServiceOptions{2});
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Compile;
  R.Id = 1;
  R.Source = "qpu kernel() -> bit {\n    return 'p' | std.measure\n}\n";
  R.Fault = "compile.bad-alloc=1";
  ServiceResponse Resp = Service.handle(R);
  ASSERT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Error.Kind, "resource-exhausted");
  EXPECT_GT(Resp.Error.RetryAfterMs, 0u) << "OOM refusals hint a backoff";
  // The fault budget is spent: the identical request now succeeds — the
  // retry story a client with --retries sees.
  R.Fault.clear();
  ServiceResponse Again = Service.handle(R);
  EXPECT_TRUE(Again.Ok) << Again.Error.Message;
  Service.drain();
}

#else // !ASDF_FAULT_INJECTION

TEST(DiskCacheFaultTest, FaultFieldIsRejectedInProductionBuilds) {
  // A production daemon must refuse test-only fault arming loudly.
  std::string Error;
  EXPECT_FALSE(fault::arm("disk.write=1", Error));
  EXPECT_NE(Error.find("not compiled"), std::string::npos) << Error;
  json::Value V;
  ASSERT_TRUE(json::parse(
      R"({"id": 1, "op": "stats", "fault": "disk.write=1"})", V, Error))
      << Error;
  ServiceRequest R;
  EXPECT_FALSE(ServiceRequest::fromJson(V, R, Error));
  EXPECT_NE(Error.find("fault"), std::string::npos) << Error;
}

#endif // ASDF_FAULT_INJECTION

} // namespace
