//===- StabilizerTest.cpp - CHP tableau engine unit tests -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/CircuitAnalysis.h"
#include "sim/StabilizerBackend.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace asdf;

namespace {

//===----------------------------------------------------------------------===//
// Deterministic single- and two-qubit behavior
//===----------------------------------------------------------------------===//

TEST(TableauTest, FreshStateMeasuresZero) {
  Tableau T(2);
  std::mt19937_64 Rng(1);
  EXPECT_FALSE(T.measure(0, Rng));
  EXPECT_FALSE(T.measure(1, Rng));
}

TEST(TableauTest, XFlipsOutcome) {
  Tableau T(1);
  std::mt19937_64 Rng(1);
  T.x(0);
  EXPECT_TRUE(T.measure(0, Rng));
}

TEST(TableauTest, YFlipsOutcome) {
  Tableau T(1);
  std::mt19937_64 Rng(1);
  T.y(0);
  EXPECT_TRUE(T.measure(0, Rng));
}

TEST(TableauTest, HZHIsX) {
  Tableau T(1);
  std::mt19937_64 Rng(1);
  T.h(0);
  T.z(0);
  T.h(0);
  bool Outcome;
  ASSERT_TRUE(T.isDeterministic(0, Outcome));
  EXPECT_TRUE(Outcome);
}

TEST(TableauTest, SSquaredIsZ) {
  Tableau T(1);
  T.h(0);
  T.s(0);
  T.s(0);
  T.h(0); // H Z H = X
  bool Outcome;
  ASSERT_TRUE(T.isDeterministic(0, Outcome));
  EXPECT_TRUE(Outcome);
}

TEST(TableauTest, SdgCancelsS) {
  Tableau T(1);
  T.h(0);
  T.s(0);
  T.sdg(0);
  T.h(0); // identity overall
  bool Outcome;
  ASSERT_TRUE(T.isDeterministic(0, Outcome));
  EXPECT_FALSE(Outcome);
}

TEST(TableauTest, CxEntanglesFromControl) {
  Tableau T(2);
  std::mt19937_64 Rng(1);
  T.x(0);
  T.cx(0, 1);
  EXPECT_TRUE(T.measure(0, Rng));
  EXPECT_TRUE(T.measure(1, Rng));
}

TEST(TableauTest, CzMatchesHCxH) {
  // CZ sandwiched in H on the target equals CX: |10> -> |11>.
  Tableau T(2);
  std::mt19937_64 Rng(1);
  T.x(0);
  T.h(1);
  T.cz(0, 1);
  T.h(1);
  EXPECT_TRUE(T.measure(1, Rng));
}

TEST(TableauTest, CyOnPlusControl) {
  // CY with control |1>: Y flips the target.
  Tableau T(2);
  std::mt19937_64 Rng(1);
  T.x(0);
  T.cy(0, 1);
  EXPECT_TRUE(T.measure(1, Rng));
}

TEST(TableauTest, SwapMovesExcitation) {
  Tableau T(2);
  std::mt19937_64 Rng(1);
  T.x(0);
  T.swapQubits(0, 1);
  EXPECT_FALSE(T.measure(0, Rng));
  EXPECT_TRUE(T.measure(1, Rng));
}

//===----------------------------------------------------------------------===//
// Randomness, collapse, reset
//===----------------------------------------------------------------------===//

TEST(TableauTest, PlusStateIsRandomThenCollapses) {
  unsigned Ones = 0;
  for (unsigned S = 0; S < 64; ++S) {
    Tableau T(1);
    std::mt19937_64 Rng(S);
    T.h(0);
    bool Outcome;
    EXPECT_FALSE(T.isDeterministic(0, Outcome));
    bool First = T.measure(0, Rng);
    Ones += First;
    // Collapsed: re-measuring is deterministic and repeats the outcome.
    ASSERT_TRUE(T.isDeterministic(0, Outcome));
    EXPECT_EQ(Outcome, First);
    EXPECT_EQ(T.measure(0, Rng), First);
  }
  // Both outcomes occur across seeds.
  EXPECT_GT(Ones, 8u);
  EXPECT_LT(Ones, 56u);
}

TEST(TableauTest, ResetAfterSuperposition) {
  for (unsigned S = 0; S < 16; ++S) {
    Tableau T(2);
    std::mt19937_64 Rng(S);
    T.h(0);
    T.cx(0, 1);
    T.reset(0, Rng);
    bool Outcome;
    ASSERT_TRUE(T.isDeterministic(0, Outcome));
    EXPECT_FALSE(Outcome);
  }
}

//===----------------------------------------------------------------------===//
// GHZ correlations
//===----------------------------------------------------------------------===//

TEST(TableauTest, GhzBitsAgreeAndBothBranchesAppear) {
  unsigned AllOnes = 0;
  for (unsigned S = 0; S < 64; ++S) {
    Tableau T(5);
    std::mt19937_64 Rng(S * 7 + 3);
    T.h(0);
    for (unsigned Q = 1; Q < 5; ++Q)
      T.cx(Q - 1, Q);
    bool First = T.measure(0, Rng);
    for (unsigned Q = 1; Q < 5; ++Q)
      EXPECT_EQ(T.measure(Q, Rng), First);
    AllOnes += First;
  }
  EXPECT_GT(AllOnes, 8u);
  EXPECT_LT(AllOnes, 56u);
}

TEST(TableauTest, GhzFiveHundredQubits) {
  // The acceptance bar for the subsystem: a 500-qubit GHZ prepare-and-
  // measure is far beyond dense amplitudes (2^500) but easy in the tableau.
  const unsigned N = 500;
  Tableau T(N);
  std::mt19937_64 Rng(11);
  T.h(0);
  for (unsigned Q = 1; Q < N; ++Q)
    T.cx(Q - 1, Q);
  bool First = T.measure(0, Rng);
  for (unsigned Q = 1; Q < N; ++Q)
    ASSERT_EQ(T.measure(Q, Rng), First) << "qubit " << Q;
}

//===----------------------------------------------------------------------===//
// Backend-level execution: feed-forward and distributions
//===----------------------------------------------------------------------===//

/// Builds the standard teleportation circuit for a secret state prepared by
/// \p PrepGates on qubit 0, with X/Z corrections fed forward from the Bell
/// measurement, then undoes the preparation on Bob's qubit (2) and measures
/// it — bit 2 must always read 0.
Circuit teleportationCircuit(const std::vector<GateKind> &PrepGates) {
  Circuit C;
  C.NumQubits = 3;
  C.NumBits = 3;
  for (GateKind G : PrepGates)
    C.append(CircuitInstr::gate(G, {}, {0}));
  // Bell pair on (1, 2).
  C.append(CircuitInstr::gate(GateKind::H, {}, {1}));
  C.append(CircuitInstr::gate(GateKind::X, {1}, {2}));
  // Bell measurement of (0, 1).
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::measure(0, 0));
  C.append(CircuitInstr::measure(1, 1));
  // Feed-forward corrections.
  CircuitInstr FixX = CircuitInstr::gate(GateKind::X, {}, {2});
  FixX.CondBit = 1;
  C.append(FixX);
  CircuitInstr FixZ = CircuitInstr::gate(GateKind::Z, {}, {2});
  FixZ.CondBit = 0;
  C.append(FixZ);
  // Undo the preparation on Bob's qubit; |0> certifies the teleport.
  for (auto It = PrepGates.rbegin(); It != PrepGates.rend(); ++It) {
    GateKind Adj = *It == GateKind::S   ? GateKind::Sdg
                   : *It == GateKind::Sdg ? GateKind::S
                                          : *It;
    C.append(CircuitInstr::gate(Adj, {}, {2}));
  }
  C.append(CircuitInstr::measure(2, 2));
  return C;
}

TEST(StabilizerBackendTest, TeleportationFeedForward) {
  StabilizerBackend Backend;
  const std::vector<std::vector<GateKind>> Preps = {
      {},                           // |0>
      {GateKind::X},                // |1>
      {GateKind::H},                // |+>
      {GateKind::H, GateKind::S},   // |+i>
      {GateKind::X, GateKind::H},   // |->
  };
  for (const std::vector<GateKind> &Prep : Preps) {
    Circuit C = teleportationCircuit(Prep);
    ASSERT_TRUE(Backend.supports(C, analyzeCircuit(C)));
    for (uint64_t Seed = 0; Seed < 32; ++Seed)
      EXPECT_FALSE(Backend.run(C, Seed).Bits[2]) << "seed " << Seed;
  }
}

TEST(StabilizerBackendTest, GhzDistributionIsTwoPoint) {
  StabilizerBackend Backend;
  Circuit C;
  C.NumQubits = 3;
  C.NumBits = 3;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {1}));
  C.append(CircuitInstr::gate(GateKind::X, {1}, {2}));
  for (unsigned Q = 0; Q < 3; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  std::map<std::string, unsigned> Counts = Backend.runShots(C, 1000, 42);
  ASSERT_EQ(Counts.size(), 2u);
  EXPECT_NEAR(Counts["000"] / 1000.0, 0.5, 0.08);
  EXPECT_NEAR(Counts["111"] / 1000.0, 0.5, 0.08);
}

TEST(StabilizerBackendTest, RejectsNonClifford) {
  StabilizerBackend Backend;
  Circuit C;
  C.NumQubits = 1;
  C.append(CircuitInstr::gate(GateKind::T, {}, {0}));
  EXPECT_FALSE(Backend.supports(C, analyzeCircuit(C)));
}

TEST(StabilizerBackendTest, QuarterTurnPhasesAreClifford) {
  StabilizerBackend Backend;
  Circuit C;
  C.NumQubits = 2;
  C.NumBits = 2;
  // P(pi/2) == S and CP(pi) == CZ: H S S H == X on qubit 0.
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::P, {}, {0}, M_PI / 2));
  C.append(CircuitInstr::gate(GateKind::P, {}, {0}, M_PI / 2));
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  // CZ via controlled P(pi), sandwiched in H on target: CX. |1>|0> -> |11>.
  C.append(CircuitInstr::gate(GateKind::H, {}, {1}));
  C.append(CircuitInstr::gate(GateKind::P, {0}, {1}, M_PI));
  C.append(CircuitInstr::gate(GateKind::H, {}, {1}));
  C.append(CircuitInstr::measure(0, 0));
  C.append(CircuitInstr::measure(1, 1));
  ASSERT_TRUE(Backend.supports(C, analyzeCircuit(C)));
  ShotResult R = Backend.run(C, 5);
  EXPECT_TRUE(R.Bits[0]);
  EXPECT_TRUE(R.Bits[1]);
}

} // namespace
