//===- DiagnosticsTest.cpp - Error reporting sweeps ------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized sweeps over malformed programs: every case must produce a
/// diagnostic (never a crash or a silent mis-compile), and the message must
/// mention the right concept. This exercises the paper's well-typedness
/// rules (§2.2, §4) from the failure side.
///
//===----------------------------------------------------------------------===//

#include "ast/Expand.h"
#include "ast/Parser.h"
#include "ast/TypeChecker.h"
#include "compiler/CompileSession.h"

#include <gtest/gtest.h>

using namespace asdf;

namespace {

struct BadCase {
  const char *Name;
  const char *Source;
  const char *ExpectInMessage;
};

const BadCase ParseCases[] = {
    {"unterminated_literal", "qpu k() -> bit { return 'p | std.measure }\n",
     "unterminated"},
    {"missing_paren", "qpu k( { }\n", "expected"},
    {"bad_char", "qpu k() -> bit { return ` }\n", "unexpected character"},
    {"bare_dollar", "qpu k() -> bit { return $ }\n", "parameter name"},
    {"lone_gt", "qpu k() -> bit { return a > b }\n", "expected '>>'"},
    {"missing_body", "qpu k() -> bit\n", "'{'"},
    {"bad_attribute", "qpu k(q: qubit) -> qubit { return q | std.frobnicate "
                      "}\n",
     "unknown attribute"},
    {"empty_literal", "qpu k(q: qubit) -> qubit { return q | '' >> std }\n",
     "empty qubit literal"},
    {"bad_type", "qpu k(q: tensor) -> bit { return q }\n", "unknown type"},
};

class ParseErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParseErrors, Reported) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(GetParam().Source, Diags);
  EXPECT_EQ(P, nullptr) << GetParam().Name;
  EXPECT_TRUE(Diags.hadError());
  EXPECT_NE(Diags.str().find(GetParam().ExpectInMessage), std::string::npos)
      << "got: " << Diags.str();
}

INSTANTIATE_TEST_SUITE_P(
    Diagnostics, ParseErrors, ::testing::ValuesIn(ParseCases),
    [](const ::testing::TestParamInfo<BadCase> &Info) {
      return Info.param.Name;
    });

const BadCase TypeCases[] = {
    {"qubit_reuse", "qpu k(q: qubit) -> qubit[2] { return q + q }\n",
     "more than once"},
    {"qubit_leak",
     "qpu k(q: qubit) -> bit { a = 'p' | std.measure\n return a }\n",
     "never used"},
    {"span_mismatch",
     "qpu k(q: qubit) -> qubit { return q | {'0'} >> {'1'} }\n", "span"},
    {"dim_mismatch",
     "qpu k(q: qubit[2]) -> qubit[2] { return q | std[2] >> std[3] }\n",
     "dimensions differ"},
    {"dup_eigenbits",
     "qpu k(q: qubit) -> qubit { return q | {'0','0'} >> {'0','1'} }\n",
     "orthogonal"},
    {"mixed_prim_literal",
     "qpu k(q: qubit) -> qubit { return q | {'0','m'} >> {'0','1'} }\n",
     "primitive"},
    {"adjoint_of_measure",
     "qpu k(q: qubit) -> bit { return q | ~(std.measure) }\n", "reversible"},
    {"pipe_dim", "qpu k(q: qubit[3]) -> qubit[3] { return q | std.flip }\n",
     "cannot pipe"},
    {"partial_measure",
     "qpu k(q: qubit) -> bit { return q | {'0'}.measure }\n",
     "fully spanning"},
    {"basis_as_value", "qpu k() -> bit { return std | std.measure }\n",
     "not a first-class value"},
    {"unknown_var", "qpu k() -> bit { return zap | std.measure }\n",
     "unknown variable"},
    {"return_mismatch", "qpu k(q: qubit) -> bit[2] "
                        "{ return q | std.measure }\n",
     "mismatch"},
    {"cond_not_bit",
     "qpu k(q: qubit[2]) -> qubit[2] "
     "{ a, b = q | id[2]\n return (a | std.flip if b else id) + '0' | "
     "id[2] }\n",
     "bit[1]"},
    {"flip_of_fourier",
     "qpu k(q: qubit[2]) -> qubit[2] { return q | fourier[2].flip }\n",
     ".flip"},
    {"sign_needs_single_bit",
     "classical g(x: bit[2]) -> bit[2] { return x }\n"
     "qpu k(q: qubit[2]) -> qubit[2] { return q | g.sign }\n",
     "bit[1]"},
    {"classical_width",
     "classical g(x: bit[2], y: bit[3]) -> bit[2] { return x & y }\n",
     "equal width"},
    {"missing_return", "qpu k(q: qubit) -> qubit { a = q | id }\n",
     "return"},
    {"stmt_after_return",
     "qpu k(q: qubit) -> qubit { return q\n a = 'p' | std.measure }\n",
     "after return"},
};

class TypeErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(TypeErrors, Reported) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(GetParam().Source, Diags);
  ASSERT_TRUE(P) << Diags.str();
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E) << Diags.str();
  EXPECT_FALSE(typeCheckProgram(*E, Diags)) << GetParam().Name;
  EXPECT_NE(Diags.str().find(GetParam().ExpectInMessage), std::string::npos)
      << "got: " << Diags.str();
}

INSTANTIATE_TEST_SUITE_P(
    Diagnostics, TypeErrors, ::testing::ValuesIn(TypeCases),
    [](const ::testing::TestParamInfo<BadCase> &Info) {
      return Info.param.Name;
    });

TEST(DiagnosticsTest, UnboundDimensionVariableMentionsInference) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(
      "qpu k[N](q: qubit[N]) -> qubit[N] { return q | id[N] }\n", Diags);
  ASSERT_TRUE(P);
  EXPECT_EQ(expandProgram(*P, {}, Diags), nullptr);
  EXPECT_NE(Diags.str().find("dimension variable"), std::string::npos);
}

TEST(DiagnosticsTest, ConflictingInferenceReported) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(
      "classical g(a: bit[N], b: bit[N]) -> bit { return (a & "
      "b).xor_reduce() }\n",
      Diags);
  ASSERT_TRUE(P);
  ProgramBindings B;
  B.Captures["g"]["a"] = CaptureValue::bitsFromString("101");
  B.Captures["g"]["b"] = CaptureValue::bitsFromString("10");
  EXPECT_EQ(expandProgram(*P, B, Diags), nullptr);
  EXPECT_NE(Diags.str().find("conflicting"), std::string::npos);
}

TEST(DiagnosticsTest, CompilerSurfacesPhaseInMessage) {
  CompileSession S("qpu k( {", {});
  EXPECT_EQ(S.flatCircuit(), nullptr);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.errorMessage().find("parse"), std::string::npos);
}

TEST(DiagnosticsTest, PassFailureNamesStagePassAndEntry) {
  // Flattening a wrong entry fails mid-pipeline; the session error names
  // the stage:pass and the entry kernel, not just a generic message.
  CompileSession S("qpu kernel(q: qubit) -> qubit { return q | std.flip }",
                   {}, [] {
                     SessionOptions O;
                     O.Entry = "nonexistent";
                     return O;
                   }());
  EXPECT_EQ(S.flatCircuit(), nullptr);
  EXPECT_NE(S.errorMessage().find("nonexistent"), std::string::npos);
  // Artifacts materialized before the failing stage stay inspectable.
  EXPECT_NE(S.qcircIR(), nullptr);
  EXPECT_NE(S.qwertyIR(), nullptr);
}

TEST(DiagnosticsTest, VerifierReportsKernelSourceLocation) {
  // The entry kernel starts on line 2 of this source; a verifier failure
  // inside it must carry that location through the pass pipeline.
  const char *Source = "\nqpu kernel(q: qubit) -> qubit { return q | id }";
  CompileSession S(Source, {});
  Module *QW = S.qwertyIR();
  ASSERT_NE(QW, nullptr) << S.errorMessage();
  ASSERT_FALSE(QW->Functions.empty());
  EXPECT_EQ(QW->Functions.front()->Loc.Line, 2u);
}

TEST(DiagnosticsTest, LocationsAreOneBased) {
  DiagnosticEngine Diags;
  parseProgram("\nqpu k( {", Diags);
  ASSERT_TRUE(Diags.hadError());
  // Error is on line 2.
  EXPECT_NE(Diags.str().find("2:"), std::string::npos);
}

} // namespace
