//===- EmitterGoldenTest.cpp - Golden-file tests for the emitters ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks down QasmEmitter/QirEmitter output for the five examples/
/// programs (Bernstein-Vazirani, Deutsch-Jozsa, Grover, period finding,
/// teleportation) against checked-in golden text under tests/golden/.
/// Any intentional change to emission — gate spelling, header boilerplate,
/// register naming, instruction order — shows up as a readable diff here
/// instead of silently altering every downstream artifact.
///
/// Regeneration workflow: README "Golden files". Golden files live at
/// ASDF_GOLDEN_DIR, baked in by CMake as <source>/tests/golden.
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "codegen/QasmEmitter.h"
#include "codegen/QirEmitter.h"
#include "compiler/CompileSession.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace asdf;

namespace {

bool regenMode() { return std::getenv("ASDF_REGEN_GOLDEN") != nullptr; }

std::string goldenPath(const std::string &Name) {
  return std::string(ASDF_GOLDEN_DIR) + "/" + Name;
}

/// Compares \p Got against golden file \p Name, or rewrites it in regen
/// mode. Reports the first differing line to keep failures readable.
void checkGolden(const std::string &Name, const std::string &Got) {
  std::string Path = goldenPath(Name);
  if (regenMode()) {
    std::ofstream Out(Path, std::ios::trunc);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Got;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " — run ASDF_REGEN_GOLDEN=1 ./EmitterGoldenTest";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Want = Buf.str();
  if (Want == Got)
    return;
  std::istringstream WantS(Want), GotS(Got);
  std::string WantLine, GotLine;
  unsigned LineNo = 1;
  while (std::getline(WantS, WantLine) && std::getline(GotS, GotLine) &&
         WantLine == GotLine)
    ++LineNo;
  FAIL() << Name << " diverges at line " << LineNo << "\n  golden: "
         << WantLine << "\n  got:    " << GotLine
         << "\n(regenerate with ASDF_REGEN_GOLDEN=1 after reviewing)";
}

struct Compiled {
  Circuit FlatCircuit;
  std::unique_ptr<Module> QCircIR;
};

Compiled compileOrDie(const std::string &Source,
                      const ProgramBindings &Bindings,
                      const std::string &Entry = "kernel") {
  SessionOptions Opts;
  Opts.Entry = Entry;
  CompileSession S(Source, Bindings, Opts);
  EXPECT_NE(S.flatCircuit(), nullptr) << S.errorMessage();
  CompileSession::Artifacts A = S.takeArtifacts();
  Compiled C;
  if (A.Flat)
    C.FlatCircuit = std::move(*A.Flat);
  C.QCircIR = std::move(A.QCircIR);
  return C;
}

//===----------------------------------------------------------------------===//
// The five examples/ programs, pinned at fixed sizes
//===----------------------------------------------------------------------===//

Compiled bernsteinVazirani() {
  const char *Source = R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}

qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign \
        | pm[N] >> std[N] \
        | std[N].measure
}
)";
  ProgramBindings B;
  B.Captures["f"]["secret"] = CaptureValue::bitsFromString("1101");
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  return compileOrDie(Source, B);
}

Compiled deutschJozsa() {
  const char *Source = R"(
classical f[N](x: bit[N]) -> bit {
    return x.xor_reduce()
}

qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";
  ProgramBindings B;
  B.DimVars["N"] = 4;
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  return compileOrDie(Source, B);
}

Compiled grover() {
  unsigned N = 3, Iters = groverIterations(3);
  std::ostringstream OS;
  OS << R"(
classical oracle[N](x: bit[N]) -> bit {
    return x.and_reduce()
}
qpu kernel[N](oracle: cfunc[N, 1]) -> bit[N] {
    return 'p'[N])";
  for (unsigned I = 0; I < Iters; ++I)
    OS << " \\\n        | oracle.sign | {'p'[N]} >> {-'p'[N]}";
  OS << " \\\n        | std[N].measure\n}\n";
  ProgramBindings B;
  B.DimVars["N"] = N;
  B.Captures["kernel"]["oracle"] = CaptureValue::classicalFunc("oracle");
  return compileOrDie(OS.str(), B);
}

Compiled periodFinding() {
  const char *Source = R"(
classical f[N](mask: bit[N], x: bit[N]) -> bit[N] {
    return x & mask
}
qpu kernel[N](f: cfunc[N, N]) -> bit[N] {
    q = 'p'[N] + '0'[N] | f.xor
    phase, out = q | fourier[N].measure + std[N].measure
    return phase
}
)";
  ProgramBindings B;
  B.Captures["f"]["mask"] = CaptureValue::bitsFromString("0111");
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  return compileOrDie(Source, B);
}

Compiled teleportation() {
  const char *Source = R"(
qpu teleport(secret: qubit) -> qubit {
    alice, bob = 'p0' | '1' & std.flip
    m_pm, m_std = secret + alice | '1' & std.flip | (pm + std).measure
    secret_teleported = bob | (std.flip if m_std else id) \
        | (pm.flip if m_pm else id)
    return secret_teleported
}
)";
  return compileOrDie(Source, {}, "teleport");
}

//===----------------------------------------------------------------------===//
// OpenQASM 3 goldens
//===----------------------------------------------------------------------===//

TEST(EmitterGoldenTest, QasmBernsteinVazirani) {
  checkGolden("bv.qasm", emitOpenQasm3(bernsteinVazirani().FlatCircuit));
}

TEST(EmitterGoldenTest, QasmDeutschJozsa) {
  checkGolden("deutsch_jozsa.qasm",
              emitOpenQasm3(deutschJozsa().FlatCircuit));
}

TEST(EmitterGoldenTest, QasmGrover) {
  checkGolden("grover.qasm", emitOpenQasm3(grover().FlatCircuit));
}

TEST(EmitterGoldenTest, QasmPeriodFinding) {
  checkGolden("period_finding.qasm",
              emitOpenQasm3(periodFinding().FlatCircuit));
}

TEST(EmitterGoldenTest, QasmTeleportation) {
  checkGolden("teleportation.qasm",
              emitOpenQasm3(teleportation().FlatCircuit));
}

//===----------------------------------------------------------------------===//
// QIR goldens
//===----------------------------------------------------------------------===//

TEST(EmitterGoldenTest, QirBaseBernsteinVazirani) {
  std::optional<std::string> Qir =
      emitQirBaseProfile(bernsteinVazirani().FlatCircuit);
  ASSERT_TRUE(Qir.has_value());
  checkGolden("bv.ll", *Qir);
}

TEST(EmitterGoldenTest, QirBaseDeutschJozsa) {
  std::optional<std::string> Qir =
      emitQirBaseProfile(deutschJozsa().FlatCircuit);
  ASSERT_TRUE(Qir.has_value());
  checkGolden("deutsch_jozsa.ll", *Qir);
}

TEST(EmitterGoldenTest, QirUnrestrictedGrover) {
  Compiled C = grover();
  // The multi-controlled oracle/diffuser gates are outside the Base
  // Profile (it requires decomposed controls); pin that, then golden the
  // Unrestricted Profile emission.
  EXPECT_FALSE(emitQirBaseProfile(C.FlatCircuit).has_value());
  ASSERT_NE(C.QCircIR, nullptr);
  checkGolden("grover.ll", emitQirUnrestricted(*C.QCircIR));
}

TEST(EmitterGoldenTest, QirUnrestrictedPeriodFinding) {
  Compiled C = periodFinding();
  ASSERT_NE(C.QCircIR, nullptr);
  checkGolden("period_finding.ll", emitQirUnrestricted(*C.QCircIR));
}

TEST(EmitterGoldenTest, QirTeleportation) {
  Compiled C = teleportation();
  // Teleportation feed-forward is outside the Base Profile by design.
  EXPECT_FALSE(emitQirBaseProfile(C.FlatCircuit).has_value());
  ASSERT_NE(C.QCircIR, nullptr);
  QirCallableStats Stats;
  checkGolden("teleportation.ll", emitQirUnrestricted(*C.QCircIR, &Stats));
}

} // namespace
