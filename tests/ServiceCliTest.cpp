//===- ServiceCliTest.cpp - asdfd/asdf-cli end-to-end and exit codes ------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the real binaries:
///
///   - exit-code conventions across the whole toolchain: --help and
///     --version exit 0, unknown flags/commands and usage errors exit 2,
///     runtime failures (no daemon, unreadable file) exit 1 — the same
///     contract for asdfc, asdfd, and asdf-cli;
///   - end-to-end over a unix socket: spawn an asdfd, compile and run via
///     asdf-cli, and require stdout bit-identical to asdfc on the same
///     request; repeated compiles hit the cache (visible in stats);
///   - graceful shutdown from both directions: the `shutdown` op and
///     SIGTERM each drain, remove the socket file, and exit 0;
///   - stale-socket recovery and the one-daemon-per-socket rule.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#if defined(ASDF_ASDFC_PATH) && defined(ASDF_ASDFD_PATH) &&                   \
    defined(ASDF_ASDF_CLI_PATH)

namespace json = asdf::json;

namespace {

const char *CoinSource = "qpu kernel() -> bit {\n"
                         "    return 'p' | std.measure\n"
                         "}\n";

const char *BVSource =
    "classical f[N](secret: bit[N], x: bit[N]) -> bit {\n"
    "    return (secret & x).xor_reduce()\n"
    "}\n"
    "qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {\n"
    "    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure\n"
    "}\n";

const char *RotSource = "qpu kernel() -> bit {\n"
                        "    return 'p' | std.rotate($theta) | std.measure\n"
                        "}\n";

/// Runs a shell command, captures combined stdout+stderr, returns the exit
/// code.
int runCommand(const std::string &Cmd, std::string &Output) {
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  Output.clear();
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Output.append(Buf, N);
  int Status = pclose(P);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

std::string writeTemp(const std::string &Name, const std::string &Text) {
  std::string Path = ::testing::TempDir() + Name;
  std::ofstream Out(Path, std::ios::trunc);
  Out << Text;
  return Path;
}

bool socketAnswers(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  bool Ok =
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0;
  ::close(Fd);
  return Ok;
}

/// A daemon child process, SIGKILLed on teardown if a test failed early.
class Daemon {
public:
  /// Spawns asdfd on \p SocketPath (plus \p ExtraArgs, e.g. --trace) and
  /// waits until it answers. \p Env entries ("NAME=VALUE") are set in the
  /// child only — how fault-injection tests arm a *spawned* daemon via
  /// $ASDF_FAULTS without polluting the test process.
  bool start(const std::string &SocketPath,
             const std::vector<std::string> &ExtraArgs = {},
             const std::vector<std::string> &Env = {}) {
    Socket = SocketPath;
    Pid = fork();
    if (Pid < 0)
      return false;
    if (Pid == 0) {
      int Null = ::open("/dev/null", O_WRONLY);
      if (Null >= 0) {
        ::dup2(Null, 2);
        ::close(Null);
      }
      for (const std::string &KV : Env) {
        size_t Eq = KV.find('=');
        ::setenv(KV.substr(0, Eq).c_str(), KV.substr(Eq + 1).c_str(), 1);
      }
      std::vector<const char *> Argv = {"asdfd", "--socket",
                                        SocketPath.c_str(), "--workers",
                                        "2"};
      for (const std::string &A : ExtraArgs)
        Argv.push_back(A.c_str());
      Argv.push_back(nullptr);
      ::execv(ASDF_ASDFD_PATH,
              const_cast<char *const *>(Argv.data()));
      _exit(127);
    }
    // The daemon binds before serving; poll until the socket accepts.
    for (int I = 0; I < 200; ++I) {
      if (socketAnswers(Socket))
        return true;
      int Status = 0;
      if (::waitpid(Pid, &Status, WNOHANG) == Pid) {
        Pid = -1;
        return false; // Died during startup.
      }
      ::usleep(50 * 1000);
    }
    return false;
  }

  /// Blocks until the daemon exits; returns its exit code (-1 on signal).
  int wait() {
    if (Pid < 0)
      return -1;
    int Status = 0;
    if (::waitpid(Pid, &Status, 0) != Pid)
      return -1;
    Pid = -1;
    return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  }

  void signal(int Sig) {
    if (Pid > 0)
      ::kill(Pid, Sig);
  }

  pid_t pid() const { return Pid; }

  ~Daemon() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
    }
  }

private:
  pid_t Pid = -1;
  std::string Socket;
};

std::string cli(const std::string &SocketPath) {
  return std::string(ASDF_ASDF_CLI_PATH) + " --socket " + SocketPath + " ";
}

//===----------------------------------------------------------------------===//
// Exit-code conventions (no daemon needed)
//===----------------------------------------------------------------------===//

TEST(ServiceCliExitCodes, HelpExitsZeroEverywhere) {
  std::string Out;
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFD_PATH) + " --help", Out), 0);
  EXPECT_NE(Out.find("usage: asdfd"), std::string::npos);
  EXPECT_EQ(runCommand(std::string(ASDF_ASDF_CLI_PATH) + " --help", Out), 0);
  EXPECT_NE(Out.find("usage: asdf-cli"), std::string::npos);
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFC_PATH) + " --help", Out), 0);
}

TEST(ServiceCliExitCodes, VersionExitsZeroAndAgreesAcrossTools) {
  // The fingerprint is the cache-key component: all three binaries of one
  // build must print the same one.
  std::string C, D, L;
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFC_PATH) + " --version", C), 0);
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFD_PATH) + " --version", D), 0);
  EXPECT_EQ(runCommand(std::string(ASDF_ASDF_CLI_PATH) + " --version", L),
            0);
  EXPECT_NE(C.find("asdfc "), std::string::npos);
  auto fingerprintLine = [](const std::string &Out) {
    size_t At = Out.find("fingerprint:");
    size_t End = Out.find('\n', At);
    return At == std::string::npos ? std::string() : Out.substr(At, End - At);
  };
  std::string FP = fingerprintLine(C);
  EXPECT_FALSE(FP.empty());
  EXPECT_NE(FP.find("asdf-"), std::string::npos);
  EXPECT_EQ(fingerprintLine(D), FP);
  EXPECT_EQ(fingerprintLine(L), FP);
}

TEST(ServiceCliExitCodes, UnknownFlagsExitTwo) {
  std::string Out;
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFD_PATH) + " --frobnicate", Out),
            2);
  EXPECT_NE(Out.find("unknown option '--frobnicate'"), std::string::npos);
  EXPECT_NE(Out.find("--help"), std::string::npos);
  EXPECT_EQ(
      runCommand(std::string(ASDF_ASDF_CLI_PATH) + " --frobnicate", Out), 2);
  EXPECT_NE(Out.find("unknown option '--frobnicate'"), std::string::npos);
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFC_PATH) + " --frobnicate", Out),
            2);
}

TEST(ServiceCliExitCodes, UsageErrorsExitTwo) {
  std::string Out;
  // asdfd without --socket.
  EXPECT_EQ(runCommand(ASDF_ASDFD_PATH, Out), 2);
  EXPECT_NE(Out.find("--socket"), std::string::npos);
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFD_PATH) + " --socket s "
                                                      "--cache-mb 0",
                       Out),
            2);
  // asdf-cli without a command, with an unknown command, with a missing
  // file argument, with --emit on run.
  EXPECT_EQ(runCommand(ASDF_ASDF_CLI_PATH, Out), 2);
  EXPECT_EQ(
      runCommand(std::string(ASDF_ASDF_CLI_PATH) + " transmogrify", Out), 2);
  EXPECT_NE(Out.find("unknown command"), std::string::npos);
  EXPECT_EQ(runCommand(std::string(ASDF_ASDF_CLI_PATH) + " compile", Out),
            2);
  EXPECT_EQ(runCommand(std::string(ASDF_ASDF_CLI_PATH) +
                           " run x.qw --emit qasm",
                       Out),
            2);
  EXPECT_NE(Out.find("--emit"), std::string::npos);
}

TEST(ServiceCliExitCodes, SweepUsageErrors) {
  std::string Rot = writeTemp("service_cli_rot_usage.qw", RotSource);
  std::string Out;
  // --sweep is a run-mode flag.
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFC_PATH) + " " + Rot +
                           " --emit qasm --sweep '0; 45'",
                       Out),
            2);
  EXPECT_NE(Out.find("--sweep requires --emit run"), std::string::npos)
      << Out;
  // --param and --sweep are mutually exclusive.
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFC_PATH) + " " + Rot +
                           " --emit run --param theta=1 --sweep '0'",
                       Out),
            2);
  // Running a parametric program without binding fails with the names.
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFC_PATH) + " " + Rot +
                           " --emit run --shots 2",
                       Out),
            1);
  EXPECT_NE(Out.find("$theta"), std::string::npos) << Out;
  // asdf-cli: --sweep/--params belong to bind-run, which requires --sweep.
  EXPECT_EQ(runCommand(std::string(ASDF_ASDF_CLI_PATH) + " run " + Rot +
                           " --params theta",
                       Out),
            2);
  EXPECT_EQ(runCommand(std::string(ASDF_ASDF_CLI_PATH) + " bind-run " + Rot,
                       Out),
            2);
  EXPECT_NE(Out.find("--sweep"), std::string::npos) << Out;
}

TEST(ServiceCliExitCodes, RuntimeFailuresExitOne) {
  std::string Out;
  // No daemon at the socket.
  EXPECT_EQ(runCommand(std::string(ASDF_ASDF_CLI_PATH) +
                           " --socket /nonexistent/asdf.sock stats",
                       Out),
            1);
  EXPECT_NE(Out.find("cannot connect"), std::string::npos);
  // Unreadable source file (the command parses fine).
  std::string Sock = ::testing::TempDir() + "never-used.sock";
  EXPECT_EQ(runCommand(cli(Sock) + "compile /nonexistent.qw", Out), 1);
}

//===----------------------------------------------------------------------===//
// End-to-end against a live daemon
//===----------------------------------------------------------------------===//

class ServiceEndToEnd : public ::testing::Test {
protected:
  void SetUp() override {
    Socket = ::testing::TempDir() + "asdfd-e2e-" +
             std::to_string(::getpid()) + ".sock";
    ::unlink(Socket.c_str());
    Coin = writeTemp("service_cli_coin.qw", CoinSource);
    BV = writeTemp("service_cli_bv.qw", BVSource);
    ASSERT_TRUE(D.start(Socket)) << "daemon failed to start";
  }
  void TearDown() override { ::unlink(Socket.c_str()); }

  std::string Socket, Coin, BV;
  Daemon D;
};

TEST_F(ServiceEndToEnd, RunIsBitIdenticalToAsdfc) {
  // Identical request, identical seed: the daemon's stdout must equal
  // asdfc's byte-for-byte. (Subshells drop stderr, where the cache/banner
  // chatter lives.)
  const std::string Args = " --shots 50 --seed 1234567890123456789";
  std::string Direct, Served;
  ASSERT_EQ(runCommand("( " + std::string(ASDF_ASDFC_PATH) + " " + Coin +
                           " --emit run" + Args + " 2>/dev/null )",
                       Direct),
            0);
  ASSERT_EQ(runCommand("( " + cli(Socket) + "run " + Coin + Args +
                           " 2>/dev/null )",
                       Served),
            0);
  EXPECT_EQ(Served, Direct);
  ASSERT_EQ(50, std::count(Direct.begin(), Direct.end(), '\n'));

  // A second submission of the same request: same bits again, now from
  // the cached circuit.
  std::string Again, Err;
  ASSERT_EQ(runCommand("( " + cli(Socket) + "run " + Coin + Args +
                           " 2>/dev/null )",
                       Again),
            0);
  EXPECT_EQ(Again, Direct);
  ASSERT_EQ(runCommand("( " + cli(Socket) + "run " + Coin + Args +
                           " >/dev/null )",
                       Err),
            0);
  EXPECT_NE(Err.find("cache hit"), std::string::npos) << Err;
}

TEST_F(ServiceEndToEnd, RunWithCapturesIsBitIdenticalToAsdfc) {
  const std::string Args = " --capture f.secret=110101 "
                           "--capture kernel.f=@f --shots 5 --seed 7";
  std::string Direct, Served;
  ASSERT_EQ(runCommand("( " + std::string(ASDF_ASDFC_PATH) + " " + BV +
                           " --emit run" + Args + " 2>/dev/null )",
                       Direct),
            0);
  ASSERT_EQ(runCommand("( " + cli(Socket) + "run " + BV + Args +
                           " 2>/dev/null )",
                       Served),
            0);
  EXPECT_EQ(Served, Direct);
  EXPECT_NE(Direct.find("110101"), std::string::npos);
}

TEST_F(ServiceEndToEnd, CompileMatchesAsdfcAndHitsTheCache) {
  std::string Direct, Cold, Warm, Err;
  ASSERT_EQ(runCommand("( " + std::string(ASDF_ASDFC_PATH) + " " + Coin +
                           " --emit qasm 2>/dev/null )",
                       Direct),
            0);
  ASSERT_EQ(runCommand("( " + cli(Socket) + "compile " + Coin +
                           " --emit qasm 2>/dev/null )",
                       Cold),
            0);
  EXPECT_EQ(Cold, Direct);
  ASSERT_EQ(runCommand("( " + cli(Socket) + "compile " + Coin +
                           " --emit qasm 2>/dev/null )",
                       Warm),
            0);
  EXPECT_EQ(Warm, Direct) << "cache hit must serve identical bytes";

  // Stats over the wire report the hit: --json for the raw payload...
  ASSERT_EQ(runCommand("( " + cli(Socket) + "stats --json 2>/dev/null )",
                       Err),
            0);
  EXPECT_NE(Err.find("\"hits\":"), std::string::npos);
  EXPECT_EQ(Err.find("\"hits\":0,"), std::string::npos)
      << "expected a nonzero cache hit count: " << Err;
  // ...and the default human summary derives the hit rate from it.
  std::string Pretty;
  ASSERT_EQ(runCommand("( " + cli(Socket) + "stats 2>/dev/null )", Pretty),
            0);
  EXPECT_NE(Pretty.find("hit rate"), std::string::npos) << Pretty;
  EXPECT_NE(Pretty.find("latency:"), std::string::npos) << Pretty;
  EXPECT_NE(Pretty.find("compile"), std::string::npos) << Pretty;
}

TEST_F(ServiceEndToEnd, MetricsOpServesPrometheusText) {
  std::string Out;
  ASSERT_EQ(runCommand("( " + cli(Socket) + "compile " + Coin +
                           " --emit qasm >/dev/null )",
                       Out),
            0);
  ASSERT_EQ(runCommand("( " + cli(Socket) + "metrics 2>/dev/null )", Out),
            0);
  EXPECT_NE(Out.find("# TYPE asdf_requests_compile_total counter"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("asdf_requests_compile_total 1"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("# TYPE asdf_compile_seconds histogram"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("asdf_compile_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("asdf_cache_misses_total 1"), std::string::npos)
      << Out;
}

TEST_F(ServiceEndToEnd, BindRunSweepIsBitIdenticalToAsdfcSweep) {
  // The daemon's bind-params fast path vs asdfc's in-process sweep: same
  // source, sweep spec, shots, and seed must produce byte-identical
  // stdout (point headers included).
  std::string Rot = writeTemp("service_cli_rot.qw", RotSource);
  const std::string Sweep = " --sweep '0; 45.5; 90' --shots 20 --seed 77";
  std::string Direct, Served;
  ASSERT_EQ(runCommand("( " + std::string(ASDF_ASDFC_PATH) + " " + Rot +
                           " --emit run" + Sweep + " 2>/dev/null )",
                       Direct),
            0);
  ASSERT_EQ(runCommand("( " + cli(Socket) + "bind-run " + Rot +
                           " --params theta" + Sweep + " 2>/dev/null )",
                       Served),
            0);
  EXPECT_EQ(Served, Direct);
  EXPECT_NE(Direct.find("# point 1: theta=45.5"), std::string::npos)
      << Direct;
  // 3 point headers + 3 x 20 shot lines.
  EXPECT_EQ(std::count(Direct.begin(), Direct.end(), '\n'), 63);

  // A repeat is served from the cached parametric circuit.
  std::string Err;
  ASSERT_EQ(runCommand("( " + cli(Socket) + "bind-run " + Rot +
                           " --params theta" + Sweep + " >/dev/null )",
                       Err),
            0);
  EXPECT_NE(Err.find("cache hit"), std::string::npos) << Err;
}


//===----------------------------------------------------------------------===//
// End-to-end tracing: one request, one trace id, every layer
//===----------------------------------------------------------------------===//

TEST(ServiceTrace, TraceIdCorrelatesWireToKernelWorkers) {
  // A daemon started with --trace exports one Chrome trace JSON at
  // shutdown. A single traced bind-run must produce correlated spans for
  // the wire decode, the cache probe, every compiler pass, fusion, and
  // at least two parallel kernel workers — all stamped with the
  // client-chosen trace id.
  std::string Socket = ::testing::TempDir() + "asdfd-trace-" +
                       std::to_string(::getpid()) + ".sock";
  std::string TraceFile = ::testing::TempDir() + "asdfd-trace-" +
                          std::to_string(::getpid()) + ".json";
  ::unlink(Socket.c_str());
  ::unlink(TraceFile.c_str());
  std::string Rot = writeTemp("service_cli_rot_trace.qw", RotSource);

  Daemon D;
  ASSERT_TRUE(D.start(Socket, {"--trace", TraceFile}))
      << "daemon failed to start with --trace";
  std::string Out;
  // --jobs 4 with 64 shots forces the multi-worker simulation path, so
  // distinct sim.worker spans (distinct threads) appear in the trace.
  ASSERT_EQ(runCommand("( " + cli(Socket) + "bind-run " + Rot +
                           " --params theta --sweep '0; 45.5; 90'"
                           " --shots 64 --jobs 4 --seed 7"
                           " --trace-id 42 >/dev/null )",
                       Out),
            0)
      << Out;
  ASSERT_EQ(runCommand(cli(Socket) + "shutdown", Out), 0);
  ASSERT_EQ(D.wait(), 0);

  std::ifstream In(TraceFile);
  ASSERT_TRUE(In.good()) << "daemon did not write " << TraceFile;
  std::stringstream Buf;
  Buf << In.rdbuf();
  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(Buf.str(), Doc, Error)) << Error;
  const json::Value *Events = Doc.get("traceEvents");
  ASSERT_NE(Events, nullptr);

  // Collect the spans carrying the request's trace id, keyed by name,
  // remembering which threads hosted sim.worker spans.
  std::set<std::string> Tagged42;
  std::set<std::string> Cats42;
  std::set<uint64_t> WorkerTids;
  for (const json::Value &E : Events->elements()) {
    const json::Value *Args = E.get("args");
    if (!Args || !Args->get("trace") ||
        Args->get("trace")->asU64() != 42)
      continue;
    std::string Name = E.get("name")->asString();
    Tagged42.insert(Name);
    Cats42.insert(E.get("cat")->asString());
    if (Name == "sim.worker")
      WorkerTids.insert(E.get("tid")->asU64());
  }

  EXPECT_TRUE(Tagged42.count("wire.decode")) << "no traced wire decode";
  EXPECT_TRUE(Tagged42.count("queue.wait")) << "no traced queue wait";
  EXPECT_TRUE(Tagged42.count("request.bind-run")) << "no traced handler";
  EXPECT_TRUE(Tagged42.count("cache.probe")) << "no traced cache probe";
  EXPECT_TRUE(Cats42.count("compile"))
      << "no traced compiler passes rode the request's trace id";
  EXPECT_TRUE(Tagged42.count("fuse")) << "no traced fusion";
  EXPECT_TRUE(Tagged42.count("rebind")) << "no traced rebind";
  EXPECT_GE(WorkerTids.size(), 2u)
      << "expected >= 2 parallel kernel workers in the trace";
  ::unlink(Socket.c_str());
  ::unlink(TraceFile.c_str());
}

TEST_F(ServiceEndToEnd, DaemonErrorsExitOneWithTheKind) {
  std::string Bad = writeTemp("service_cli_bad.qw",
                              "qpu kernel() -> bit { return }");
  std::string Out;
  EXPECT_EQ(runCommand(cli(Socket) + "compile " + Bad, Out), 1);
  EXPECT_NE(Out.find("compile-error"), std::string::npos) << Out;
  EXPECT_EQ(runCommand(cli(Socket) + "run " + Coin + " --backend gpu", Out),
            1);
  EXPECT_NE(Out.find("bad-request"), std::string::npos) << Out;
}

TEST_F(ServiceEndToEnd, SecondDaemonOnTheSameSocketRefusesToStart) {
  std::string Out;
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFD_PATH) + " --socket " + Socket,
                       Out),
            1);
  EXPECT_NE(Out.find("already"), std::string::npos) << Out;
  // The incumbent is unharmed.
  EXPECT_EQ(runCommand(cli(Socket) + "stats", Out), 0);
}

TEST_F(ServiceEndToEnd, ShutdownOpDrainsRemovesSocketAndExitsZero) {
  std::string Out;
  ASSERT_EQ(runCommand(cli(Socket) + "shutdown", Out), 0);
  EXPECT_EQ(D.wait(), 0) << "clean drain must exit 0";
  struct stat St;
  EXPECT_NE(::stat(Socket.c_str(), &St), 0) << "socket file must be removed";
}

TEST_F(ServiceEndToEnd, SigtermDrainsRemovesSocketAndExitsZero) {
  D.signal(SIGTERM);
  EXPECT_EQ(D.wait(), 0) << "SIGTERM must drain gracefully";
  struct stat St;
  EXPECT_NE(::stat(Socket.c_str(), &St), 0) << "socket file must be removed";
}

TEST(ServiceStaleSocket, StaleFileIsReplacedOnStartup) {
  // A socket file with no daemon behind it (e.g. after a crash) must not
  // block the next start.
  std::string Socket = ::testing::TempDir() + "asdfd-stale-" +
                       std::to_string(::getpid()) + ".sock";
  ::unlink(Socket.c_str());
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Socket.c_str(), sizeof(Addr.sun_path) - 1);
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  ::close(Fd); // Leaves the file behind, nobody listening.

  Daemon D;
  ASSERT_TRUE(D.start(Socket)) << "stale socket file blocked startup";
  std::string Out;
  EXPECT_EQ(runCommand(std::string(ASDF_ASDF_CLI_PATH) + " --socket " +
                           Socket + " shutdown",
                       Out),
            0);
  EXPECT_EQ(D.wait(), 0);
  ::unlink(Socket.c_str());
}

TEST(ServiceStaleSocket, SigkilledDaemonsSocketIsReclaimed) {
  // kill -9 gives the daemon no chance to unlink its socket file. The
  // replacement must detect that nobody is listening, reclaim the path,
  // and serve — the operator just restarts, no manual rm.
  std::string Socket = ::testing::TempDir() + "asdfd-kill9-" +
                       std::to_string(::getpid()) + ".sock";
  ::unlink(Socket.c_str());
  {
    Daemon First;
    ASSERT_TRUE(First.start(Socket));
    First.signal(SIGKILL);
    First.wait();
  }
  struct stat St;
  ASSERT_EQ(::stat(Socket.c_str(), &St), 0)
      << "precondition: SIGKILL must leave the socket file behind";

  Daemon Second;
  ASSERT_TRUE(Second.start(Socket))
      << "a SIGKILLed daemon's socket file blocked the restart";
  std::string Out;
  EXPECT_EQ(runCommand(cli(Socket) + "stats", Out), 0) << Out;
  EXPECT_EQ(runCommand(cli(Socket) + "shutdown", Out), 0);
  EXPECT_EQ(Second.wait(), 0);
  ::unlink(Socket.c_str());
}

//===----------------------------------------------------------------------===//
// Crash-restart durability: the disk cache tier across kill -9
//===----------------------------------------------------------------------===//

TEST(ServiceDiskCache, CompilesSurviveKillMinusNine) {
  std::string Tag = std::to_string(::getpid());
  std::string Socket = ::testing::TempDir() + "asdfd-disk-" + Tag + ".sock";
  std::string Dir = ::testing::TempDir() + "asdfd-disk-" + Tag + ".cache";
  ::unlink(Socket.c_str());
  ASSERT_EQ(::system(("rm -rf " + Dir).c_str()), 0);
  std::string Coin = writeTemp("service_cli_disk_coin.qw", CoinSource);
  const std::string Args = " --shots 40 --seed 987654321";

  std::string Cold, ColdQasm;
  {
    Daemon D;
    ASSERT_TRUE(D.start(Socket, {"--disk-cache", Dir}));
    ASSERT_EQ(runCommand("( " + cli(Socket) + "run " + Coin + Args +
                             " 2>/dev/null )",
                         Cold),
              0);
    ASSERT_EQ(runCommand("( " + cli(Socket) + "compile " + Coin +
                             " --emit qasm 2>/dev/null )",
                         ColdQasm),
              0);
    // kill -9: no drain, no unlink, nothing flushed that wasn't already
    // durable. Exactly the crash the atomic-rename discipline targets.
    D.signal(SIGKILL);
    D.wait();
  }

  Daemon Reborn;
  ASSERT_TRUE(Reborn.start(Socket, {"--disk-cache", Dir}))
      << "restart over the survived cache directory failed";
  std::string Warm, WarmQasm, Stats;
  ASSERT_EQ(runCommand("( " + cli(Socket) + "run " + Coin + Args +
                           " 2>/dev/null )",
                       Warm),
            0);
  EXPECT_EQ(Warm, Cold)
      << "disk-served artifacts must replay bit-identically after kill -9";
  ASSERT_EQ(runCommand("( " + cli(Socket) + "compile " + Coin +
                           " --emit qasm 2>/dev/null )",
                       WarmQasm),
            0);
  EXPECT_EQ(WarmQasm, ColdQasm);

  // The restart served from disk, visibly: raw counters and the pretty
  // summary's disk line both say so.
  ASSERT_EQ(runCommand("( " + cli(Socket) + "stats --json 2>/dev/null )",
                       Stats),
            0);
  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(Stats, Doc, Error)) << Error << "\n" << Stats;
  const json::Value *Disk = Doc.get("disk");
  ASSERT_NE(Disk, nullptr) << Stats;
  EXPECT_GE(Disk->get("hits")->asU64(), 2u)
      << "both artifacts must be served from disk after the restart";
  EXPECT_GE(Disk->get("warmed")->asU64(), 2u) << Stats;
  std::string Pretty;
  ASSERT_EQ(runCommand("( " + cli(Socket) + "stats 2>/dev/null )", Pretty),
            0);
  EXPECT_NE(Pretty.find("disk:"), std::string::npos) << Pretty;

  ASSERT_EQ(runCommand(cli(Socket) + "shutdown", Stats), 0);
  EXPECT_EQ(Reborn.wait(), 0);
  ::unlink(Socket.c_str());
}

TEST(ServiceDiskCache, CorruptEntryIsQuarantinedNotFatal) {
  std::string Tag = std::to_string(::getpid());
  std::string Socket = ::testing::TempDir() + "asdfd-quar-" + Tag + ".sock";
  std::string Dir = ::testing::TempDir() + "asdfd-quar-" + Tag + ".cache";
  ::unlink(Socket.c_str());
  ASSERT_EQ(::system(("rm -rf " + Dir).c_str()), 0);
  std::string Coin = writeTemp("service_cli_quar_coin.qw", CoinSource);

  {
    Daemon D;
    ASSERT_TRUE(D.start(Socket, {"--disk-cache", Dir}));
    std::string Out;
    ASSERT_EQ(runCommand(cli(Socket) + "compile " + Coin +
                             " --emit qasm >/dev/null",
                         Out),
              0);
    D.signal(SIGKILL);
    D.wait();
  }
  // Rot every stored entry down to a stump.
  std::string Out;
  ASSERT_EQ(::system(("for f in " + Dir +
                      "/objects/*.art; do : > $f; done")
                         .c_str()),
            0);

  Daemon Reborn;
  ASSERT_TRUE(Reborn.start(Socket, {"--disk-cache", Dir}))
      << "corrupt cache entries must never prevent startup";
  // The daemon still serves (recompiles); the entries moved to
  // quarantine/ for postmortems.
  ASSERT_EQ(runCommand("( " + cli(Socket) + "compile " + Coin +
                           " --emit qasm 2>/dev/null )",
                       Out),
            0);
  EXPECT_NE(Out.find("OPENQASM"), std::string::npos) << Out;
  ASSERT_EQ(runCommand("ls " + Dir + "/quarantine", Out), 0);
  EXPECT_NE(Out.find(".art.corrupt"), std::string::npos)
      << "expected quarantined entries, got: " << Out;
  ASSERT_EQ(runCommand(cli(Socket) + "shutdown", Out), 0);
  EXPECT_EQ(Reborn.wait(), 0);
  ::unlink(Socket.c_str());
}

//===----------------------------------------------------------------------===//
// Client retry across a daemon restart
//===----------------------------------------------------------------------===//

TEST(ServiceRetry, ClientSurvivesDaemonRestartMidSession) {
  // The daemon is down when the client starts. With --retries the client
  // keeps reconnecting under exponential backoff until the replacement
  // daemon (brought up concurrently) answers — and the answer matches
  // asdfc bit for bit.
  std::string Tag = std::to_string(::getpid());
  std::string Socket = ::testing::TempDir() + "asdfd-retry-" + Tag + ".sock";
  ::unlink(Socket.c_str());
  std::string Coin = writeTemp("service_cli_retry_coin.qw", CoinSource);
  const std::string Args = " --shots 30 --seed 424242";

  std::string Direct;
  ASSERT_EQ(runCommand("( " + std::string(ASDF_ASDFC_PATH) + " " + Coin +
                           " --emit run" + Args + " 2>/dev/null )",
                       Direct),
            0);

  Daemon D;
  std::thread Late([&] {
    ::usleep(400 * 1000); // The client must be mid-backoff by now.
    ASSERT_TRUE(D.start(Socket));
  });
  std::string Served, Err;
  int Exit = runCommand("( " + cli(Socket) + "run " + Coin + Args +
                            " --retries 8 --retry-budget-ms 20000"
                            " 2>/dev/null )",
                        Served);
  Late.join();
  ASSERT_EQ(Exit, 0) << Served;
  EXPECT_EQ(Served, Direct)
      << "a retried request must produce the same bits as a direct one";
  // The retry is reported on stderr, with a count.
  ASSERT_EQ(runCommand("( " + cli(Socket) + "shutdown >/dev/null ) ", Err),
            0);
  EXPECT_EQ(D.wait(), 0);
  ::unlink(Socket.c_str());
}

TEST(ServiceRetry, WithoutRetriesAConnectionFailureIsDistinct) {
  std::string Out;
  EXPECT_EQ(runCommand(std::string(ASDF_ASDF_CLI_PATH) +
                           " --socket /nonexistent/asdf.sock stats",
                       Out),
            1);
  // The failure names the connection, not a protocol/parse problem.
  EXPECT_EQ(Out.find("malformed"), std::string::npos) << Out;
}

#ifdef ASDF_FAULT_INJECTION

//===----------------------------------------------------------------------===//
// Fault-injected daemon end-to-end (ASDF_FAULT_INJECTION builds only)
//===----------------------------------------------------------------------===//

TEST(ServiceFaultE2E, TornWireWriteIsConnectionLostAndRetrySucceeds) {
  // $ASDF_FAULTS arms the spawned daemon: the first response write sends
  // half a line and drops the connection. Without retries the client must
  // report a lost connection (NOT a JSON parse error); with retries the
  // same request succeeds on the second attempt.
  std::string Tag = std::to_string(::getpid());
  std::string Socket = ::testing::TempDir() + "asdfd-torn-" + Tag + ".sock";
  ::unlink(Socket.c_str());
  std::string Coin = writeTemp("service_cli_torn_coin.qw", CoinSource);

  {
    Daemon D;
    ASSERT_TRUE(D.start(Socket, {}, {"ASDF_FAULTS=wire.torn-write=1"}));
    std::string Out;
    EXPECT_EQ(runCommand(cli(Socket) + "compile " + Coin + " --emit qasm",
                         Out),
              1);
    EXPECT_NE(Out.find("connection-lost"), std::string::npos)
        << "a torn response must be reported as a lost connection: " << Out;
    EXPECT_EQ(Out.find("malformed"), std::string::npos)
        << "a torn response must not be misreported as bad JSON: " << Out;
    D.signal(SIGTERM);
    D.wait();
  }

  Daemon D;
  ASSERT_TRUE(D.start(Socket, {}, {"ASDF_FAULTS=wire.torn-write=1"}));
  std::string Out;
  EXPECT_EQ(runCommand("( " + cli(Socket) + "compile " + Coin +
                           " --emit qasm --retries 3 >/dev/null )",
                       Out),
            0)
      << Out;
  EXPECT_NE(Out.find("succeeded after 1 retry"), std::string::npos) << Out;
  std::string Ignore;
  runCommand(cli(Socket) + "shutdown", Ignore);
  D.wait();
  ::unlink(Socket.c_str());
}

TEST(ServiceFaultE2E, InjectedCompileBadAllocShedsThenHeals) {
  std::string Tag = std::to_string(::getpid());
  std::string Socket = ::testing::TempDir() + "asdfd-oom-" + Tag + ".sock";
  ::unlink(Socket.c_str());
  std::string Coin = writeTemp("service_cli_oom_coin.qw", CoinSource);

  Daemon D;
  ASSERT_TRUE(D.start(Socket, {}, {"ASDF_FAULTS=compile.bad-alloc=1"}));
  std::string Out;
  EXPECT_EQ(runCommand(cli(Socket) + "compile " + Coin + " --emit qasm",
                       Out),
            1);
  EXPECT_NE(Out.find("resource-exhausted"), std::string::npos) << Out;
  // The fault budget is spent; the daemon healed in place.
  EXPECT_EQ(runCommand("( " + cli(Socket) + "compile " + Coin +
                           " --emit qasm 2>/dev/null )",
                       Out),
            0);
  EXPECT_NE(Out.find("OPENQASM"), std::string::npos) << Out;
  std::string Ignore;
  runCommand(cli(Socket) + "shutdown", Ignore);
  D.wait();
  ::unlink(Socket.c_str());
}

#endif // ASDF_FAULT_INJECTION

} // namespace

#else
TEST(ServiceCliTest, Skipped) {
  GTEST_SKIP() << "binary paths not configured";
}
#endif // binary paths
