//===- DeterminismTest.cpp - Shot-parallel determinism regression ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism contract of the execution plan, pinned hard:
///
///   - runShots/runBatch return identical per-shot bits for jobs=1 and
///     jobs=8 on both engines (the seed-derivation contract from the
///     backend-subsystem PR is what makes shot-parallelism legal);
///   - deriveShotSeed matches a golden table, so the splitmix64 hash can
///     never silently change — that would silently re-randomize every
///     recorded run in every downstream test and artifact.
///
//===----------------------------------------------------------------------===//

#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"
#include "sim/StabilizerBackend.h"

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>

using namespace asdf;

namespace {

/// A dynamic circuit with mid-circuit measurement, feed-forward, reset,
/// and a non-Clifford tail: every source of per-shot randomness at once.
Circuit dynamicMixedCircuit() {
  Circuit C;
  C.NumQubits = 5;
  C.NumBits = 5;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::RY, {}, {1}, 0.7));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {2}));
  C.append(CircuitInstr::gate(GateKind::T, {}, {2}));
  C.append(CircuitInstr::measure(0, 0));
  CircuitInstr Fix = CircuitInstr::gate(GateKind::X, {}, {3});
  Fix.CondBit = 0;
  C.append(Fix);
  C.append(CircuitInstr::reset(2));
  C.append(CircuitInstr::gate(GateKind::H, {}, {2}));
  C.append(CircuitInstr::gate(GateKind::RZ, {}, {3}, 1.3));
  C.append(CircuitInstr::gate(GateKind::RX, {}, {4}, 2.1));
  for (unsigned Q = 1; Q < 5; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

/// A Clifford analog for the tableau engine.
Circuit dynamicCliffordCircuit() {
  Circuit C = dynamicMixedCircuit();
  for (CircuitInstr &I : C.Instrs)
    if (I.TheKind == CircuitInstr::Kind::Gate &&
        (I.Gate == GateKind::RY || I.Gate == GateKind::RZ ||
         I.Gate == GateKind::RX || I.Gate == GateKind::T))
      I = CircuitInstr::gate(GateKind::S, {}, {I.Targets[0]});
  return C;
}

TEST(DeterminismTest, JobsDoNotChangePerShotBits) {
  const unsigned Shots = 64;
  struct Case {
    const char *Name;
    Circuit C;
    const SimBackend *B;
  };
  StatevectorBackend Sv;
  StabilizerBackend Stab;
  Circuit Mixed = dynamicMixedCircuit();
  Circuit Cliff = dynamicCliffordCircuit();
  ASSERT_TRUE(analyzeCircuit(Cliff).CliffordOnly);
  const Case Cases[] = {
      {"sv/mixed", Mixed, &Sv},
      {"sv/clifford", Cliff, &Sv},
      {"stab/clifford", Cliff, &Stab},
  };
  for (const Case &TC : Cases) {
    for (bool Fuse : {true, false}) {
      RunOptions J1, J8;
      J1.Jobs = 1;
      J8.Jobs = 8;
      J1.Fuse = J8.Fuse = Fuse;
      std::vector<ShotResult> A = TC.B->runBatch(TC.C, Shots, 33, J1);
      std::vector<ShotResult> B = TC.B->runBatch(TC.C, Shots, 33, J8);
      ASSERT_EQ(A.size(), B.size());
      for (unsigned S = 0; S < Shots; ++S)
        ASSERT_EQ(A[S].Bits, B[S].Bits)
            << TC.Name << (Fuse ? " fused" : " unfused") << " shot " << S;
      // And per-shot bits equal independent run() replays.
      for (unsigned S : {0u, 1u, 31u, 63u})
        EXPECT_EQ(A[S].Bits, TC.B->run(TC.C, deriveShotSeed(33, S)).Bits)
            << TC.Name << " shot " << S;
    }
  }
}

TEST(DeterminismTest, RunShotsFacadeIsJobCountInvariant) {
  Circuit C = dynamicMixedCircuit();
  RunOptions J1, J8;
  J1.Jobs = 1;
  J8.Jobs = 8;
  EXPECT_EQ(runShots(C, 200, 5, BackendKind::Auto, J1),
            runShots(C, 200, 5, BackendKind::Auto, J8));
  EXPECT_NE(runShots(C, 200, 5, BackendKind::Auto, J8),
            runShots(C, 200, 6, BackendKind::Auto, J8));
}

TEST(DeterminismTest, DeriveShotSeedMatchesGoldenTable) {
  // Golden splitmix64 outputs. If this test fails, the hash changed and
  // every recorded (circuit, seed, shots) replay breaks: do not update the
  // table without bumping whatever versioning the artifacts carry.
  struct Golden {
    uint64_t Seed, Shot, Want;
  };
  const Golden Table[] = {
      {0ull, 0ull, 0xE220A8397B1DCDAFull},
      {0ull, 1ull, 0x6E789E6AA1B965F4ull},
      {0ull, 2ull, 0x06C45D188009454Full},
      {0ull, 3ull, 0xF88BB8A8724C81ECull},
      {1ull, 0ull, 0x910A2DEC89025CC1ull},
      {7ull, 3ull, 0x953AEB70673E29CBull},
      {42ull, 0ull, 0xBDD732262FEB6E95ull},
      {42ull, 999ull, 0x66091CA85313FA68ull},
      {3735928559ull, 12345ull, 0x48A45C7BD27848D3ull},
      {18446744073709551615ull, 4294967296ull, 0xC5AA1D1D7E827744ull},
  };
  for (const Golden &G : Table)
    EXPECT_EQ(deriveShotSeed(G.Seed, G.Shot), G.Want)
        << "seed " << G.Seed << " shot " << G.Shot;
}

TEST(DeterminismTest, DenseQubitCapDerivation) {
  // The dense cap is no longer a hard-coded 26: RunOptions overrides win,
  // the hard cap bounds them, and the memory-derived default is sane.
  RunOptions Opts;
  Opts.MaxStateQubits = 24;
  EXPECT_EQ(StatevectorBackend::maxQubits(Opts), 24u);
  Opts.MaxStateQubits = 99;
  EXPECT_EQ(StatevectorBackend::maxQubits(Opts),
            StatevectorBackend::HardMaxQubits);
  unsigned Derived = StatevectorBackend::maxQubits();
  EXPECT_GE(Derived, 10u);
  EXPECT_LE(Derived, StatevectorBackend::HardMaxQubits);

  // supports() must agree with the derived cap.
  StatevectorBackend Sv;
  Circuit Wide;
  Wide.NumQubits = Derived;
  EXPECT_TRUE(Sv.supports(Wide, analyzeCircuit(Wide)));
  Wide.NumQubits = StatevectorBackend::HardMaxQubits + 1;
  EXPECT_FALSE(Sv.supports(Wide, analyzeCircuit(Wide)));
}

TEST(DeterminismTest, ResolveJobCountClamps) {
  EXPECT_EQ(resolveJobCount(3, 100), 3u);
  EXPECT_EQ(resolveJobCount(8, 2), 2u);
  EXPECT_EQ(resolveJobCount(1, 1000), 1u);
  EXPECT_GE(resolveJobCount(0, 1000), 1u); // auto: at least one worker
  EXPECT_EQ(resolveJobCount(5, 0), 1u);    // never below one worker

  // The shot-free overload (the amplitude-parallel worker budget) still
  // honors the 4x-cores oversubscription cap and the floor of one.
  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores == 0)
    Cores = 1;
  EXPECT_GE(resolveJobCount(0), 1u);
  EXPECT_LE(resolveJobCount(1u << 30), Cores * 4);
}

TEST(DeterminismTest, AmplitudeParallelBitIdenticalAcrossJobs) {
  // 14 qubits: 2^13 pairs, enough for the amplitude-parallel kernels to
  // actually split their index ranges. The fixed-chunk reductions must
  // make every jobs count — and the serial unfused reference — agree on
  // every sampled bit.
  Circuit C;
  C.NumQubits = 14;
  C.NumBits = 14;
  for (unsigned Q = 0; Q < 14; ++Q) {
    C.append(CircuitInstr::gate(GateKind::H, {}, {Q}));
    C.append(CircuitInstr::gate(GateKind::RY, {}, {Q}, 0.2 + 0.15 * Q));
  }
  for (unsigned Q = 1; Q < 14; ++Q)
    C.append(CircuitInstr::gate(GateKind::X, {Q - 1}, {Q}));
  C.append(CircuitInstr::measure(0, 0));
  CircuitInstr Fix = CircuitInstr::gate(GateKind::X, {}, {1});
  Fix.CondBit = 0;
  C.append(Fix);
  C.append(CircuitInstr::gate(GateKind::RZ, {}, {1}, 0.9));
  for (unsigned Q = 1; Q < 14; ++Q)
    C.append(CircuitInstr::measure(Q, Q));

  StatevectorBackend Sv;
  const unsigned Shots = 6;
  RunOptions Amp1;
  Amp1.Parallel = ParallelMode::Amplitude;
  Amp1.Jobs = 1;
  std::vector<ShotResult> Want = Sv.runBatch(C, Shots, 77, Amp1);
  for (unsigned Jobs : {2u, 3u, 4u, 8u}) {
    RunOptions Opts = Amp1;
    Opts.Jobs = Jobs;
    std::vector<ShotResult> Got = Sv.runBatch(C, Shots, 77, Opts);
    ASSERT_EQ(Want.size(), Got.size());
    for (unsigned S = 0; S < Shots; ++S)
      ASSERT_EQ(Want[S].Bits, Got[S].Bits) << "amp jobs " << Jobs
                                           << " shot " << S;
  }
  // And bit-identical to the serial unfused reference path.
  RunOptions Ref;
  Ref.Jobs = 1;
  Ref.Fuse = false;
  Ref.Parallel = ParallelMode::Shot;
  std::vector<ShotResult> RefResults = Sv.runBatch(C, Shots, 77, Ref);
  for (unsigned S = 0; S < Shots; ++S)
    EXPECT_EQ(Want[S].Bits, RefResults[S].Bits) << "vs reference, shot " << S;
}

TEST(DeterminismTest, ParallelLoopsNeverSpawnIdleWorkers) {
  // Regression for the Shots < Jobs case: 16 requested workers for 3 work
  // items must run on at most 3 threads — never 13 idle spawns.
  std::mutex Lock;
  std::set<std::thread::id> Ids;
  std::vector<int> ShotRuns(3, 0);
  parallelShotLoop(16, 3, [&](unsigned S) {
    {
      std::lock_guard<std::mutex> G(Lock);
      Ids.insert(std::this_thread::get_id());
    }
    ShotRuns[S]++;
  });
  EXPECT_LE(Ids.size(), 3u);
  for (int R : ShotRuns)
    EXPECT_EQ(R, 1);

  // Worker ids stay dense in [0, Jobs) so per-worker scratch is safe.
  parallelShotLoop(4, 50, [&](unsigned W, unsigned S) {
    EXPECT_LT(W, 4u);
    EXPECT_LT(S, 50u);
  });

  // parallelIndexLoop covers [0, N) exactly once, in disjoint ranges,
  // honoring the chunk floor.
  std::vector<int> Seen(1000, 0);
  parallelIndexLoop(4, 1000, 16, [&](uint64_t B, uint64_t E) {
    ASSERT_LE(B, E);
    ASSERT_LE(E, uint64_t(1000));
    for (uint64_t I = B; I < E; ++I)
      Seen[I]++;
  });
  for (int R : Seen)
    EXPECT_EQ(R, 1);

  // Degenerate sizes: empty and single-item loops.
  unsigned Calls = 0;
  parallelIndexLoop(8, 0, 1, [&](uint64_t, uint64_t) { ++Calls; });
  EXPECT_EQ(Calls, 0u);
  parallelIndexLoop(8, 1, 1, [&](uint64_t B, uint64_t E) {
    EXPECT_EQ(B, 0u);
    EXPECT_EQ(E, 1u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1u);
}

} // namespace
