//===- DeterminismTest.cpp - Shot-parallel determinism regression ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism contract of the execution plan, pinned hard:
///
///   - runShots/runBatch return identical per-shot bits for jobs=1 and
///     jobs=8 on both engines (the seed-derivation contract from the
///     backend-subsystem PR is what makes shot-parallelism legal);
///   - deriveShotSeed matches a golden table, so the splitmix64 hash can
///     never silently change — that would silently re-randomize every
///     recorded run in every downstream test and artifact.
///
//===----------------------------------------------------------------------===//

#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"
#include "sim/StabilizerBackend.h"

#include <gtest/gtest.h>

using namespace asdf;

namespace {

/// A dynamic circuit with mid-circuit measurement, feed-forward, reset,
/// and a non-Clifford tail: every source of per-shot randomness at once.
Circuit dynamicMixedCircuit() {
  Circuit C;
  C.NumQubits = 5;
  C.NumBits = 5;
  C.append(CircuitInstr::gate(GateKind::H, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::RY, {}, {1}, 0.7));
  C.append(CircuitInstr::gate(GateKind::X, {0}, {2}));
  C.append(CircuitInstr::gate(GateKind::T, {}, {2}));
  C.append(CircuitInstr::measure(0, 0));
  CircuitInstr Fix = CircuitInstr::gate(GateKind::X, {}, {3});
  Fix.CondBit = 0;
  C.append(Fix);
  C.append(CircuitInstr::reset(2));
  C.append(CircuitInstr::gate(GateKind::H, {}, {2}));
  C.append(CircuitInstr::gate(GateKind::RZ, {}, {3}, 1.3));
  C.append(CircuitInstr::gate(GateKind::RX, {}, {4}, 2.1));
  for (unsigned Q = 1; Q < 5; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

/// A Clifford analog for the tableau engine.
Circuit dynamicCliffordCircuit() {
  Circuit C = dynamicMixedCircuit();
  for (CircuitInstr &I : C.Instrs)
    if (I.TheKind == CircuitInstr::Kind::Gate &&
        (I.Gate == GateKind::RY || I.Gate == GateKind::RZ ||
         I.Gate == GateKind::RX || I.Gate == GateKind::T))
      I = CircuitInstr::gate(GateKind::S, {}, {I.Targets[0]});
  return C;
}

TEST(DeterminismTest, JobsDoNotChangePerShotBits) {
  const unsigned Shots = 64;
  struct Case {
    const char *Name;
    Circuit C;
    const SimBackend *B;
  };
  StatevectorBackend Sv;
  StabilizerBackend Stab;
  Circuit Mixed = dynamicMixedCircuit();
  Circuit Cliff = dynamicCliffordCircuit();
  ASSERT_TRUE(analyzeCircuit(Cliff).CliffordOnly);
  const Case Cases[] = {
      {"sv/mixed", Mixed, &Sv},
      {"sv/clifford", Cliff, &Sv},
      {"stab/clifford", Cliff, &Stab},
  };
  for (const Case &TC : Cases) {
    for (bool Fuse : {true, false}) {
      RunOptions J1, J8;
      J1.Jobs = 1;
      J8.Jobs = 8;
      J1.Fuse = J8.Fuse = Fuse;
      std::vector<ShotResult> A = TC.B->runBatch(TC.C, Shots, 33, J1);
      std::vector<ShotResult> B = TC.B->runBatch(TC.C, Shots, 33, J8);
      ASSERT_EQ(A.size(), B.size());
      for (unsigned S = 0; S < Shots; ++S)
        ASSERT_EQ(A[S].Bits, B[S].Bits)
            << TC.Name << (Fuse ? " fused" : " unfused") << " shot " << S;
      // And per-shot bits equal independent run() replays.
      for (unsigned S : {0u, 1u, 31u, 63u})
        EXPECT_EQ(A[S].Bits, TC.B->run(TC.C, deriveShotSeed(33, S)).Bits)
            << TC.Name << " shot " << S;
    }
  }
}

TEST(DeterminismTest, RunShotsFacadeIsJobCountInvariant) {
  Circuit C = dynamicMixedCircuit();
  RunOptions J1, J8;
  J1.Jobs = 1;
  J8.Jobs = 8;
  EXPECT_EQ(runShots(C, 200, 5, BackendKind::Auto, J1),
            runShots(C, 200, 5, BackendKind::Auto, J8));
  EXPECT_NE(runShots(C, 200, 5, BackendKind::Auto, J8),
            runShots(C, 200, 6, BackendKind::Auto, J8));
}

TEST(DeterminismTest, DeriveShotSeedMatchesGoldenTable) {
  // Golden splitmix64 outputs. If this test fails, the hash changed and
  // every recorded (circuit, seed, shots) replay breaks: do not update the
  // table without bumping whatever versioning the artifacts carry.
  struct Golden {
    uint64_t Seed, Shot, Want;
  };
  const Golden Table[] = {
      {0ull, 0ull, 0xE220A8397B1DCDAFull},
      {0ull, 1ull, 0x6E789E6AA1B965F4ull},
      {0ull, 2ull, 0x06C45D188009454Full},
      {0ull, 3ull, 0xF88BB8A8724C81ECull},
      {1ull, 0ull, 0x910A2DEC89025CC1ull},
      {7ull, 3ull, 0x953AEB70673E29CBull},
      {42ull, 0ull, 0xBDD732262FEB6E95ull},
      {42ull, 999ull, 0x66091CA85313FA68ull},
      {3735928559ull, 12345ull, 0x48A45C7BD27848D3ull},
      {18446744073709551615ull, 4294967296ull, 0xC5AA1D1D7E827744ull},
  };
  for (const Golden &G : Table)
    EXPECT_EQ(deriveShotSeed(G.Seed, G.Shot), G.Want)
        << "seed " << G.Seed << " shot " << G.Shot;
}

TEST(DeterminismTest, DenseQubitCapDerivation) {
  // The dense cap is no longer a hard-coded 26: RunOptions overrides win,
  // the hard cap bounds them, and the memory-derived default is sane.
  RunOptions Opts;
  Opts.MaxStateQubits = 24;
  EXPECT_EQ(StatevectorBackend::maxQubits(Opts), 24u);
  Opts.MaxStateQubits = 99;
  EXPECT_EQ(StatevectorBackend::maxQubits(Opts),
            StatevectorBackend::HardMaxQubits);
  unsigned Derived = StatevectorBackend::maxQubits();
  EXPECT_GE(Derived, 10u);
  EXPECT_LE(Derived, StatevectorBackend::HardMaxQubits);

  // supports() must agree with the derived cap.
  StatevectorBackend Sv;
  Circuit Wide;
  Wide.NumQubits = Derived;
  EXPECT_TRUE(Sv.supports(Wide, analyzeCircuit(Wide)));
  Wide.NumQubits = StatevectorBackend::HardMaxQubits + 1;
  EXPECT_FALSE(Sv.supports(Wide, analyzeCircuit(Wide)));
}

TEST(DeterminismTest, ResolveJobCountClamps) {
  EXPECT_EQ(resolveJobCount(3, 100), 3u);
  EXPECT_EQ(resolveJobCount(8, 2), 2u);
  EXPECT_EQ(resolveJobCount(1, 1000), 1u);
  EXPECT_GE(resolveJobCount(0, 1000), 1u); // auto: at least one worker
  EXPECT_EQ(resolveJobCount(5, 0), 1u);    // never below one worker
}

} // namespace
