//===- ObsTest.cpp - Observability spine: tracing + metrics ---------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for src/obs/: Chrome trace-event export (well-formedness,
/// span nesting, thread attribution, trace-id stamping), histogram bucket
/// and quantile golden values, Prometheus text exposition, the trace-id
/// wire round-trip through ServiceRequest, and the disabled-mode
/// zero-cost contract.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "service/Request.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace asdf;

namespace {

/// Every tracing test runs against a clean, enabled recorder and leaves
/// tracing disabled for the next suite.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::enableTracing();
    obs::clearTrace();
  }
  void TearDown() override {
    obs::disableTracing();
    obs::clearTrace();
  }
};

/// Parses exportChromeTrace() and returns the traceEvents array.
json::Value exportedEvents() {
  std::string Text = obs::exportChromeTrace();
  json::Value Doc;
  std::string Error;
  EXPECT_TRUE(json::parse(Text, Doc, Error)) << Error;
  const json::Value *Events = Doc.get("traceEvents");
  EXPECT_NE(Events, nullptr);
  return Events ? *Events : json::Value::array();
}

/// Finds the first event named \p Name; null if absent.
const json::Value *findEvent(const json::Value &Events,
                             const std::string &Name) {
  for (const json::Value &E : Events.elements())
    if (E.get("name") && E.get("name")->asString() == Name)
      return &E;
  return nullptr;
}

TEST_F(TraceTest, ChromeExportIsWellFormed) {
  {
    obs::Span Outer("outer", "test");
    obs::Span Inner("inner", "test");
  }
  json::Value Events = exportedEvents();
  ASSERT_EQ(Events.elements().size(), 2u);
  for (const json::Value &E : Events.elements()) {
    // Complete events: name/cat/ph/ts/dur/pid/tid, ph == "X".
    ASSERT_NE(E.get("name"), nullptr);
    ASSERT_NE(E.get("cat"), nullptr);
    ASSERT_NE(E.get("ph"), nullptr);
    EXPECT_EQ(E.get("ph")->asString(), "X");
    ASSERT_NE(E.get("ts"), nullptr);
    ASSERT_NE(E.get("dur"), nullptr);
    ASSERT_NE(E.get("pid"), nullptr);
    ASSERT_NE(E.get("tid"), nullptr);
    EXPECT_EQ(E.get("cat")->asString(), "test");
  }
}

TEST_F(TraceTest, SpansNestAndSortByStart) {
  {
    obs::Span Outer("outer", "test");
    obs::Span Inner("inner", "test");
  }
  json::Value Events = exportedEvents();
  const json::Value *Outer = findEvent(Events, "outer");
  const json::Value *Inner = findEvent(Events, "inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  double OuterTs = Outer->get("ts")->asDouble();
  double OuterDur = Outer->get("dur")->asDouble();
  double InnerTs = Inner->get("ts")->asDouble();
  double InnerDur = Inner->get("dur")->asDouble();
  // Containment: the inner span lies inside [outer.ts, outer.ts+dur].
  EXPECT_GE(InnerTs, OuterTs);
  EXPECT_LE(InnerTs + InnerDur, OuterTs + OuterDur + 1e-3);
  // Export sorts by start time: outer first.
  EXPECT_EQ(Events.elements()[0].get("name")->asString(), "outer");
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  { obs::Span Sp("main-span", "test"); }
  std::thread T([] { obs::Span Sp("worker-span", "test"); });
  T.join();
  json::Value Events = exportedEvents();
  const json::Value *Main = findEvent(Events, "main-span");
  const json::Value *Worker = findEvent(Events, "worker-span");
  ASSERT_NE(Main, nullptr);
  ASSERT_NE(Worker, nullptr);
  EXPECT_NE(Main->get("tid")->asU64(), Worker->get("tid")->asU64());
}

TEST_F(TraceTest, TraceContextStampsAndRestores) {
  EXPECT_EQ(obs::currentTraceId(), 0u);
  {
    obs::TraceContext TC(42);
    EXPECT_EQ(obs::currentTraceId(), 42u);
    obs::Span Sp("tagged", "test");
    {
      obs::TraceContext Nested(7);
      EXPECT_EQ(obs::currentTraceId(), 7u);
    }
    EXPECT_EQ(obs::currentTraceId(), 42u);
  }
  EXPECT_EQ(obs::currentTraceId(), 0u);
  { obs::Span Sp("untagged", "test"); }

  json::Value Events = exportedEvents();
  const json::Value *Tagged = findEvent(Events, "tagged");
  ASSERT_NE(Tagged, nullptr);
  ASSERT_NE(Tagged->get("args"), nullptr);
  EXPECT_EQ(Tagged->get("args")->get("trace")->asU64(), 42u);
  const json::Value *Untagged = findEvent(Events, "untagged");
  ASSERT_NE(Untagged, nullptr);
  EXPECT_EQ(Untagged->get("args")->get("trace")->asU64(), 0u);
}

TEST_F(TraceTest, TwoPartSpanNameAndRetroactiveEmit) {
  { obs::Span Sp("qwerty", std::string("lower-bases"), "compile"); }
  obs::emitSpan("retro", "test", obs::nowNs(), 1500, 9);
  json::Value Events = exportedEvents();
  EXPECT_NE(findEvent(Events, "qwerty:lower-bases"), nullptr);
  const json::Value *Retro = findEvent(Events, "retro");
  ASSERT_NE(Retro, nullptr);
  EXPECT_EQ(Retro->get("args")->get("trace")->asU64(), 9u);
  EXPECT_DOUBLE_EQ(Retro->get("dur")->asDouble(), 1.5); // µs
}

TEST(TraceDisabledTest, DisabledModeRecordsNothing) {
  obs::disableTracing();
  obs::clearTrace();
  {
    obs::Span Sp("invisible", "test");
    obs::emitSpan("also-invisible", "test", 0, 1, 1);
  }
  obs::enableTracing();
  json::Value Events = exportedEvents();
  EXPECT_EQ(Events.elements().size(), 0u);
  obs::disableTracing();
}

TEST(TraceDisabledTest, DisabledSpanDoesNotAllocate) {
  obs::disableTracing();
  // The Span ctor taking a std::string promises no formatting work on the
  // disabled path; a long dynamic name must not touch the fixed buffers.
  std::string Long(1024, 'x');
  for (int I = 0; I < 1000; ++I) {
    obs::Span Sp("prefix", Long, "test");
    (void)Sp;
  }
  // No events and no drops recorded.
  EXPECT_EQ(obs::droppedSpanCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketLadderGoldenValues) {
  const auto &B = obs::Histogram::bounds();
  ASSERT_EQ(B.size(), obs::Histogram::NumFinite);
  EXPECT_DOUBLE_EQ(B.front(), 1e-6);
  EXPECT_DOUBLE_EQ(B[3], 1e-5);
  EXPECT_DOUBLE_EQ(B[18], 1.0);
  EXPECT_DOUBLE_EQ(B.back(), 60.0);
  for (size_t I = 1; I < B.size(); ++I)
    EXPECT_LT(B[I - 1], B[I]);
}

TEST(HistogramTest, ObservationsLandInGoldenBuckets) {
  obs::Histogram H;
  H.observe(5e-7);  // below the first bound -> bucket 0 (le 1e-6)
  H.observe(1e-6);  // exactly on a bound -> that bucket (le semantics)
  H.observe(3e-3);  // between 2e-3 and 5e-3 -> bucket of 5e-3
  H.observe(100.0); // above 60s -> overflow
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(11), 1u); // 5e-3 is bounds()[11]
  EXPECT_EQ(H.bucketCount(obs::Histogram::NumFinite), 1u);
  EXPECT_NEAR(H.sum(), 100.0 + 3e-3 + 1e-6 + 5e-7, 1e-9);
}

TEST(HistogramTest, QuantileGoldenValues) {
  obs::Histogram H;
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 0.0); // empty
  // 90 fast (1ms bucket), 10 slow (1s bucket): p50/p90 in the fast
  // bucket, p99 in the slow one — quantiles are bucket upper bounds.
  for (int I = 0; I < 90; ++I)
    H.observe(0.8e-3);
  for (int I = 0; I < 10; ++I)
    H.observe(0.9);
  EXPECT_DOUBLE_EQ(H.quantile(0.50), 1e-3);
  EXPECT_DOUBLE_EQ(H.quantile(0.90), 1e-3);
  EXPECT_DOUBLE_EQ(H.quantile(0.99), 1.0);
  // Overflow clamps to the largest finite bound.
  obs::Histogram O;
  O.observe(1e6);
  EXPECT_DOUBLE_EQ(O.quantile(0.5), 60.0);
}

TEST(HistogramTest, JsonRoundTripPreservesQuantiles) {
  obs::Histogram H;
  for (int I = 0; I < 1000; ++I)
    H.observe(1e-5 * (I % 100 + 1));
  json::Value J = H.toJson();
  ASSERT_NE(J.get("p50"), nullptr);
  ASSERT_NE(J.get("p99"), nullptr);

  obs::Histogram Back;
  ASSERT_TRUE(obs::Histogram::fromJson(J, Back));
  EXPECT_EQ(Back.count(), H.count());
  EXPECT_DOUBLE_EQ(Back.sum(), H.sum());
  // The rebuilt histogram re-derives the byte-identical quantiles — the
  // property the bench agreement assertions rest on.
  EXPECT_DOUBLE_EQ(Back.quantile(0.50), J.get("p50")->asDouble());
  EXPECT_DOUBLE_EQ(Back.quantile(0.90), J.get("p90")->asDouble());
  EXPECT_DOUBLE_EQ(Back.quantile(0.99), J.get("p99")->asDouble());
}

TEST(HistogramTest, FromJsonRejectsMalformedShapes) {
  obs::Histogram Out;
  json::Value NotObj = json::Value::array();
  EXPECT_FALSE(obs::Histogram::fromJson(NotObj, Out));
  json::Value Empty = json::Value::object();
  EXPECT_FALSE(obs::Histogram::fromJson(Empty, Out));
  // Right keys, wrong bucket-array length.
  json::Value Short = json::Value::object();
  Short.set("buckets", json::Value::array());
  Short.set("count", json::Value::integer(uint64_t(0)));
  Short.set("sum", json::Value::number(0.0));
  EXPECT_FALSE(obs::Histogram::fromJson(Short, Out));
}

//===----------------------------------------------------------------------===//
// MetricsRegistry / Prometheus exposition
//===----------------------------------------------------------------------===//

TEST(MetricsTest, PrometheusExpositionFormat) {
  obs::MetricsRegistry Reg;
  obs::Counter &C = Reg.counter("asdf_test_total", "A test counter");
  C.inc(3);
  Reg.gauge("asdf_test_depth", "A test gauge").set(2.5);
  Reg.counterFn("asdf_test_fn_total", "A read-time counter",
                [] { return uint64_t(7); });
  obs::Histogram &H = Reg.histogram("asdf_test_seconds", "A histogram");
  H.observe(1.5e-6);
  H.observe(0.5);

  std::string Text = Reg.renderPrometheus();
  EXPECT_NE(Text.find("# HELP asdf_test_total A test counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE asdf_test_total counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("asdf_test_total 3\n"), std::string::npos);
  EXPECT_NE(Text.find("asdf_test_depth 2.5\n"), std::string::npos);
  EXPECT_NE(Text.find("asdf_test_fn_total 7\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE asdf_test_seconds histogram\n"),
            std::string::npos);
  // Cumulative buckets: the 0.5s observation is inside le="0.5" and every
  // later bound; +Inf carries the total count; _sum/_count close it out.
  EXPECT_NE(Text.find("asdf_test_seconds_bucket{le=\"2e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("asdf_test_seconds_bucket{le=\"0.5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Text.find("asdf_test_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Text.find("asdf_test_seconds_count 2\n"), std::string::npos);
  // Registration dedups by name.
  Reg.counter("asdf_test_total", "ignored duplicate").inc();
  EXPECT_EQ(C.value(), 4u);
}

//===----------------------------------------------------------------------===//
// Wire round-trip
//===----------------------------------------------------------------------===//

TEST(WireTest, TraceIdRoundTrips) {
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Run;
  R.Id = 5;
  R.Trace = 0xDEADBEEFCAFEull;
  R.Source = "kernel[] { '0' }";
  R.Shots = 3;
  json::Value J = R.toJson();
  ASSERT_NE(J.get("trace"), nullptr);

  ServiceRequest Back;
  std::string Error;
  ASSERT_TRUE(ServiceRequest::fromJson(J, Back, Error)) << Error;
  EXPECT_EQ(Back.Trace, 0xDEADBEEFCAFEull);
  EXPECT_EQ(Back.Id, 5u);
}

TEST(WireTest, TraceIdZeroIsOmitted) {
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Stats;
  EXPECT_EQ(R.toJson().get("trace"), nullptr);
  ServiceRequest Back;
  std::string Error;
  ASSERT_TRUE(ServiceRequest::fromJson(R.toJson(), Back, Error)) << Error;
  EXPECT_EQ(Back.Trace, 0u);
}

TEST(WireTest, MetricsOpRoundTrips) {
  ServiceRequest R;
  R.TheKind = ServiceRequest::Kind::Metrics;
  R.Id = 11;
  json::Value J = R.toJson();
  EXPECT_EQ(J.get("op")->asString(), "metrics");
  ServiceRequest Back;
  std::string Error;
  ASSERT_TRUE(ServiceRequest::fromJson(J, Back, Error)) << Error;
  EXPECT_EQ(Back.TheKind, ServiceRequest::Kind::Metrics);

  ServiceResponse Resp;
  Resp.Id = 11;
  Resp.Ok = true;
  Resp.MetricsText = "# HELP x y\nx 1\n";
  ServiceResponse RespBack;
  ASSERT_TRUE(
      ServiceResponse::fromJson(Resp.toJson(), RespBack, Error))
      << Error;
  EXPECT_EQ(RespBack.MetricsText, Resp.MetricsText);
}

TEST(WireTest, RequestKindNamesAreStable) {
  EXPECT_STREQ(requestKindName(ServiceRequest::Kind::Compile), "compile");
  EXPECT_STREQ(requestKindName(ServiceRequest::Kind::BindRun), "bind-run");
  EXPECT_STREQ(requestKindName(ServiceRequest::Kind::Metrics), "metrics");
}

} // namespace
