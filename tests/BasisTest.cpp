//===- BasisTest.cpp - Unit tests for basis data structures ---------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "basis/Basis.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace asdf;

namespace {

TEST(BasisVectorTest, FromStringStd) {
  BasisVector V = BasisVector::fromString("1010");
  EXPECT_EQ(V.Prim, PrimitiveBasis::Std);
  EXPECT_EQ(V.Dim, 4u);
  EXPECT_EQ(V.Eigenbits, 0b1010u);
  EXPECT_FALSE(V.HasPhase);
}

TEST(BasisVectorTest, FromStringPm) {
  BasisVector V = BasisVector::fromString("pmmp");
  EXPECT_EQ(V.Prim, PrimitiveBasis::Pm);
  EXPECT_EQ(V.Eigenbits, 0b0110u);
}

TEST(BasisVectorTest, FromStringIj) {
  BasisVector V = BasisVector::fromString("ij");
  EXPECT_EQ(V.Prim, PrimitiveBasis::Ij);
  EXPECT_EQ(V.Eigenbits, 0b01u);
}

TEST(BasisVectorTest, EigenbitConventionLeftmostIsMsb) {
  BasisVector V = BasisVector::fromString("100");
  EXPECT_EQ(V.Eigenbits, 0b100u);
  EXPECT_TRUE(bitAt(V.Eigenbits, V.Dim, 0));
  EXPECT_FALSE(bitAt(V.Eigenbits, V.Dim, 1));
  EXPECT_FALSE(bitAt(V.Eigenbits, V.Dim, 2));
}

TEST(BasisVectorTest, PrintRoundTrip) {
  BasisVector V = BasisVector::fromString("pm");
  EXPECT_EQ(V.str(), "'pm'");
  BasisVector W(PrimitiveBasis::Std, 1, 1, /*Phase=*/M_PI);
  EXPECT_EQ(W.str().substr(0, 4), "'1'@");
}

TEST(BasisLiteralTest, FullySpans) {
  BasisLiteral L({BasisVector::fromString("0"), BasisVector::fromString("1")});
  EXPECT_TRUE(L.fullySpans());
  BasisLiteral Half({BasisVector::fromString("01"),
                     BasisVector::fromString("10")});
  EXPECT_FALSE(Half.fullySpans());
}

TEST(BasisLiteralTest, NormalizedSortsAndStripsPhases) {
  BasisVector V1(PrimitiveBasis::Std, 2, 0b10, /*Phase=*/1.0);
  BasisVector V2(PrimitiveBasis::Std, 2, 0b01);
  BasisLiteral L({V1, V2});
  BasisLiteral N = L.normalized();
  ASSERT_EQ(N.Vectors.size(), 2u);
  EXPECT_EQ(N.Vectors[0].Eigenbits, 0b01u);
  EXPECT_EQ(N.Vectors[1].Eigenbits, 0b10u);
  EXPECT_FALSE(N.Vectors[0].HasPhase);
  EXPECT_FALSE(N.Vectors[1].HasPhase);
}

TEST(BasisLiteralTest, EigenbitsDistinct) {
  BasisLiteral Good({BasisVector::fromString("01"),
                     BasisVector::fromString("10")});
  EXPECT_TRUE(Good.eigenbitsDistinct());
  BasisLiteral Bad({BasisVector::fromString("01"),
                    BasisVector::fromString("01")});
  EXPECT_FALSE(Bad.eigenbitsDistinct());
}

TEST(BasisElementTest, BuiltinFullySpans) {
  BasisElement E = BasisElement::builtin(PrimitiveBasis::Pm, 3);
  EXPECT_TRUE(E.fullySpans());
  EXPECT_EQ(E.dim(), 3u);
  EXPECT_EQ(E.str(), "pm[3]");
}

TEST(BasisElementTest, SingleQubitBuiltinPrintsBare) {
  EXPECT_EQ(BasisElement::builtin(PrimitiveBasis::Std, 1).str(), "std");
}

TEST(BasisElementTest, EqualityDistinguishesKinds) {
  BasisElement B = BasisElement::builtin(PrimitiveBasis::Std, 1);
  BasisElement L = BasisElement::literal(
      BasisLiteral({BasisVector::fromString("0"),
                    BasisVector::fromString("1")}));
  EXPECT_FALSE(B == L);
  EXPECT_TRUE(L.fullySpans());
}

TEST(BasisTest, DimSumsElements) {
  Basis B = Basis::builtin(PrimitiveBasis::Std, 2)
                .tensor(Basis::builtin(PrimitiveBasis::Fourier, 3));
  EXPECT_EQ(B.dim(), 5u);
  EXPECT_EQ(B.size(), 2u);
}

TEST(BasisTest, PowerRepeatsElements) {
  Basis B = Basis::builtin(PrimitiveBasis::Pm, 1).power(4);
  EXPECT_EQ(B.dim(), 4u);
  EXPECT_EQ(B.size(), 4u);
}

TEST(BasisTest, PrintCanonForm) {
  Basis B = Basis::builtin(PrimitiveBasis::Pm, 2)
                .tensor(Basis::literal(BasisLiteral(
                    {BasisVector::fromString("p")})));
  EXPECT_EQ(B.str(), "pm[2] + {'p'}");
}

TEST(BasisTest, HasPhases) {
  Basis NoPhase = Basis::builtin(PrimitiveBasis::Std, 2);
  EXPECT_FALSE(NoPhase.hasPhases());
  BasisVector V(PrimitiveBasis::Std, 1, 1, /*Phase=*/0.5);
  Basis WithPhase = Basis::literal(BasisLiteral({V}));
  EXPECT_TRUE(WithPhase.hasPhases());
}

TEST(BitUtilsTest, PrefixSuffixConcat) {
  uint64_t Bits = 0b101101;
  EXPECT_EQ(bitPrefix(Bits, 6, 3), 0b101u);
  EXPECT_EQ(bitSuffix(Bits, 3), 0b101u);
  EXPECT_EQ(bitConcat(0b101, 0b101, 3), 0b101101u);
  EXPECT_EQ(bitsToString(Bits, 6), "101101");
}

} // namespace
