//===- DifferentialTest.cpp - Differential fuzzing of the execution plan --===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing of the dense execution plan against the serial,
/// unfused reference path. ~200 random circuits — mixed Clifford gates,
/// rotations at arbitrary angles, multi-controlled gates, mid-circuit
/// measurement, reset, and feed-forward — each executed under every
/// {fused, unfused} x {jobs=1, jobs=4} configuration at a fixed seed, with
/// per-shot results required to agree bit-exactly. The optimized paths
/// share per-shot seeds and RNG-consumption order with the reference by
/// construction; these tests are what keeps that true as kernels evolve.
///
/// A second battery pins the stabilizer tableau: jobs=1 vs jobs=4 must be
/// bit-exact, and sampled distributions must match the dense engine's on
/// random dynamic Clifford circuits.
///
//===----------------------------------------------------------------------===//

#include "sim/CircuitAnalysis.h"
#include "sim/Fusion.h"
#include "sim/Simulator.h"
#include "sim/StabilizerBackend.h"
#include "sim/mps/MPSBackend.h"
#include "sim/mps/MPSState.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

using namespace asdf;

namespace {

/// A random circuit over \p NumQubits qubits mixing Clifford gates,
/// rotations, Toffoli-class gates, mid-circuit measurement, reset, and
/// feed-forward, ending in measure-all. \p CliffordOnly restricts the gate
/// alphabet to what the tableau engine supports exactly.
Circuit randomCircuit(std::mt19937_64 &Rng, unsigned NumQubits,
                      unsigned NumInstrs, bool CliffordOnly) {
  Circuit C;
  C.NumQubits = NumQubits;
  C.NumBits = NumQubits;
  std::uniform_int_distribution<unsigned> PickOp(0, CliffordOnly ? 11 : 15);
  std::uniform_int_distribution<unsigned> PickQubit(0, NumQubits - 1);
  std::uniform_real_distribution<double> PickAngle(-2.0 * M_PI, 2.0 * M_PI);
  auto Other = [&](unsigned A) {
    unsigned B = PickQubit(Rng);
    while (NumQubits > 1 && B == A)
      B = PickQubit(Rng);
    return B;
  };
  for (unsigned N = 0; N < NumInstrs; ++N) {
    unsigned A = PickQubit(Rng);
    switch (PickOp(Rng)) {
    case 0:
      C.append(CircuitInstr::gate(GateKind::H, {}, {A}));
      break;
    case 1:
      C.append(CircuitInstr::gate(GateKind::S, {}, {A}));
      break;
    case 2:
      C.append(CircuitInstr::gate(GateKind::Sdg, {}, {A}));
      break;
    case 3:
      C.append(CircuitInstr::gate(GateKind::X, {}, {A}));
      break;
    case 4:
      C.append(CircuitInstr::gate(GateKind::Y, {}, {A}));
      break;
    case 5:
      C.append(CircuitInstr::gate(GateKind::Z, {}, {A}));
      break;
    case 6:
      C.append(CircuitInstr::gate(GateKind::X, {Other(A)}, {A}));
      break;
    case 7:
      C.append(CircuitInstr::gate(GateKind::Z, {Other(A)}, {A}));
      break;
    case 8:
      C.append(CircuitInstr::gate(GateKind::Swap, {}, {A, Other(A)}));
      break;
    case 9:
      C.append(CircuitInstr::measure(A, A));
      break;
    case 10:
      C.append(CircuitInstr::reset(A));
      break;
    case 11: {
      // Feed-forward: condition a Clifford correction on any bit.
      CircuitInstr Fix = CircuitInstr::gate(
          N % 2 ? GateKind::X : GateKind::Z, {}, {A});
      Fix.CondBit = static_cast<int>(PickQubit(Rng));
      Fix.CondVal = N % 3 != 0;
      C.append(Fix);
      break;
    }
    case 12:
      C.append(CircuitInstr::gate(GateKind::T, {}, {A}));
      break;
    case 13:
      C.append(CircuitInstr::gate(
          N % 2 ? GateKind::RY : GateKind::RX, {}, {A}, PickAngle(Rng)));
      break;
    case 14:
      C.append(CircuitInstr::gate(
          N % 2 ? GateKind::RZ : GateKind::P, {}, {A}, PickAngle(Rng)));
      break;
    default: {
      if (NumQubits < 3) {
        C.append(CircuitInstr::gate(GateKind::Tdg, {}, {A}));
        break;
      }
      unsigned B = Other(A), D = Other(A);
      while (D == B)
        D = Other(A);
      C.append(CircuitInstr::gate(N % 2 ? GateKind::X : GateKind::Z,
                                  {B, D}, {A})); // Toffoli / CCZ
      break;
    }
    }
  }
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  return C;
}

void expectBatchesBitExact(const std::vector<ShotResult> &Want,
                           const std::vector<ShotResult> &Got,
                           const char *Config, unsigned Trial) {
  ASSERT_EQ(Want.size(), Got.size()) << Config << " trial " << Trial;
  for (size_t S = 0; S < Want.size(); ++S)
    ASSERT_EQ(Want[S].Bits, Got[S].Bits)
        << Config << " trial " << Trial << " shot " << S;
}

//===----------------------------------------------------------------------===//
// Statevector: fused/parallel configurations vs the serial unfused reference
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, RandomCircuitsBitExactAcrossConfigs) {
  std::mt19937_64 Rng(0xD1FFEull);
  StatevectorBackend Sv;
  const unsigned Shots = 12;
  for (unsigned Trial = 0; Trial < 200; ++Trial) {
    unsigned NumQubits = 2 + Trial % 7; // 2..8 qubits
    Circuit C = randomCircuit(Rng, NumQubits, 18 + Trial % 24,
                              /*CliffordOnly=*/Trial % 4 == 0);
    uint64_t Seed = 1000 + Trial;

    RunOptions Reference;
    Reference.Jobs = 1;
    Reference.Fuse = false;
    std::vector<ShotResult> Want = Sv.runBatch(C, Shots, Seed, Reference);

    // The reference path must equal per-shot run() calls — the amortized
    // prefix and the batch machinery add nothing observable.
    for (unsigned S = 0; S < Shots; ++S)
      ASSERT_EQ(Want[S].Bits, Sv.run(C, deriveShotSeed(Seed, S)).Bits)
          << "reference vs run() trial " << Trial << " shot " << S;

    // Every execution-plan axis at once: block-fusion budget k, worker
    // count, and where the workers go (shot- vs amplitude-parallel, plus
    // the hybrid). All must replay the reference bit-exactly.
    struct Config {
      bool Fuse;
      unsigned FuseK;
      unsigned Jobs;
      ParallelMode Mode;
      const char *Name;
    };
    const Config Configs[] = {
        {false, 3, 4, ParallelMode::Shot, "unfused/shot/j4"},
        {false, 3, 4, ParallelMode::Amplitude, "unfused/amp/j4"},
        {true, 1, 1, ParallelMode::Shot, "fuse1/shot/j1"},
        {true, 1, 4, ParallelMode::Shot, "fuse1/shot/j4"},
        {true, 1, 4, ParallelMode::Amplitude, "fuse1/amp/j4"},
        {true, 2, 1, ParallelMode::Shot, "fuse2/shot/j1"},
        {true, 2, 4, ParallelMode::Shot, "fuse2/shot/j4"},
        {true, 2, 4, ParallelMode::Amplitude, "fuse2/amp/j4"},
        {true, 3, 1, ParallelMode::Shot, "fuse3/shot/j1"},
        {true, 3, 4, ParallelMode::Shot, "fuse3/shot/j4"},
        {true, 3, 4, ParallelMode::Amplitude, "fuse3/amp/j4"},
        {true, 3, 4, ParallelMode::Auto, "fuse3/auto/j4"},
    };
    for (const Config &Cfg : Configs) {
      RunOptions Opts;
      Opts.Jobs = Cfg.Jobs;
      Opts.Fuse = Cfg.Fuse;
      Opts.FuseMaxQubits = Cfg.FuseK;
      Opts.Parallel = Cfg.Mode;
      std::vector<ShotResult> Got = Sv.runBatch(C, Shots, Seed, Opts);
      expectBatchesBitExact(Want, Got, Cfg.Name, Trial);
    }
  }
}

//===----------------------------------------------------------------------===//
// Parameter sweeps: runSweep vs recompile-per-point, every execution plan
//===----------------------------------------------------------------------===//

/// Lifts every rotation-family gate of \p C into a symbolic angle over up
/// to three parameters with varied scales and offsets (degree-space linear
/// forms), returning how many gates were lifted.
unsigned parameterize(Circuit &C, std::mt19937_64 &Rng) {
  C.ParamNames = {"a", "b", "c"};
  std::uniform_real_distribution<double> PickScale(-2.0, 2.0);
  std::uniform_real_distribution<double> PickOfs(-90.0, 90.0);
  unsigned Lifted = 0;
  for (CircuitInstr &I : C.Instrs) {
    if (I.TheKind != CircuitInstr::Kind::Gate)
      continue;
    if (I.Gate != GateKind::RX && I.Gate != GateKind::RY &&
        I.Gate != GateKind::RZ && I.Gate != GateKind::P)
      continue;
    I.ParamIdx = static_cast<int>(Lifted % 3);
    I.ParamScale = PickScale(Rng);
    I.ParamOfs = PickOfs(Rng);
    I.Param = 0.0;
    ++Lifted;
  }
  return Lifted;
}

TEST(DifferentialTest, SweepsBitExactToRecompilePerPoint) {
  // The runSweep contract: Results[P] == runBatch(bindCircuit(C,
  // Points[P]), Shots, deriveSweepPointSeed(Seed, P), Opts) bit-for-bit,
  // under every execution plan. The fast path memoizes the fused
  // *structure* and re-materializes only angle-dependent matrices per
  // point; these trials are what keeps that a pure optimization.
  std::mt19937_64 Rng(0x5EE9ull);
  StatevectorBackend Sv;
  const unsigned Shots = 6;
  std::uniform_real_distribution<double> PickVal(-360.0, 360.0);
  for (unsigned Trial = 0; Trial < 25; ++Trial) {
    unsigned NumQubits = 2 + Trial % 5;
    Circuit C = randomCircuit(Rng, NumQubits, 14 + Trial % 18,
                              /*CliffordOnly=*/false);
    if (!parameterize(C, Rng))
      continue; // This trial rolled no rotations; nothing symbolic.
    std::vector<std::vector<double>> Points;
    for (unsigned P = 0; P < 4; ++P)
      Points.push_back({PickVal(Rng), PickVal(Rng), PickVal(Rng)});
    uint64_t Seed = 0xABC0 + Trial;

    struct Config {
      bool Fuse;
      unsigned FuseK;
      unsigned Jobs;
      ParallelMode Mode;
      const char *Name;
    };
    const Config Configs[] = {
        {false, 3, 1, ParallelMode::Shot, "sweep/unfused/j1"},
        {false, 3, 4, ParallelMode::Shot, "sweep/unfused/shot/j4"},
        {true, 1, 4, ParallelMode::Shot, "sweep/fuse1/shot/j4"},
        {true, 2, 4, ParallelMode::Amplitude, "sweep/fuse2/amp/j4"},
        {true, 3, 1, ParallelMode::Shot, "sweep/fuse3/shot/j1"},
        {true, 3, 4, ParallelMode::Amplitude, "sweep/fuse3/amp/j4"},
        {true, 3, 4, ParallelMode::Auto, "sweep/fuse3/auto/j4"},
    };
    for (const Config &Cfg : Configs) {
      RunOptions Opts;
      Opts.Jobs = Cfg.Jobs;
      Opts.Fuse = Cfg.Fuse;
      Opts.FuseMaxQubits = Cfg.FuseK;
      Opts.Parallel = Cfg.Mode;
      std::vector<std::vector<ShotResult>> Sweep =
          Sv.runSweep(C, Points, Shots, Seed, Opts);
      ASSERT_EQ(Sweep.size(), Points.size()) << Cfg.Name;
      for (size_t P = 0; P < Points.size(); ++P) {
        std::vector<ShotResult> Want =
            Sv.runBatch(bindCircuit(C, Points[P]), Shots,
                        deriveSweepPointSeed(Seed, P), Opts);
        expectBatchesBitExact(Want, Sweep[P], Cfg.Name, Trial);
      }
    }
  }
}

TEST(DifferentialTest, BlockFusedMatricesEqualGateProducts) {
  // The block-fusion property: a FusedOp::Block's matrix equals the
  // product of its constituent gates' full matrices over the block
  // support, computed here independently with the exported
  // gateBlockMatrix/blockMatmul utilities. A non-diagonal 3-qubit opener
  // guarantees every following gate lands in the same block.
  std::mt19937_64 Rng(0xB10Cull);
  std::uniform_int_distribution<unsigned> PickOp(0, 12);
  std::uniform_int_distribution<unsigned> PickQ(0, 2);
  std::uniform_real_distribution<double> Angle(-3.0, 3.0);
  for (unsigned Trial = 0; Trial < 60; ++Trial) {
    Circuit C;
    C.NumQubits = 3;
    C.NumBits = 3;
    // Toffoli opener: a non-diagonal gate spanning all three qubits, so
    // the block covers the full support from the first instruction and
    // every later gate merges into it.
    C.append(CircuitInstr::gate(GateKind::X, {0, 1}, {2}));
    unsigned NumGates = 4 + Trial % 12;
    for (unsigned N = 0; N < NumGates; ++N) {
      unsigned A = PickQ(Rng);
      unsigned B = (A + 1 + PickQ(Rng) % 2) % 3;
      switch (PickOp(Rng)) {
      case 0:
        C.append(CircuitInstr::gate(GateKind::H, {}, {A}));
        break;
      case 1:
        C.append(CircuitInstr::gate(GateKind::S, {}, {A}));
        break;
      case 2:
        C.append(CircuitInstr::gate(GateKind::T, {}, {A}));
        break;
      case 3:
        C.append(CircuitInstr::gate(GateKind::X, {}, {A}));
        break;
      case 4:
        C.append(CircuitInstr::gate(GateKind::Y, {}, {A}));
        break;
      case 5:
        C.append(CircuitInstr::gate(GateKind::RX, {}, {A}, Angle(Rng)));
        break;
      case 6:
        C.append(CircuitInstr::gate(GateKind::RY, {}, {A}, Angle(Rng)));
        break;
      case 7:
        C.append(CircuitInstr::gate(GateKind::RZ, {}, {A}, Angle(Rng)));
        break;
      case 8:
        C.append(CircuitInstr::gate(GateKind::P, {}, {A}, Angle(Rng)));
        break;
      case 9:
        C.append(CircuitInstr::gate(GateKind::X, {B}, {A}));
        break;
      case 10:
        C.append(CircuitInstr::gate(GateKind::Z, {B}, {A}));
        break;
      case 11:
        C.append(CircuitInstr::gate(GateKind::Swap, {}, {A, B}));
        break;
      default:
        C.append(CircuitInstr::gate(GateKind::X, {(A + 1) % 3, (A + 2) % 3},
                                    {A}));
        break;
      }
    }
    FusedCircuit FC = fuseCircuit(C);
    ASSERT_EQ(FC.Ops.size(), 1u) << "trial " << Trial << ": " << FC.summary();
    const FusedOp &Op = FC.Ops[0];
    ASSERT_EQ(Op.TheKind, FusedOp::Kind::Block) << "trial " << Trial;
    const std::vector<unsigned> Support = {0, 1, 2};
    ASSERT_EQ(Op.Qubits, Support);
    std::vector<std::complex<double>> Want =
        gateBlockMatrix(C.Instrs[0], Support);
    for (size_t N = 1; N < C.Instrs.size(); ++N)
      Want = blockMatmul(gateBlockMatrix(C.Instrs[N], Support), Want, 8);
    ASSERT_EQ(Op.BlockU.size(), Want.size());
    for (size_t I = 0; I < Want.size(); ++I)
      EXPECT_LT(std::abs(Op.BlockU[I] - Want[I]), 1e-12)
          << "trial " << Trial << " entry " << I;
  }
}

TEST(DifferentialTest, DuplicateControlsAreNotDroppedByFusion) {
  // Regression: a repeated control qubit (Controls={0,0}) ORs into one
  // mask bit in the engines — it is a plain CX, not a degenerate no-op.
  // The fusion pass must keep it (only control == target gates drop).
  Circuit C;
  C.NumQubits = 2;
  C.NumBits = 2;
  C.append(CircuitInstr::gate(GateKind::X, {}, {0}));
  C.append(CircuitInstr::gate(GateKind::X, {0, 0}, {1}));
  for (unsigned Q = 0; Q < 2; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  StatevectorBackend Sv;
  RunOptions Ref, Fused;
  Ref.Jobs = Fused.Jobs = 1;
  Ref.Fuse = false;
  std::vector<ShotResult> Want = Sv.runBatch(C, 1, 5, Ref);
  std::vector<ShotResult> Got = Sv.runBatch(C, 1, 5, Fused);
  ASSERT_EQ(Want[0].Bits, Got[0].Bits);
  EXPECT_TRUE(Want[0].Bits[0] && Want[0].Bits[1]); // X then CX: |11>

  // And a control-on-target gate still drops as the no-op it always was.
  Circuit D;
  D.NumQubits = 2;
  D.NumBits = 2;
  D.append(CircuitInstr::gate(GateKind::X, {1}, {1}));
  for (unsigned Q = 0; Q < 2; ++Q)
    D.append(CircuitInstr::measure(Q, Q));
  EXPECT_EQ(Sv.runBatch(D, 1, 5, Ref)[0].Bits,
            Sv.runBatch(D, 1, 5, Fused)[0].Bits);
}

TEST(DifferentialTest, FusionPlanCoversEveryGate) {
  // Structural invariant behind the differential battery: every gate of
  // the source circuit lands in the plan exactly once (fused, swept, or
  // passed through), and barriers never end up inside the prefix.
  std::mt19937_64 Rng(99);
  for (unsigned Trial = 0; Trial < 50; ++Trial) {
    Circuit C = randomCircuit(Rng, 2 + Trial % 5, 30, Trial % 2 == 0);
    FusedCircuit FC = fuseCircuit(C);
    ASSERT_EQ(FC.Source, &C);
    size_t GateInstrs = 0;
    for (const CircuitInstr &I : C.Instrs)
      if (I.TheKind == CircuitInstr::Kind::Gate)
        ++GateInstrs;
    EXPECT_EQ(FC.GatesIn, GateInstrs) << "trial " << Trial;
    ASSERT_LE(FC.UnconditionalPrefixOps, FC.Ops.size());
    for (size_t N = 0; N < FC.UnconditionalPrefixOps; ++N) {
      const FusedOp &Op = FC.Ops[N];
      if (Op.TheKind != FusedOp::Kind::Instr)
        continue;
      const CircuitInstr &I = C.Instrs[Op.InstrIndex];
      EXPECT_TRUE(I.TheKind == CircuitInstr::Kind::Gate && I.CondBit < 0)
          << "barrier inside prefix, trial " << Trial << " op " << N;
    }
  }
}

TEST(DifferentialTest, FusionCoalescesRotationRuns) {
  // A rotation cascade on one wire plus a CZ chain must actually shrink:
  // the plan is pointless if nothing fuses.
  Circuit C;
  C.NumQubits = 3;
  C.NumBits = 3;
  for (unsigned K = 0; K < 10; ++K)
    C.append(CircuitInstr::gate(GateKind::RY, {}, {0}, 0.1 * (K + 1)));
  for (unsigned K = 0; K < 6; ++K)
    C.append(CircuitInstr::gate(K % 2 ? GateKind::Z : GateKind::P, {1}, {2},
                                0.2 * (K + 1)));
  for (unsigned Q = 0; Q < 3; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  FusedCircuit FC = fuseCircuit(C);
  // 10 RYs -> one Unitary op; 6 controlled phases -> one Diag op; plus the
  // three measurements.
  EXPECT_EQ(FC.Ops.size(), 5u) << FC.summary();
  EXPECT_EQ(FC.GatesFused, 16u);
  EXPECT_EQ(FC.UnconditionalPrefixOps, 2u);
}

//===----------------------------------------------------------------------===//
// Stabilizer: parallel parity and cross-engine distributions
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, StabilizerParallelBitExact) {
  std::mt19937_64 Rng(0x57ABull);
  StabilizerBackend Stab;
  for (unsigned Trial = 0; Trial < 40; ++Trial) {
    Circuit C = randomCircuit(Rng, 2 + Trial % 6, 24, /*CliffordOnly=*/true);
    ASSERT_TRUE(analyzeCircuit(C).CliffordOnly);
    RunOptions Serial, Parallel;
    Serial.Jobs = 1;
    Parallel.Jobs = 4;
    std::vector<ShotResult> Want = Stab.runBatch(C, 16, Trial, Serial);
    std::vector<ShotResult> Got = Stab.runBatch(C, 16, Trial, Parallel);
    expectBatchesBitExact(Want, Got, "stab/j4", Trial);
  }
}

//===----------------------------------------------------------------------===//
// MPS: parallel parity, exact amplitudes, and cross-engine distributions
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, MpsParallelBitExact) {
  // The tensor-network engine honors the same execution-plan contract as
  // the others: jobs=1 and jobs=4 replay identical per-shot bits, dynamic
  // circuits (mid-circuit measure, reset, feed-forward) included.
  std::mt19937_64 Rng(0x3975ull);
  MPSBackend Mps;
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    Circuit C = randomCircuit(Rng, 2 + Trial % 5, 20, /*CliffordOnly=*/false);
    RunOptions Serial, Parallel;
    Serial.Jobs = 1;
    Parallel.Jobs = 4;
    std::vector<ShotResult> Want = Mps.runBatch(C, 16, Trial, Serial);
    std::vector<ShotResult> Got = Mps.runBatch(C, 16, Trial, Parallel);
    expectBatchesBitExact(Want, Got, "mps/j4", Trial);
  }
}

TEST(DifferentialTest, MpsExactAmplitudesAtUnlimitedChi) {
  // With chi unlimited every SVD split is exact: the MPS must reproduce
  // the dense amplitudes of random gate-only circuits to rounding.
  std::mt19937_64 Rng(0xAC1Dull);
  for (unsigned Trial = 0; Trial < 12; ++Trial) {
    unsigned NumQubits = 2 + Trial % 7; // 2..8
    Circuit Raw = randomCircuit(Rng, NumQubits, 24, /*CliffordOnly=*/false);
    Circuit C;
    C.NumQubits = NumQubits;
    for (const CircuitInstr &I : Raw.Instrs)
      if (I.TheKind == CircuitInstr::Kind::Gate && I.CondBit < 0)
        C.append(I);
    MPSState Mps(NumQubits, /*Chi=*/0);
    StateVector Sv(NumQubits);
    for (const CircuitInstr &I : C.Instrs) {
      Mps.apply(I);
      Sv.apply(I.Gate, I.Controls, I.Targets, I.Param);
    }
    std::vector<MPSState::Cplx> Amp = Mps.statevector();
    for (uint64_t Idx = 0; Idx < (uint64_t(1) << NumQubits); ++Idx)
      ASSERT_LT(std::abs(Amp[Idx] - Sv.amplitudes()[Idx]), 1e-8)
          << "trial " << Trial << " index " << Idx;
    EXPECT_EQ(Mps.truncationError(), 0.0) << "trial " << Trial;
  }
}

TEST(DifferentialTest, MpsMatchesStatevectorDistributions) {
  // Distributional parity against the dense engine under every dense
  // execution plan {fuse on/off} x {jobs 1,4} — the engines consume RNG
  // differently, so the comparison is total variation, not bit equality.
  std::mt19937_64 Rng(0x395Dull);
  const unsigned Shots = 2500;
  struct Config {
    bool Fuse;
    unsigned Jobs;
    const char *Name;
  };
  const Config Configs[] = {
      {false, 1, "sv-unfused/j1"},
      {false, 4, "sv-unfused/j4"},
      {true, 1, "sv-fused/j1"},
      {true, 4, "sv-fused/j4"},
  };
  for (unsigned Trial = 0; Trial < 4; ++Trial) {
    Circuit C = randomCircuit(Rng, 3 + Trial, 18, /*CliffordOnly=*/false);
    std::map<std::string, unsigned> Mps =
        runShots(C, Shots, 21 + Trial, BackendKind::MPS);
    for (const Config &Cfg : Configs) {
      RunOptions Opts;
      Opts.Fuse = Cfg.Fuse;
      Opts.Jobs = Cfg.Jobs;
      std::map<std::string, unsigned> Sv = runShots(
          C, Shots, 700 + Trial, BackendKind::Statevector, Opts);
      EXPECT_LT(tvDistance(Mps, Sv, Shots), 0.11)
          << Cfg.Name << " trial " << Trial;
    }
  }
}

TEST(DifferentialTest, MpsMatchesStatevectorOnStructuredLowEntanglement) {
  // A 16-qubit brickwork ladder at generic angles: wide enough that the
  // bond structure matters, shallow enough that the default chi is exact.
  Circuit C;
  C.NumQubits = 16;
  C.NumBits = 16;
  for (unsigned Q = 0; Q < 16; ++Q)
    C.append(CircuitInstr::gate(GateKind::RY, {}, {Q}, 0.2 + 0.05 * Q));
  for (unsigned Layer = 0; Layer < 2; ++Layer) {
    for (unsigned Q = Layer % 2; Q + 1 < 16; Q += 2) {
      C.append(CircuitInstr::gate(GateKind::X, {Q}, {Q + 1}));
      C.append(CircuitInstr::gate(GateKind::RZ, {}, {Q + 1}, 0.6));
      C.append(CircuitInstr::gate(GateKind::X, {Q}, {Q + 1}));
    }
    for (unsigned Q = 0; Q < 16; ++Q)
      C.append(CircuitInstr::gate(GateKind::RX, {}, {Q}, 0.3));
  }
  // Exact check first: the full 2^16 amplitude vectors must agree (the
  // sampled space is too large for a meaningful TV comparison).
  MPSState Exact(16, /*Chi=*/0);
  StateVector Dense(16);
  for (const CircuitInstr &I : C.Instrs) {
    Exact.apply(I);
    Dense.apply(I.Gate, I.Controls, I.Targets, I.Param);
  }
  std::vector<MPSState::Cplx> Amp = Exact.statevector();
  for (uint64_t Idx = 0; Idx < (uint64_t(1) << 16); ++Idx)
    ASSERT_LT(std::abs(Amp[Idx] - Dense.amplitudes()[Idx]), 1e-8)
        << "index " << Idx;
  // Two brickwork layers can at most quadruple any cut's rank.
  EXPECT_LE(Exact.maxBond(), 4u);

  // Sampled check on per-qubit marginals, where counting statistics are
  // sound at this shot budget.
  for (unsigned Q = 0; Q < 16; ++Q)
    C.append(CircuitInstr::measure(Q, Q));
  const unsigned Shots = 2000;
  std::map<std::string, unsigned> Mps =
      runShots(C, Shots, 31, BackendKind::MPS);
  std::map<std::string, unsigned> Sv =
      runShots(C, Shots, 450, BackendKind::Statevector);
  for (unsigned Q = 0; Q < 16; ++Q) {
    auto Marginal = [&](const std::map<std::string, unsigned> &Counts) {
      uint64_t Ones = 0;
      for (const auto &KV : Counts)
        if (KV.first[Q] == '1')
          Ones += KV.second;
      return double(Ones) / Shots;
    };
    EXPECT_NEAR(Marginal(Mps), Marginal(Sv), 0.06) << "qubit " << Q;
  }
}

TEST(DifferentialTest, StabilizerMatchesStatevectorDistributions) {
  // The engines sample with different RNG-consumption patterns, so parity
  // here is distributional: total variation within sampling noise.
  std::mt19937_64 Rng(0xD15Cull);
  const unsigned Shots = 3000;
  for (unsigned Trial = 0; Trial < 6; ++Trial) {
    Circuit C = randomCircuit(Rng, 2 + Trial, 20, /*CliffordOnly=*/true);
    RunOptions SvOpts; // fused, parallel: the optimized dense path
    std::map<std::string, unsigned> Sv =
        runShots(C, Shots, 11 + Trial, BackendKind::Statevector, SvOpts);
    std::map<std::string, unsigned> Stab =
        runShots(C, Shots, 800 + Trial, BackendKind::Stabilizer);
    EXPECT_LT(tvDistance(Sv, Stab, Shots), 0.11) << "trial " << Trial;
  }
}

} // namespace
