//===- SynthTest.cpp - Basis translation synthesis correctness tests ------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for §6.3: every synthesized basis-translation circuit is
/// checked against a reference unitary built directly from the translation's
/// definition (§2.2): U = sum_j |out_j><in_j| + (I - P_span).
///
//===----------------------------------------------------------------------===//

#include "qcirc/Flatten.h"
#include "sim/Simulator.h"
#include "synth/BasisSynth.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

using namespace asdf;

namespace {

using Matrix = std::vector<std::vector<Amplitude>>;

/// Single-qubit eigenvectors of each primitive basis.
std::pair<Amplitude, Amplitude> qubitVector(PrimitiveBasis Prim,
                                            bool Minus) {
  const double S2 = 1.0 / std::sqrt(2.0);
  const Amplitude I(0.0, 1.0);
  switch (Prim) {
  case PrimitiveBasis::Std:
    return Minus ? std::make_pair(Amplitude(0), Amplitude(1))
                 : std::make_pair(Amplitude(1), Amplitude(0));
  case PrimitiveBasis::Pm:
    return Minus ? std::make_pair(Amplitude(S2), Amplitude(-S2))
                 : std::make_pair(Amplitude(S2), Amplitude(S2));
  case PrimitiveBasis::Ij:
    return Minus ? std::make_pair(Amplitude(S2), -I * S2)
                 : std::make_pair(Amplitude(S2), I * S2);
  case PrimitiveBasis::Fourier:
    break;
  }
  return {Amplitude(1), Amplitude(0)};
}

/// State vector (over Dim qubits) of one basis vector of an element.
std::vector<Amplitude> elementVectorState(const BasisElement &El,
                                          uint64_t Index) {
  unsigned D = El.dim();
  uint64_t Size = uint64_t(1) << D;
  std::vector<Amplitude> V(Size, Amplitude(0));
  if (El.isBuiltin() && El.prim() == PrimitiveBasis::Fourier) {
    // fourier vector k: QFT|k> = sum_x e^{2 pi i k x / 2^D} |x> / sqrt(2^D).
    double Norm = 1.0 / std::sqrt(double(Size));
    for (uint64_t X = 0; X < Size; ++X) {
      double Ang = 2.0 * M_PI * double(Index) * double(X) / double(Size);
      V[X] = Norm * Amplitude(std::cos(Ang), std::sin(Ang));
    }
    return V;
  }
  PrimitiveBasis Prim;
  uint64_t Bits;
  double Phase = 0.0;
  if (El.isBuiltin()) {
    Prim = El.prim();
    Bits = Index;
  } else {
    const BasisVector &BV = El.literalValue().Vectors[Index];
    Prim = BV.Prim;
    Bits = BV.Eigenbits;
    if (BV.HasPhase)
      Phase = BV.Phase;
  }
  // Product of single-qubit vectors.
  V[0] = Amplitude(1);
  uint64_t Cur = 1;
  for (unsigned Q = 0; Q < D; ++Q) {
    auto [A0, A1] = qubitVector(Prim, bitAt(Bits, D, Q));
    std::vector<Amplitude> Next(Cur * 2, Amplitude(0));
    for (uint64_t X = 0; X < Cur; ++X) {
      Next[X * 2] = V[X] * A0;
      Next[X * 2 + 1] = V[X] * A1;
    }
    Cur *= 2;
    for (uint64_t X = 0; X < Cur; ++X)
      V[X] = Next[X];
  }
  V.resize(Size);
  Amplitude Ph(std::cos(Phase), std::sin(Phase));
  for (Amplitude &A : V)
    A *= Ph;
  return V;
}

/// Number of vectors an element enumerates.
uint64_t elementVectorCount(const BasisElement &El) {
  if (El.isBuiltin())
    return uint64_t(1) << El.dim();
  return El.literalValue().Vectors.size();
}

/// State of the J-th vector of a whole canon basis (element-major order).
std::vector<Amplitude> basisVectorState(const Basis &B, uint64_t J) {
  std::vector<Amplitude> State = {Amplitude(1)};
  // Element-major: the FIRST element varies slowest.
  std::vector<uint64_t> Radix;
  for (const BasisElement &El : B.elements())
    Radix.push_back(elementVectorCount(El));
  std::vector<uint64_t> Digits(Radix.size());
  for (unsigned I = Radix.size(); I-- > 0;) {
    Digits[I] = J % Radix[I];
    J /= Radix[I];
  }
  for (unsigned I = 0; I < B.elements().size(); ++I) {
    std::vector<Amplitude> Piece =
        elementVectorState(B.elements()[I], Digits[I]);
    std::vector<Amplitude> Next(State.size() * Piece.size());
    for (uint64_t X = 0; X < State.size(); ++X)
      for (uint64_t Y = 0; Y < Piece.size(); ++Y)
        Next[X * Piece.size() + Y] = State[X] * Piece[Y];
    State = std::move(Next);
  }
  return State;
}

/// Builds the reference unitary of a translation per §2.2:
/// U = sum_j |out_j><in_j| + (I - P) where P projects onto span(b_in).
Matrix referenceUnitary(const Basis &In, const Basis &Out) {
  unsigned N = In.dim();
  uint64_t Dim = uint64_t(1) << N;
  uint64_t Count = 1;
  for (const BasisElement &El : In.elements())
    Count *= elementVectorCount(El);
  Matrix U(Dim, std::vector<Amplitude>(Dim, Amplitude(0)));
  Matrix P(Dim, std::vector<Amplitude>(Dim, Amplitude(0)));
  for (uint64_t J = 0; J < Count; ++J) {
    std::vector<Amplitude> VIn = basisVectorState(In, J);
    std::vector<Amplitude> VOut = basisVectorState(Out, J);
    for (uint64_t R = 0; R < Dim; ++R)
      for (uint64_t C = 0; C < Dim; ++C) {
        U[R][C] += VOut[R] * std::conj(VIn[C]);
        P[R][C] += VIn[R] * std::conj(VIn[C]);
      }
  }
  for (uint64_t R = 0; R < Dim; ++R)
    for (uint64_t C = 0; C < Dim; ++C)
      U[R][C] += (R == C ? Amplitude(1) : Amplitude(0)) - P[R][C];
  return U;
}

/// Synthesizes In >> Out into a flat circuit via the QCircuit machinery.
Circuit synthesizeToCircuit(const Basis &In, const Basis &Out) {
  Module M;
  IRFunction *F = M.create("t");
  unsigned N = In.dim();
  Builder B(&F->Body);
  std::vector<Value *> Qs;
  for (unsigned I = 0; I < N; ++I)
    Qs.push_back(B.qalloc());
  GateEmitter E(B, Qs);
  EXPECT_TRUE(synthesizeTranslation(E, In, Out));
  for (unsigned I = 0; I < N; ++I)
    B.qfreez(E.wire(I));
  B.ret({});
  DiagnosticEngine Diags;
  std::optional<Circuit> C = flattenToCircuit(M, "t", Diags);
  EXPECT_TRUE(C.has_value()) << Diags.str();
  return C ? std::move(*C) : Circuit();
}

/// Checks a synthesized circuit against the reference unitary. The circuit
/// may use ancillas; they must start and end in |0>.
void expectTranslationCorrect(const Basis &In, const Basis &Out) {
  Circuit C = synthesizeToCircuit(In, Out);
  unsigned N = In.dim();
  ASSERT_GE(C.NumQubits, N);
  ASSERT_LE(C.NumQubits, 14u);
  Matrix Ref = referenceUnitary(In, Out);
  uint64_t DataDim = uint64_t(1) << N;
  unsigned Anc = C.NumQubits - N;
  for (uint64_t K = 0; K < DataDim; ++K) {
    StateVector SV(C.NumQubits);
    // Data qubits leftmost; ancillas rightmost start at |0>.
    SV.setBasisState(K << Anc);
    for (const CircuitInstr &I : C.Instrs) {
      ASSERT_EQ(I.TheKind, CircuitInstr::Kind::Gate);
      SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
    }
    for (uint64_t R = 0; R < (uint64_t(1) << C.NumQubits); ++R) {
      Amplitude Got = SV.amplitudes()[R];
      Amplitude Want = (R & ((uint64_t(1) << Anc) - 1)) == 0
                           ? Ref[R >> Anc][K]
                           : Amplitude(0);
      ASSERT_NEAR(std::abs(Got - Want), 0.0, 1e-9)
          << "translation " << In.str() << " >> " << Out.str()
          << " wrong at column " << K << ", row " << R;
    }
  }
}

Basis lit(std::initializer_list<const char *> Strs) {
  std::vector<BasisVector> Vecs;
  for (const char *S : Strs)
    Vecs.push_back(BasisVector::fromString(S));
  return Basis::literal(BasisLiteral(std::move(Vecs)));
}

//===----------------------------------------------------------------------===//
// Unit pieces
//===----------------------------------------------------------------------===//

TEST(MMDTest, SynthesizesSmallPermutations) {
  // Swap of two 1-bit values: X.
  std::vector<McxGate> G = synthesizePermutation({1, 0}, 1);
  ASSERT_EQ(G.size(), 1u);
  EXPECT_EQ(G[0].ControlMask, 0u);

  // CNOT permutation: 00,01,11,10 (target = low bit, control = high bit).
  std::vector<McxGate> G2 = synthesizePermutation({0, 1, 3, 2}, 2);
  ASSERT_EQ(G2.size(), 1u);
  EXPECT_EQ(G2[0].ControlMask, 2u);
  EXPECT_EQ(G2[0].Target, 0u);
}

class MMDRandomPerm : public ::testing::TestWithParam<unsigned> {};

TEST_P(MMDRandomPerm, RealizesPermutation) {
  unsigned Bits = 3;
  uint64_t Size = 8;
  std::mt19937_64 Rng(GetParam());
  std::vector<uint64_t> Perm(Size);
  for (uint64_t I = 0; I < Size; ++I)
    Perm[I] = I;
  std::shuffle(Perm.begin(), Perm.end(), Rng);
  std::vector<McxGate> Gates = synthesizePermutation(Perm, Bits);
  // Apply the gates classically and verify.
  for (uint64_t X = 0; X < Size; ++X) {
    uint64_t V = X;
    for (const McxGate &G : Gates)
      if ((V & G.ControlMask) == G.ControlMask)
        V ^= uint64_t(1) << G.Target;
    EXPECT_EQ(V, Perm[X]) << "input " << X;
  }
}

INSTANTIATE_TEST_SUITE_P(Synth, MMDRandomPerm,
                         ::testing::Range(0u, 20u));

TEST(E6Test, UnconditionalWhenPrimsMatch) {
  std::vector<Standardization> L, R;
  determineStandardizations(Basis::builtin(PrimitiveBasis::Pm, 3),
                            Basis::builtin(PrimitiveBasis::Pm, 3), L, R);
  ASSERT_EQ(L.size(), 1u);
  EXPECT_FALSE(L[0].Conditional);
}

TEST(E6Test, ConditionalWhenPrimsDiffer) {
  std::vector<Standardization> L, R;
  determineStandardizations(Basis::builtin(PrimitiveBasis::Pm, 3),
                            Basis::builtin(PrimitiveBasis::Std, 3), L, R);
  ASSERT_EQ(L.size(), 1u);
  EXPECT_TRUE(L[0].Conditional);
  EXPECT_EQ(L[0].Prim, PrimitiveBasis::Pm);
}

TEST(E6Test, InseparableFourierPadding) {
  // Fig. E14: std + fourier[3] >> fourier[3] + std.
  Basis In = Basis::builtin(PrimitiveBasis::Std, 1)
                 .tensor(Basis::builtin(PrimitiveBasis::Fourier, 3));
  Basis Out = Basis::builtin(PrimitiveBasis::Fourier, 3)
                  .tensor(Basis::builtin(PrimitiveBasis::Std, 1));
  std::vector<Standardization> L, R;
  determineStandardizations(In, Out, L, R);
  // Left: std@0 (cond), fourier[3]@1 (cond). Right: fourier[3]@0 (cond),
  // std@3 (cond).
  ASSERT_EQ(L.size(), 2u);
  EXPECT_EQ(L[1].Prim, PrimitiveBasis::Fourier);
  EXPECT_EQ(L[1].Offset, 1u);
  EXPECT_EQ(L[1].Dim, 3u);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0].Prim, PrimitiveBasis::Fourier);
  EXPECT_EQ(R[0].Offset, 0u);
}

TEST(AlignTest, PredicateAndActiveSplit) {
  // {'1'} + std >> {'11','10'} (Appendix F).
  Basis In = lit({"1"}).tensor(Basis::builtin(PrimitiveBasis::Std, 1));
  Basis Out = lit({"11", "10"});
  std::vector<AlignedPair> Pairs =
      alignTranslation(standardizedBasis(In), standardizedBasis(Out));
  ASSERT_EQ(Pairs.size(), 2u);
  EXPECT_TRUE(Pairs[0].Identical); // {'1'} predicate
  EXPECT_FALSE(Pairs[1].Identical);
  // Active pair maps 0 -> 1, 1 -> 0.
  EXPECT_EQ(Pairs[1].In.Vectors[0].Eigenbits, 0u);
  EXPECT_EQ(Pairs[1].Out.Vectors[0].Eigenbits, 1u);
}

TEST(AlignTest, MergeWhenNotFactorable) {
  // Appendix F: {'0','1'} + {'0','1'} >> {'00','10','01','11'} cannot be
  // factored; merging must kick in.
  Basis In = lit({"0", "1"}).tensor(lit({"0", "1"}));
  Basis Out = lit({"00", "10", "01", "11"});
  std::vector<AlignedPair> Pairs = alignTranslation(In, Out);
  ASSERT_EQ(Pairs.size(), 1u);
  EXPECT_EQ(Pairs[0].In.Dim, 2u);
  EXPECT_EQ(Pairs[0].In.Vectors.size(), 4u);
}

//===----------------------------------------------------------------------===//
// End-to-end synthesis correctness vs the §2.2 semantics
//===----------------------------------------------------------------------===//

TEST(TranslationTest, SwapExample) {
  // §2.2: {'01','10'} >> {'10','01'} is a SWAP gate.
  expectTranslationCorrect(lit({"01", "10"}), lit({"10", "01"}));
}

TEST(TranslationTest, StdFlipIsX) {
  expectTranslationCorrect(lit({"0", "1"}), lit({"1", "0"}));
}

TEST(TranslationTest, PmToStdIsHadamard) {
  expectTranslationCorrect(Basis::builtin(PrimitiveBasis::Pm, 2),
                           Basis::builtin(PrimitiveBasis::Std, 2));
}

TEST(TranslationTest, IjRoundTrip) {
  expectTranslationCorrect(Basis::builtin(PrimitiveBasis::Ij, 1),
                           Basis::builtin(PrimitiveBasis::Std, 1));
  expectTranslationCorrect(Basis::builtin(PrimitiveBasis::Std, 1),
                           Basis::builtin(PrimitiveBasis::Ij, 1));
}

TEST(TranslationTest, Figure7ConditionalStandardization) {
  // {'m'} + ij >> {'m'} + pm.
  Basis In = lit({"m"}).tensor(Basis::builtin(PrimitiveBasis::Ij, 1));
  Basis Out = lit({"m"}).tensor(Basis::builtin(PrimitiveBasis::Pm, 1));
  expectTranslationCorrect(In, Out);
}

TEST(TranslationTest, Figure8GroverDiffuserPhase) {
  // {'p'[3]} >> {-'p'[3]}.
  BasisVector P3 = BasisVector::fromString("ppp");
  BasisVector NegP3(PrimitiveBasis::Pm, 3, 0, M_PI);
  expectTranslationCorrect(Basis::literal(BasisLiteral({P3})),
                           Basis::literal(BasisLiteral({NegP3})));
}

TEST(TranslationTest, Figure9AlignmentExample) {
  // {'01','10'} + {'0','1'} >> {'101','100','011','010'}.
  Basis In = lit({"01", "10"}).tensor(lit({"0", "1"}));
  Basis Out = lit({"101", "100", "011", "010"});
  expectTranslationCorrect(In, Out);
}

TEST(TranslationTest, PredicatedFlipIsCX) {
  // {'1'} + {'0','1'} >> {'1'} + {'1','0'}: controlled X.
  Basis In = lit({"1"}).tensor(lit({"0", "1"}));
  Basis Out = lit({"1"}).tensor(lit({"1", "0"}));
  expectTranslationCorrect(In, Out);
}

TEST(TranslationTest, ZeroPolarityPredicate) {
  Basis In = lit({"0"}).tensor(lit({"0", "1"}));
  Basis Out = lit({"0"}).tensor(lit({"1", "0"}));
  expectTranslationCorrect(In, Out);
}

TEST(TranslationTest, PmPredicate) {
  // {'m'} & X: predicate in the pm basis.
  Basis In = lit({"m"}).tensor(lit({"0", "1"}));
  Basis Out = lit({"m"}).tensor(lit({"1", "0"}));
  expectTranslationCorrect(In, Out);
}

TEST(TranslationTest, MultiVectorPredicateUsesIndicator) {
  // {'00','11'} & X: span-membership predicate.
  Basis In = lit({"00", "11"}).tensor(lit({"0", "1"}));
  Basis Out = lit({"00", "11"}).tensor(lit({"1", "0"}));
  expectTranslationCorrect(In, Out);
}

TEST(TranslationTest, FourierBasisTranslation) {
  expectTranslationCorrect(Basis::builtin(PrimitiveBasis::Fourier, 2),
                           Basis::builtin(PrimitiveBasis::Std, 2));
  expectTranslationCorrect(Basis::builtin(PrimitiveBasis::Std, 2),
                           Basis::builtin(PrimitiveBasis::Fourier, 2));
}

TEST(TranslationTest, InseparableFourierOverlap) {
  // Fig. E14: std + fourier[2] >> fourier[2] + std.
  Basis In = Basis::builtin(PrimitiveBasis::Std, 1)
                 .tensor(Basis::builtin(PrimitiveBasis::Fourier, 2));
  Basis Out = Basis::builtin(PrimitiveBasis::Fourier, 2)
                  .tensor(Basis::builtin(PrimitiveBasis::Std, 1));
  expectTranslationCorrect(In, Out);
}

TEST(TranslationTest, PhasedVectorPair) {
  // {'0','1'@45} >> {'0'@-30,'1'}.
  BasisVector V0(PrimitiveBasis::Std, 1, 0);
  BasisVector V1P(PrimitiveBasis::Std, 1, 1, M_PI / 4);
  BasisVector V0P(PrimitiveBasis::Std, 1, 0, -M_PI / 6);
  BasisVector V1(PrimitiveBasis::Std, 1, 1);
  expectTranslationCorrect(Basis::literal(BasisLiteral({V0, V1P})),
                           Basis::literal(BasisLiteral({V0P, V1})));
}

TEST(TranslationTest, CyclePermutation) {
  // 3-cycle on two qubits: 00 -> 01 -> 10 -> 00.
  expectTranslationCorrect(lit({"00", "01", "10"}),
                           lit({"01", "10", "00"}));
}

TEST(TranslationTest, MixedPrimitiveSides) {
  // pm >> ij on 1 qubit with a phase: nontrivial (de)standardization.
  expectTranslationCorrect(Basis::builtin(PrimitiveBasis::Pm, 1),
                           Basis::builtin(PrimitiveBasis::Ij, 1));
}

TEST(TranslationTest, PartialSpanIdentityOutside) {
  // {'01','10'} >> {'10','01'} leaves |00> and |11> alone; checked by the
  // reference unitary construction automatically.
  expectTranslationCorrect(lit({"01", "10"}), lit({"10", "01"}));
}

// Property sweep: random std-literal permutation translations on 3 qubits.
class RandomTranslation : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomTranslation, MatchesReference) {
  std::mt19937_64 Rng(GetParam() * 7919 + 13);
  unsigned Dim = 2 + (GetParam() % 2);
  uint64_t Size = uint64_t(1) << Dim;
  // Pick a random subset (even a partial span) and a random permutation of
  // it.
  std::vector<uint64_t> All(Size);
  for (uint64_t I = 0; I < Size; ++I)
    All[I] = I;
  std::shuffle(All.begin(), All.end(), Rng);
  unsigned Count = 2 + Rng() % (Size - 1);
  std::vector<uint64_t> InBits(All.begin(), All.begin() + Count);
  std::vector<uint64_t> OutBits = InBits;
  std::shuffle(OutBits.begin(), OutBits.end(), Rng);
  std::vector<BasisVector> InV, OutV;
  for (unsigned I = 0; I < Count; ++I) {
    InV.push_back(BasisVector(PrimitiveBasis::Std, Dim, InBits[I]));
    OutV.push_back(BasisVector(PrimitiveBasis::Std, Dim, OutBits[I]));
  }
  expectTranslationCorrect(Basis::literal(BasisLiteral(InV)),
                           Basis::literal(BasisLiteral(OutV)));
}

INSTANTIATE_TEST_SUITE_P(Synth, RandomTranslation,
                         ::testing::Range(0u, 25u));

} // namespace
