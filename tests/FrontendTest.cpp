//===- FrontendTest.cpp - Lexer/parser/typechecker/canonicalizer tests ----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Canonicalize.h"
#include "ast/Expand.h"
#include "ast/Parser.h"
#include "ast/TypeChecker.h"

#include <gtest/gtest.h>

using namespace asdf;

namespace {

/// The Bernstein-Vazirani program of Fig. 1, in our DSL.
const char *BVSource = R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}

qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign \
        | pm[N] >> std[N] \
        | std[N].measure
}
)";

/// Quantum teleportation (Fig. C13), in our DSL.
const char *TeleportSource = R"(
qpu teleport(secret: qubit) -> qubit {
    alice, bob = 'p0' | '1' & std.flip
    m_pm, m_std = secret + alice | '1' & std.flip | (pm + std).measure
    secret_teleported = bob | (pm.flip if m_std else id) \
        | (std.flip if m_pm else id)
    return secret_teleported
}
)";

std::unique_ptr<Program> parseOk(const char *Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  return P;
}

/// Parses, expands (with B-V style bindings), and type checks.
std::unique_ptr<Program> frontendOk(const char *Source,
                                    const ProgramBindings &Bindings) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Source, Diags);
  if (!P) {
    ADD_FAILURE() << "parse failed: " << Diags.str();
    return nullptr;
  }
  std::unique_ptr<Program> E = expandProgram(*P, Bindings, Diags);
  if (!E) {
    ADD_FAILURE() << "expand failed: " << Diags.str();
    return nullptr;
  }
  if (!typeCheckProgram(*E, Diags)) {
    ADD_FAILURE() << "type check failed: " << Diags.str();
    return nullptr;
  }
  return E;
}

ProgramBindings bvBindings(const std::string &Secret) {
  ProgramBindings B;
  B.Captures["f"]["secret"] = CaptureValue::bitsFromString(Secret);
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  return B;
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, TokenizesPipeline) {
  DiagnosticEngine Diags;
  Lexer L("'p'[4] | pm[4] >> std[4]", Diags);
  ASSERT_FALSE(Diags.hadError());
  std::vector<Token::Kind> Kinds;
  for (const Token &T : L.tokens())
    Kinds.push_back(T.TheKind);
  using TK = Token::Kind;
  std::vector<TK> Expected = {
      TK::QubitLit, TK::LBracket, TK::Integer,    TK::RBracket, TK::Pipe,
      TK::Identifier, TK::LBracket, TK::Integer,  TK::RBracket, TK::Shift,
      TK::Identifier, TK::LBracket, TK::Integer,  TK::RBracket, TK::Newline,
      TK::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, LineContinuationJoinsLines) {
  DiagnosticEngine Diags;
  Lexer L("a \\\n b", Diags);
  ASSERT_FALSE(Diags.hadError());
  // a, b, newline, eof: no newline between a and b.
  EXPECT_EQ(L.tokens().size(), 4u);
}

TEST(LexerTest, CommentsIgnored) {
  DiagnosticEngine Diags;
  Lexer L("a # comment\nb // another\n", Diags);
  ASSERT_FALSE(Diags.hadError());
  unsigned Idents = 0;
  for (const Token &T : L.tokens())
    if (T.is(Token::Kind::Identifier))
      ++Idents;
  EXPECT_EQ(Idents, 2u);
}

TEST(LexerTest, ArrowVsMinus) {
  DiagnosticEngine Diags;
  Lexer L("-> -'p'", Diags);
  ASSERT_FALSE(Diags.hadError());
  EXPECT_TRUE(L.tokens()[0].is(Token::Kind::Arrow));
  EXPECT_TRUE(L.tokens()[1].is(Token::Kind::Minus));
  EXPECT_TRUE(L.tokens()[2].is(Token::Kind::QubitLit));
}

TEST(LexerTest, UnterminatedQubitLiteralErrors) {
  DiagnosticEngine Diags;
  Lexer L("'p0", Diags);
  EXPECT_TRUE(Diags.hadError());
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, ParsesBernsteinVazirani) {
  std::unique_ptr<Program> P = parseOk(BVSource);
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Functions.size(), 2u);
  EXPECT_TRUE(P->Functions[0]->isClassical());
  EXPECT_TRUE(P->Functions[1]->isQpu());
  EXPECT_EQ(P->Functions[1]->DimVars.size(), 1u);
}

TEST(ParserTest, ParsesTeleport) {
  std::unique_ptr<Program> P = parseOk(TeleportSource);
  ASSERT_TRUE(P);
  FunctionDef *F = P->lookup("teleport");
  ASSERT_TRUE(F);
  EXPECT_EQ(F->Body.size(), 4u);
}

TEST(ParserTest, PrecedencePipeLoosest) {
  std::unique_ptr<Program> P =
      parseOk("qpu k() -> bit { return 'p' | pm >> std | std.measure }\n");
  ASSERT_TRUE(P);
  const auto *Ret =
      cast<ReturnStmt>(P->Functions[0]->Body.front().get());
  // Top node must be a pipe whose function is the measure.
  const auto *Outer = dyn_cast<PipeExpr>(Ret->Value.get());
  ASSERT_TRUE(Outer);
  EXPECT_TRUE(isa<MeasureExpr>(Outer->Func.get()));
  const auto *Inner = dyn_cast<PipeExpr>(Outer->Value.get());
  ASSERT_TRUE(Inner);
  EXPECT_TRUE(isa<BasisTranslationExpr>(Inner->Func.get()));
}

TEST(ParserTest, PrecedenceTensorTighterThanShift) {
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit[2]) -> qubit[2] { return q | std + std >> pm + pm }\n");
  ASSERT_TRUE(P);
  const auto *Ret = cast<ReturnStmt>(P->Functions[0]->Body.front().get());
  const auto *Pipe = cast<PipeExpr>(Ret->Value.get());
  const auto *BT = dyn_cast<BasisTranslationExpr>(Pipe->Func.get());
  ASSERT_TRUE(BT);
  EXPECT_TRUE(isa<TensorExpr>(BT->InBasis.get()));
  EXPECT_TRUE(isa<TensorExpr>(BT->OutBasis.get()));
}

TEST(ParserTest, NegatedVectorInBasisLiteral) {
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit) -> qubit { return q | {'0','1'} >> {-'1','0'} }\n");
  ASSERT_TRUE(P);
}

TEST(ParserTest, PhaseAnnotation) {
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit) -> qubit { return q | {'0','1'} >> {'0','1'@45} }\n");
  ASSERT_TRUE(P);
}

TEST(ParserTest, MissingReturnTypeStillParses) {
  DiagnosticEngine Diags;
  // Syntax ok; the *type checker* rejects missing return types for qpu.
  std::unique_ptr<Program> P =
      parseProgram("qpu k(q: qubit) { return q }\n", Diags);
  EXPECT_TRUE(P != nullptr);
}

TEST(ParserTest, SyntaxErrorReported) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram("qpu k( { }", Diags), nullptr);
  EXPECT_TRUE(Diags.hadError());
}

TEST(ParserTest, ConditionalExpression) {
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit, m: bit) -> qubit { return q | (std.flip if m else "
      "id) }\n");
  ASSERT_TRUE(P);
}

//===----------------------------------------------------------------------===//
// Expansion
//===----------------------------------------------------------------------===//

TEST(ExpandTest, InfersDimVarFromCapture) {
  std::unique_ptr<Program> E = frontendOk(BVSource, bvBindings("1010"));
  ASSERT_TRUE(E);
  // kernel's return type must be bit[4].
  FunctionDef *K = E->lookup("kernel");
  ASSERT_TRUE(K);
  EXPECT_EQ(K->ReturnTy, Type::bit(4));
  // The captured cfunc parameter is dropped from the signature.
  EXPECT_TRUE(K->Params.empty());
}

TEST(ExpandTest, ExplicitDimVarBinding) {
  ProgramBindings B;
  B.DimVars["N"] = 3;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k[N](q: qubit[N]) -> qubit[N] { return q | pm[N] >> std[N] }\n");
  std::unique_ptr<Program> E = expandProgram(*P, B, Diags);
  ASSERT_TRUE(E) << Diags.str();
  EXPECT_EQ(E->Functions[0]->Params[0].Ty, Type::qubit(3));
}

TEST(ExpandTest, UnboundDimVarFails) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k[N](q: qubit[N]) -> qubit[N] { return q | pm[N] >> std[N] }\n");
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  EXPECT_EQ(E, nullptr);
  EXPECT_TRUE(Diags.hadError());
}

TEST(ExpandTest, BroadcastOfQubitLiteral) {
  ProgramBindings B;
  B.DimVars["N"] = 5;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k[N]() -> bit[N] { return 'p'[N] | std[N].measure }\n");
  std::unique_ptr<Program> E = expandProgram(*P, B, Diags);
  ASSERT_TRUE(E) << Diags.str();
  const auto *Ret = cast<ReturnStmt>(E->Functions[0]->Body.front().get());
  const auto *Pipe = cast<PipeExpr>(Ret->Value.get());
  const auto *QL = dyn_cast<QubitLiteralExpr>(Pipe->Value.get());
  ASSERT_TRUE(QL);
  EXPECT_EQ(QL->dim(), 5u);
}

TEST(ExpandTest, DimArithmetic) {
  ProgramBindings B;
  B.DimVars["N"] = 4;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k[N]() -> bit[N+1] { return 'p'[N+1] | std[N+1].measure }\n");
  std::unique_ptr<Program> E = expandProgram(*P, B, Diags);
  ASSERT_TRUE(E) << Diags.str();
  EXPECT_EQ(E->Functions[0]->ReturnTy, Type::bit(5));
}

//===----------------------------------------------------------------------===//
// Type checking
//===----------------------------------------------------------------------===//

TEST(TypeCheckTest, BVTypeChecks) {
  EXPECT_TRUE(frontendOk(BVSource, bvBindings("10101010")));
}

TEST(TypeCheckTest, TeleportTypeChecks) {
  EXPECT_TRUE(frontendOk(TeleportSource, {}));
}

TEST(TypeCheckTest, LinearityDoubleUseRejected) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit) -> qubit[2] { return q + q }\n");
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
  EXPECT_NE(Diags.str().find("more than once"), std::string::npos);
}

TEST(TypeCheckTest, LinearityUnusedRejected) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit) -> bit { a = 'p' | std.measure\n return a }\n");
  // q is never consumed.
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
  EXPECT_NE(Diags.str().find("never used"), std::string::npos);
}

TEST(TypeCheckTest, SpanMismatchRejected) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit[2]) -> qubit[2] { return q | {'01','10'} >> "
      "{'00','11'} }\n");
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
  EXPECT_NE(Diags.str().find("span"), std::string::npos);
}

TEST(TypeCheckTest, TranslationDimMismatchRejected) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit[2]) -> qubit[2] { return q | std[2] >> std[3] }\n");
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
}

TEST(TypeCheckTest, DuplicateEigenbitsRejected) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit) -> qubit { return q | {'0','0'} >> {'0','1'} }\n");
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
  EXPECT_NE(Diags.str().find("orthogonal"), std::string::npos);
}

TEST(TypeCheckTest, MixedPrimInLiteralRejected) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit) -> qubit { return q | {'0','m'} >> {'0','1'} }\n");
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
}

TEST(TypeCheckTest, AdjointOfMeasureRejected) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit) -> bit { return q | ~(std.measure) }\n");
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
  EXPECT_NE(Diags.str().find("reversible"), std::string::npos);
}

TEST(TypeCheckTest, PredicationTypes) {
  std::unique_ptr<Program> E = frontendOk(
      "qpu k(q: qubit[3]) -> qubit[3] { return q | '11' & std.flip }\n", {});
  ASSERT_TRUE(E);
  const auto *Ret = cast<ReturnStmt>(E->Functions[0]->Body.front().get());
  const auto *Pipe = cast<PipeExpr>(Ret->Value.get());
  EXPECT_EQ(Pipe->Func->Ty, Type::revFunc(3));
}

TEST(TypeCheckTest, PipeDimMismatchRejected) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit[2]) -> qubit[2] { return q | std.flip }\n");
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
}

TEST(TypeCheckTest, KernelAsFunctionValue) {
  const char *Source = R"(
qpu inner(q: qubit[2]) -> qubit[2] { return q | pm[2] >> std[2] }
qpu outer(q: qubit[2]) -> qubit[2] { return q | inner | ~inner }
)";
  EXPECT_TRUE(frontendOk(Source, {}));
}

TEST(TypeCheckTest, AdjointOfIrreversibleKernelRejected) {
  const char *Source = R"(
qpu inner(q: qubit) -> bit { return q | std.measure }
qpu outer(q: qubit) -> bit { return q | ~inner }
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(Source);
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
}

TEST(TypeCheckTest, PartialSpanMeasureRejected) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "qpu k(q: qubit) -> bit { return q | {'0'}.measure }\n");
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
  EXPECT_NE(Diags.str().find("fully spanning"), std::string::npos);
}

TEST(TypeCheckTest, MeasureInFourierBasis) {
  EXPECT_TRUE(frontendOk(
      "qpu k(q: qubit[3]) -> bit[3] { return q | fourier[3].measure }\n",
      {}));
}

TEST(TypeCheckTest, ClassicalFunctionChecks) {
  EXPECT_TRUE(frontendOk(
      "classical g[N](x: bit[N]) -> bit { return (x & x).or_reduce() }\n"
      "qpu k[N](g: cfunc[N,1], q: qubit[N]) -> qubit[N] "
      "{ return q | g.sign }\n",
      [] {
        ProgramBindings B;
        B.DimVars["N"] = 4;
        B.Captures["k"]["g"] = CaptureValue::classicalFunc("g");
        return B;
      }()));
}

TEST(TypeCheckTest, ClassicalWidthMismatchRejected) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseOk(
      "classical g(x: bit[2], y: bit[3]) -> bit[2] { return x & y }\n");
  std::unique_ptr<Program> E = expandProgram(*P, {}, Diags);
  ASSERT_TRUE(E);
  EXPECT_FALSE(typeCheckProgram(*E, Diags));
}

//===----------------------------------------------------------------------===//
// Canonicalization (§4.2)
//===----------------------------------------------------------------------===//

/// Returns the return-value expression of the only qpu function.
const Expr *returnExpr(const Program &P) {
  for (const auto &F : P.Functions)
    if (F->isQpu())
      for (const StmtPtr &S : F->Body)
        if (const auto *Ret = dyn_cast<ReturnStmt>(S.get()))
          return Ret->Value.get();
  return nullptr;
}

TEST(CanonicalizeTest, DoubleAdjointRemoved) {
  std::unique_ptr<Program> E = frontendOk(
      "qpu k(q: qubit) -> qubit { return q | ~~(pm >> std) }\n", {});
  ASSERT_TRUE(E);
  canonicalizeProgram(*E);
  const auto *Pipe = cast<PipeExpr>(returnExpr(*E));
  EXPECT_TRUE(isa<BasisTranslationExpr>(Pipe->Func.get()));
}

TEST(CanonicalizeTest, AdjointOfTranslationSwapsSides) {
  std::unique_ptr<Program> E = frontendOk(
      "qpu k(q: qubit) -> qubit { return q | ~({'0','1'} >> {'1','0'}) }\n",
      {});
  ASSERT_TRUE(E);
  canonicalizeProgram(*E);
  const auto *Pipe = cast<PipeExpr>(returnExpr(*E));
  const auto *BT = dyn_cast<BasisTranslationExpr>(Pipe->Func.get());
  ASSERT_TRUE(BT);
  // After swapping, the in-basis is {'1','0'}.
  Basis BIn = evalBasis(*BT->InBasis);
  ASSERT_TRUE(BIn.elements().front().isLiteral());
  EXPECT_EQ(
      BIn.elements().front().literalValue().Vectors.front().Eigenbits, 1u);
}

TEST(CanonicalizeTest, FullySpanningPredicateBecomesIdentityTensor) {
  std::unique_ptr<Program> E = frontendOk(
      "qpu k(q: qubit[3]) -> qubit[3] { return q | std[2] & pm.flip }\n",
      {});
  ASSERT_TRUE(E);
  canonicalizeProgram(*E);
  const auto *Pipe = cast<PipeExpr>(returnExpr(*E));
  const auto *T = dyn_cast<TensorExpr>(Pipe->Func.get());
  ASSERT_TRUE(T);
  const auto *Id = dyn_cast<IdentityExpr>(T->Lhs.get());
  ASSERT_TRUE(Id);
  EXPECT_EQ(Id->Dim, 2u);
}

TEST(CanonicalizeTest, PredicatedTranslationFoldsIntoTranslation) {
  std::unique_ptr<Program> E = frontendOk(
      "qpu k(q: qubit[3]) -> qubit[3] { return q | '11' & (pm >> std) }\n",
      {});
  ASSERT_TRUE(E);
  canonicalizeProgram(*E);
  const auto *Pipe = cast<PipeExpr>(returnExpr(*E));
  const auto *BT = dyn_cast<BasisTranslationExpr>(Pipe->Func.get());
  ASSERT_TRUE(BT);
  Basis BIn = evalBasis(*BT->InBasis);
  EXPECT_EQ(BIn.dim(), 3u);
  EXPECT_EQ(BIn.size(), 2u); // {'11'} + pm
}

TEST(CanonicalizeTest, FlipDesugarsToTranslation) {
  std::unique_ptr<Program> E = frontendOk(
      "qpu k(q: qubit) -> qubit { return q | std.flip }\n", {});
  ASSERT_TRUE(E);
  canonicalizeProgram(*E);
  const auto *Pipe = cast<PipeExpr>(returnExpr(*E));
  const auto *BT = dyn_cast<BasisTranslationExpr>(Pipe->Func.get());
  ASSERT_TRUE(BT);
  // std.flip == {'0','1'} >> {'1','0'}.
  Basis BIn = evalBasis(*BT->InBasis);
  Basis BOut = evalBasis(*BT->OutBasis);
  EXPECT_EQ(BIn.elements().front().literalValue().Vectors[0].Eigenbits, 0u);
  EXPECT_EQ(BOut.elements().front().literalValue().Vectors[0].Eigenbits, 1u);
}

TEST(CanonicalizeTest, AdjointPushedThroughPredication) {
  std::unique_ptr<Program> E = frontendOk(
      "qpu k(q: qubit[2]) -> qubit[2] { return q | ~('1' & (std >> pm)) }\n",
      {});
  ASSERT_TRUE(E);
  canonicalizeProgram(*E);
  const auto *Pipe = cast<PipeExpr>(returnExpr(*E));
  // ~('1' & (std>>pm)) -> '1' & ~(std>>pm) -> '1' & (pm>>std)
  // -> {'1'}+pm >> {'1'}+std.
  const auto *BT = dyn_cast<BasisTranslationExpr>(Pipe->Func.get());
  ASSERT_TRUE(BT);
  Basis BIn = evalBasis(*BT->InBasis);
  ASSERT_EQ(BIn.size(), 2u);
  EXPECT_TRUE(BIn.elements()[1].isBuiltin());
  EXPECT_EQ(BIn.elements()[1].prim(), PrimitiveBasis::Pm);
}

} // namespace
