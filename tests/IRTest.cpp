//===- IRTest.cpp - IR infrastructure and transform tests -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "transform/AdjointPred.h"
#include "transform/Passes.h"

#include <gtest/gtest.h>

using namespace asdf;

namespace {

Basis swapBasis(bool Rev) {
  BasisVector V01(PrimitiveBasis::Std, 2, 0b01);
  BasisVector V10(PrimitiveBasis::Std, 2, 0b10);
  return Basis::literal(Rev ? BasisLiteral({V10, V01})
                            : BasisLiteral({V01, V10}));
}

TEST(IRTest, BuildAndPrint) {
  Module M;
  IRFunction *F = M.create("f");
  Value *Arg = F->Body.addArg(IRType::qbundle(2));
  F->ResultTypes = {IRType::qbundle(2)};
  Builder B(&F->Body);
  Value *Out = B.qbtrans(Arg, Basis::builtin(PrimitiveBasis::Pm, 2),
                         Basis::builtin(PrimitiveBasis::Std, 2));
  B.ret({Out});
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyFunction(*F, Diags)) << Diags.str();
  EXPECT_NE(F->str().find("qbtrans"), std::string::npos);
  EXPECT_NE(F->str().find("pm[2] >> std[2]"), std::string::npos);
}

TEST(IRTest, UseListsMaintained) {
  Module M;
  IRFunction *F = M.create("f");
  Value *Arg = F->Body.addArg(IRType::qbundle(1));
  Builder B(&F->Body);
  Value *T1 = B.qbid(Arg);
  Value *T2 = B.qbid(T1);
  B.ret({T2});
  EXPECT_EQ(Arg->numUses(), 1u);
  EXPECT_EQ(T1->numUses(), 1u);
  // Replace T1's use of Arg... rather, RAUW T1 with Arg after detaching.
  Op *Id1 = T1->DefOp;
  T1->replaceAllUsesWith(Arg);
  EXPECT_EQ(Arg->numUses(), 2u);
  Id1->erase();
  EXPECT_EQ(Arg->numUses(), 1u);
}

TEST(IRTest, VerifierCatchesDoubleUse) {
  Module M;
  IRFunction *F = M.create("f");
  Value *Arg = F->Body.addArg(IRType::qbundle(1));
  Builder B(&F->Body);
  Value *A = B.qbid(Arg);
  Value *Bv = B.qbid(Arg); // Second use of Arg: linearity violation.
  Value *P = B.qbpack({});
  (void)P;
  B.ret({A});
  B.qbdiscard(Bv); // Consume Bv so only Arg is doubly used.
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyFunction(*F, Diags));
}

TEST(AdjointTest, ReversesTranslation) {
  // Block: arg -> qbtrans(pm>>std) -> yield. Adjoint: qbtrans(std>>pm).
  Block Src;
  Value *Arg = Src.addArg(IRType::qbundle(2));
  Builder B(&Src);
  Value *Out = B.qbtrans(Arg, Basis::builtin(PrimitiveBasis::Pm, 2),
                         Basis::builtin(PrimitiveBasis::Std, 2));
  B.yield({Out});

  std::unique_ptr<Block> Adj = adjointBlock(Src);
  ASSERT_TRUE(Adj);
  // Find the qbtrans in the adjoint.
  Op *Trans = nullptr;
  for (auto &O : Adj->Ops)
    if (O->Kind == OpKind::QbTrans)
      Trans = O.get();
  ASSERT_TRUE(Trans);
  EXPECT_EQ(Trans->BasisAttr.elements().front().prim(),
            PrimitiveBasis::Std);
  EXPECT_EQ(Trans->BasisAttr2.elements().front().prim(), PrimitiveBasis::Pm);
}

TEST(AdjointTest, ReversesGateSequenceWithAdjointKinds) {
  Block Src;
  Value *Arg = Src.addArg(IRType::qubit());
  Builder B(&Src);
  Value *Q = B.gate(GateKind::H, {}, {Arg}).front();
  Q = B.gate(GateKind::S, {}, {Q}).front();
  Q = B.gate(GateKind::P, {}, {Q}, 0.5).front();
  B.yield({Q});

  std::unique_ptr<Block> Adj = adjointBlock(Src);
  ASSERT_TRUE(Adj);
  std::vector<GateKind> Kinds;
  std::vector<double> Params;
  for (auto &O : Adj->Ops)
    if (O->Kind == OpKind::Gate) {
      Kinds.push_back(O->GateAttr);
      Params.push_back(O->ParamAttr.Offset);
    }
  // Reverse order with adjoint kinds: P(-0.5), Sdg, H.
  ASSERT_EQ(Kinds.size(), 3u);
  EXPECT_EQ(Kinds[0], GateKind::P);
  EXPECT_DOUBLE_EQ(Params[0], -0.5);
  EXPECT_EQ(Kinds[1], GateKind::Sdg);
  EXPECT_EQ(Kinds[2], GateKind::H);
}

TEST(AdjointTest, StationaryOpsStayForward) {
  // Fig. 4: classical constants are not adjointed.
  Block Src;
  Value *Arg = Src.addArg(IRType::qbundle(1));
  Builder B(&Src);
  Value *C = B.constf(3.14);
  (void)C;
  Value *Out = B.qbid(Arg);
  B.yield({Out});
  std::unique_ptr<Block> Adj = adjointBlock(Src);
  ASSERT_TRUE(Adj);
  // The constf must still be present, unreversed.
  bool FoundConst = false;
  for (auto &O : Adj->Ops)
    if (O->Kind == OpKind::ConstF && O->FloatAttr == 3.14)
      FoundConst = true;
  EXPECT_TRUE(FoundConst);
}

TEST(AdjointTest, AllocBecomesFreeZ) {
  Block Src;
  Value *Arg = Src.addArg(IRType::qubit());
  Builder B(&Src);
  Value *Anc = B.qalloc();
  std::vector<Value *> Gs = B.gate(GateKind::X, {Arg}, {Anc});
  B.qfreez(Gs[1]);
  B.yield({Gs[0]});
  std::unique_ptr<Block> Adj = adjointBlock(Src);
  ASSERT_TRUE(Adj);
  unsigned Allocs = 0, Freezs = 0;
  for (auto &O : Adj->Ops) {
    if (O->Kind == OpKind::QAlloc)
      ++Allocs;
    if (O->Kind == OpKind::QFreeZ)
      ++Freezs;
  }
  EXPECT_EQ(Allocs, 1u);
  EXPECT_EQ(Freezs, 1u);
}

TEST(AdjointTest, IrreversibleOpFails) {
  Block Src;
  Value *Arg = Src.addArg(IRType::qbundle(1));
  Builder B(&Src);
  Value *Bits = B.qbmeas(Arg, Basis::builtin(PrimitiveBasis::Std, 1));
  B.yield({Bits});
  EXPECT_EQ(adjointBlock(Src), nullptr);
}

TEST(RenamingTest, IdentityPermutation) {
  Block Src;
  Value *Arg = Src.addArg(IRType::qbundle(3));
  Builder B(&Src);
  Value *Out = B.qbid(Arg);
  B.yield({Out});
  auto Perm = computeRenamingPermutation(Src);
  ASSERT_TRUE(Perm.has_value());
  EXPECT_EQ(*Perm, (std::vector<unsigned>{0, 1, 2}));
}

TEST(RenamingTest, SwapByRenamingDetected) {
  // Fig. 5: unpack, repack in swapped order.
  Block Src;
  Value *Arg = Src.addArg(IRType::qbundle(2));
  Builder B(&Src);
  std::vector<Value *> Qs = B.qbunpack(Arg);
  Value *Out = B.qbpack({Qs[1], Qs[0]});
  B.yield({Out});
  auto Perm = computeRenamingPermutation(Src);
  ASSERT_TRUE(Perm.has_value());
  EXPECT_EQ(*Perm, (std::vector<unsigned>{1, 0}));
}

TEST(PredicateTest, EmitsSwapUndoPair) {
  // Predicating a renaming-swap block must add an uncontrolled SWAP and a
  // predicated SWAP (Fig. 5).
  Block Src;
  Value *Arg = Src.addArg(IRType::qbundle(2));
  Builder B(&Src);
  std::vector<Value *> Qs = B.qbunpack(Arg);
  Value *Out = B.qbpack({Qs[1], Qs[0]});
  B.yield({Out});

  Basis Pred = Basis::literal(
      BasisLiteral({BasisVector(PrimitiveBasis::Std, 3, 0b111)}));
  std::unique_ptr<Block> P = predicateBlock(Src, Pred);
  ASSERT_TRUE(P);
  // Expect two qbtrans ops: the uncontrolled swap (dim 2) and the
  // predicated swap (dim 5).
  std::vector<unsigned> TransDims;
  for (auto &O : P->Ops)
    if (O->Kind == OpKind::QbTrans)
      TransDims.push_back(O->BasisAttr.dim());
  ASSERT_EQ(TransDims.size(), 2u);
  EXPECT_EQ(TransDims[0], 2u);
  EXPECT_EQ(TransDims[1], 5u);
  // Widened signature.
  EXPECT_EQ(P->Args.front().Ty.dim(), 5u);
}

TEST(PredicateTest, PredicatesTranslation) {
  Block Src;
  Value *Arg = Src.addArg(IRType::qbundle(2));
  Builder B(&Src);
  Value *Out = B.qbtrans(Arg, swapBasis(false), swapBasis(true));
  B.yield({Out});

  Basis Pred = Basis::literal(
      BasisLiteral({BasisVector(PrimitiveBasis::Std, 1, 1)}));
  std::unique_ptr<Block> P = predicateBlock(Src, Pred);
  ASSERT_TRUE(P);
  Op *Trans = nullptr;
  for (auto &O : P->Ops)
    if (O->Kind == OpKind::QbTrans)
      Trans = O.get();
  ASSERT_TRUE(Trans);
  // b & (b1 >> b2) = b + b1 >> b + b2.
  EXPECT_EQ(Trans->BasisAttr.dim(), 3u);
  EXPECT_EQ(Trans->BasisAttr.size(), 2u);
}

TEST(SpecializeTest, TransitiveSpecializations) {
  // Algorithm D5's motivating example: f calls adj g; g calls h. An adjoint
  // specialization of h is needed.
  Module M;
  IRFunction *H = M.create("h");
  {
    Value *Arg = H->Body.addArg(IRType::qbundle(1));
    H->ResultTypes = {IRType::qbundle(1)};
    Builder B(&H->Body);
    B.ret({B.qbtrans(Arg, Basis::builtin(PrimitiveBasis::Pm, 1),
                     Basis::builtin(PrimitiveBasis::Std, 1))});
  }
  IRFunction *G = M.create("g");
  {
    Value *Arg = G->Body.addArg(IRType::qbundle(1));
    G->ResultTypes = {IRType::qbundle(1)};
    Builder B(&G->Body);
    B.ret({B.call(H, {Arg}).front()});
  }
  IRFunction *F = M.create("f");
  {
    Value *Arg = F->Body.addArg(IRType::qbundle(1));
    F->ResultTypes = {IRType::qbundle(1)};
    Builder B(&F->Body);
    B.ret({B.call(G, {Arg}, /*Adj=*/true).front()});
  }
  std::set<SpecKey> Specs = analyzeSpecializations(M, "f");
  EXPECT_TRUE(Specs.count({"g", true, 0}));
  EXPECT_TRUE(Specs.count({"h", true, 0}));
  EXPECT_TRUE(generateSpecializations(M, Specs));
  EXPECT_TRUE(M.lookup("g__adj"));
  EXPECT_TRUE(M.lookup("h__adj"));
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyModule(M, Diags)) << Diags.str();
}

TEST(InlineTest, InlinesDirectCall) {
  Module M;
  IRFunction *Callee = M.create("callee");
  {
    Value *Arg = Callee->Body.addArg(IRType::qbundle(1));
    Callee->ResultTypes = {IRType::qbundle(1)};
    Builder B(&Callee->Body);
    B.ret({B.qbtrans(Arg, Basis::builtin(PrimitiveBasis::Pm, 1),
                     Basis::builtin(PrimitiveBasis::Std, 1))});
  }
  IRFunction *Caller = M.create("caller");
  {
    Value *Arg = Caller->Body.addArg(IRType::qbundle(1));
    Caller->ResultTypes = {IRType::qbundle(1)};
    Builder B(&Caller->Body);
    B.ret({B.call(Callee, {Arg}).front()});
  }
  EXPECT_TRUE(inlineOneCall(M));
  // No calls left; qbtrans inlined into caller.
  bool HasCall = false, HasTrans = false;
  for (auto &O : Caller->Body.Ops) {
    HasCall |= O->Kind == OpKind::Call;
    HasTrans |= O->Kind == OpKind::QbTrans;
  }
  EXPECT_FALSE(HasCall);
  EXPECT_TRUE(HasTrans);
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyFunction(*Caller, Diags)) << Diags.str();
}

TEST(InlineTest, AdjointCallInlinesReversed) {
  Module M;
  IRFunction *Callee = M.create("callee");
  {
    Value *Arg = Callee->Body.addArg(IRType::qbundle(1));
    Callee->ResultTypes = {IRType::qbundle(1)};
    Builder B(&Callee->Body);
    B.ret({B.qbtrans(Arg, Basis::builtin(PrimitiveBasis::Pm, 1),
                     Basis::builtin(PrimitiveBasis::Std, 1))});
  }
  IRFunction *Caller = M.create("caller");
  {
    Value *Arg = Caller->Body.addArg(IRType::qbundle(1));
    Caller->ResultTypes = {IRType::qbundle(1)};
    Builder B(&Caller->Body);
    B.ret({B.call(Callee, {Arg}, /*Adj=*/true).front()});
  }
  EXPECT_TRUE(inlineOneCall(M));
  Op *Trans = nullptr;
  for (auto &O : Caller->Body.Ops)
    if (O->Kind == OpKind::QbTrans)
      Trans = O.get();
  ASSERT_TRUE(Trans);
  // Adjoint: sides swapped.
  EXPECT_EQ(Trans->BasisAttr.elements().front().prim(),
            PrimitiveBasis::Std);
}

TEST(CanonTest, CallIndirectOfFuncConstBecomesCall) {
  Module M;
  IRFunction *Callee = M.create("callee");
  {
    Value *Arg = Callee->Body.addArg(IRType::qbundle(1));
    Callee->ResultTypes = {IRType::qbundle(1)};
    Builder B(&Callee->Body);
    B.ret({B.qbid(Arg)});
  }
  IRFunction *Caller = M.create("caller");
  {
    Value *Arg = Caller->Body.addArg(IRType::qbundle(1));
    Caller->ResultTypes = {IRType::qbundle(1)};
    Builder B(&Caller->Body);
    Value *FC = B.funcConst("callee", IRType::revFunc(1));
    Value *Adj = B.funcAdj(FC);
    Value *Adj2 = B.funcAdj(Adj); // double adjoint folds away
    B.ret({B.callIndirect(Adj2, {Arg}).front()});
  }
  canonicalizeIR(M);
  Op *Call = nullptr;
  for (auto &O : Caller->Body.Ops)
    if (O->Kind == OpKind::Call)
      Call = O.get();
  ASSERT_TRUE(Call);
  EXPECT_EQ(Call->SymbolAttr, "callee");
  EXPECT_FALSE(Call->AdjFlag); // ~~f == f
}

TEST(CanonTest, PredChainAccumulatesBases) {
  Module M;
  IRFunction *Callee = M.create("callee");
  {
    Value *Arg = Callee->Body.addArg(IRType::qbundle(1));
    Callee->ResultTypes = {IRType::qbundle(1)};
    Builder B(&Callee->Body);
    B.ret({B.qbid(Arg)});
  }
  IRFunction *Caller = M.create("caller");
  {
    Value *Arg = Caller->Body.addArg(IRType::qbundle(3));
    Caller->ResultTypes = {IRType::qbundle(3)};
    Builder B(&Caller->Body);
    Value *FC = B.funcConst("callee", IRType::revFunc(1));
    Basis P1 = Basis::literal(
        BasisLiteral({BasisVector(PrimitiveBasis::Std, 1, 1)}));
    Basis P2 = Basis::literal(
        BasisLiteral({BasisVector(PrimitiveBasis::Pm, 1, 0)}));
    Value *Pred1 = B.funcPred(FC, P1);
    Value *Pred2 = B.funcPred(Pred1, P2);
    B.ret({B.callIndirect(Pred2, {Arg}).front()});
  }
  canonicalizeIR(M);
  Op *Call = nullptr;
  for (auto &O : Caller->Body.Ops)
    if (O->Kind == OpKind::Call)
      Call = O.get();
  ASSERT_TRUE(Call);
  // Outermost predicate first: pm then std.
  ASSERT_EQ(Call->BasisAttr.size(), 2u);
  EXPECT_EQ(Call->BasisAttr.elements()[0].prim(), PrimitiveBasis::Pm);
  EXPECT_EQ(Call->BasisAttr.elements()[1].prim(), PrimitiveBasis::Std);
}

TEST(LambdaLiftTest, LiftsToModuleFunction) {
  Module M;
  IRFunction *F = M.create("f");
  Value *Arg = F->Body.addArg(IRType::qbundle(1));
  F->ResultTypes = {IRType::qbundle(1)};
  Builder B(&F->Body);
  Op *L = B.lambda(IRType::revFunc(1));
  {
    Block *Body = L->Regions[0].get();
    Value *A = Body->addArg(IRType::qbundle(1));
    Builder Inner(Body);
    Inner.yield({Inner.qbtrans(A, Basis::builtin(PrimitiveBasis::Pm, 1),
                               Basis::builtin(PrimitiveBasis::Std, 1))});
  }
  B.ret({B.callIndirect(L->result(0), {Arg}).front()});
  liftLambdas(M);
  EXPECT_EQ(M.Functions.size(), 2u);
  bool HasLambdaOp = false;
  for (auto &O : F->Body.Ops)
    HasLambdaOp |= O->Kind == OpKind::Lambda;
  EXPECT_FALSE(HasLambdaOp);
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyModule(M, Diags)) << Diags.str();
}

} // namespace
