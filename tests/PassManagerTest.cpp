//===- PassManagerTest.cpp - Pass manager, plans, and CLI smoke tests -----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks down the staged pass-manager API:
///
///   - pipeline-spec parsing (presets, stage:pass specs, every error path),
///   - preset plans produce bit-identical artifacts to the legacy
///     CompileOptions flag combinations through the deprecated shim,
///   - pass-ordering invariants of the preset plans,
///   - --verify-each catches a deliberately IR-breaking pass and names it,
///   - the timing and print-after instrumentation,
///   - asdfc CLI behavior: --help, strict flag/emit validation, duplicate
///     --bind/--capture diagnosis, and a --pass-timings/--print-after
///     golden smoke (instrumentation must not perturb stdout).
///
//===----------------------------------------------------------------------===//

#include "codegen/QasmEmitter.h"
#include "compiler/CompileSession.h"
#include "compiler/Compiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace asdf;

namespace {

const char *BVSource = R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";

ProgramBindings bvBindings(const std::string &Secret = "1101") {
  ProgramBindings B;
  B.Captures["f"]["secret"] = CaptureValue::bitsFromString(Secret);
  B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
  return B;
}

//===----------------------------------------------------------------------===//
// Pipeline plan parsing
//===----------------------------------------------------------------------===//

TEST(PipelinePlanTest, PresetsParse) {
  for (const std::string &Name : pipelinePresetNames()) {
    PipelinePlan Plan;
    std::string Error;
    EXPECT_TRUE(parsePipelinePlan(Name, Plan, Error)) << Error;
  }
}

TEST(PipelinePlanTest, ExplicitSpecParses) {
  PipelinePlan Plan;
  std::string Error;
  ASSERT_TRUE(parsePipelinePlan(
      "qwerty:lift-lambdas,inline,dce,verify;qcirc:canonicalize", Plan,
      Error))
      << Error;
  EXPECT_EQ(Plan.Qwerty,
            (std::vector<std::string>{"lift-lambdas", "inline", "dce",
                                      "verify"}));
  EXPECT_EQ(Plan.QCirc, (std::vector<std::string>{"canonicalize"}));
  // Unmentioned stages keep the default preset's passes.
  EXPECT_EQ(Plan.Ast, presetPlan("default").Ast);
}

TEST(PipelinePlanTest, EmptyStageListRunsNothing) {
  PipelinePlan Plan;
  std::string Error;
  ASSERT_TRUE(parsePipelinePlan("circuit:", Plan, Error)) << Error;
  EXPECT_TRUE(Plan.Circuit.empty());
}

TEST(PipelinePlanTest, ParseErrors) {
  PipelinePlan Plan;
  std::string Error;
  // Unknown preset (no colon -> treated as a preset name).
  EXPECT_FALSE(parsePipelinePlan("fastest", Plan, Error));
  EXPECT_NE(Error.find("unknown pipeline preset"), std::string::npos);
  EXPECT_NE(Error.find("default"), std::string::npos) << "lists presets";
  // Unknown stage.
  EXPECT_FALSE(parsePipelinePlan("mlir:canonicalize", Plan, Error));
  EXPECT_NE(Error.find("unknown pipeline stage"), std::string::npos);
  // Unknown pass, with valid ones listed.
  EXPECT_FALSE(parsePipelinePlan("qwerty:optimize-harder", Plan, Error));
  EXPECT_NE(Error.find("unknown pass"), std::string::npos);
  EXPECT_NE(Error.find("lift-lambdas"), std::string::npos);
  // A pass of the wrong stage.
  EXPECT_FALSE(parsePipelinePlan("ast:peephole", Plan, Error));
  // Duplicate stage.
  EXPECT_FALSE(parsePipelinePlan("qcirc:peephole;qcirc:peephole", Plan,
                                 Error));
  EXPECT_NE(Error.find("twice"), std::string::npos);
  // Empty pass name.
  EXPECT_FALSE(parsePipelinePlan("qwerty:inline,,dce", Plan, Error));
  EXPECT_NE(Error.find("empty pass name"), std::string::npos);
}

TEST(PipelinePlanTest, RoundTripsThroughStr) {
  PipelinePlan Plan = presetPlan("default");
  PipelinePlan Reparsed;
  std::string Error;
  ASSERT_TRUE(parsePipelinePlan(Plan.str(), Reparsed, Error)) << Error;
  EXPECT_EQ(Plan.str(), Reparsed.str());
}

//===----------------------------------------------------------------------===//
// Pass-ordering invariants of the preset plans
//===----------------------------------------------------------------------===//

int indexOf(const std::vector<std::string> &L, const std::string &N) {
  auto It = std::find(L.begin(), L.end(), N);
  return It == L.end() ? -1 : int(It - L.begin());
}

TEST(PipelinePlanTest, PresetOrderingInvariants) {
  PipelinePlan D = presetPlan("default");
  // Lambdas must be lifted before inlining; DCE runs after inlining (it
  // keys off the entry's final call graph); verification is last.
  EXPECT_LT(indexOf(D.Qwerty, "lift-lambdas"), indexOf(D.Qwerty, "inline"));
  EXPECT_LT(indexOf(D.Qwerty, "inline"), indexOf(D.Qwerty, "dce"));
  EXPECT_EQ(D.Qwerty.back(), "verify");
  // Expansion precedes type checking precedes canonicalization.
  EXPECT_LT(indexOf(D.Ast, "expand"), indexOf(D.Ast, "typecheck"));
  EXPECT_LT(indexOf(D.Ast, "typecheck"), indexOf(D.Ast, "canonicalize"));
  // QCirc: canonicalize first, then a peephole on both sides of the
  // multi-control decomposition (§6.5).
  EXPECT_EQ(D.QCirc.front(), "canonicalize");
  EXPECT_LT(indexOf(D.QCirc, "peephole"), indexOf(D.QCirc, "decompose-mc"));

  // no-opt swaps inlining for specialization and never flattens.
  PipelinePlan N = presetPlan("no-opt");
  EXPECT_EQ(indexOf(N.Qwerty, "inline"), -1);
  EXPECT_NE(indexOf(N.Qwerty, "specialize"), -1);
  EXPECT_TRUE(D.producesFlatCircuit());
  EXPECT_FALSE(N.producesFlatCircuit());

  // Every preset names only registered passes of the right stage.
  PassRegistry &Reg = PassRegistry::instance();
  for (const std::string &Preset : pipelinePresetNames()) {
    PipelinePlan P = presetPlan(Preset);
    for (PipelineStage S :
         {PipelineStage::AST, PipelineStage::Qwerty, PipelineStage::QCirc,
          PipelineStage::Circuit})
      for (const std::string &Name : P.stage(S))
        EXPECT_TRUE(Reg.hasPass(S, Name))
            << Preset << " references unknown " << pipelineStageName(S)
            << " pass " << Name;
  }
}

//===----------------------------------------------------------------------===//
// Preset == legacy flag combination (bit-identical artifacts)
//===----------------------------------------------------------------------===//

struct PresetCase {
  const char *Preset;
  CompileOptions Legacy;
};

TEST(PassManagerTest, PresetsMatchLegacyFlags) {
  std::vector<PresetCase> Cases(4);
  Cases[0].Preset = "default";
  Cases[1].Preset = "no-opt";
  Cases[1].Legacy.Inline = false;
  Cases[2].Preset = "no-peephole";
  Cases[2].Legacy.PeepholeOpt = false;
  Cases[3].Preset = "no-canon";
  Cases[3].Legacy.AstCanonicalize = false;

  for (const PresetCase &C : Cases) {
    SessionOptions SO;
    SO.Plan = presetPlan(C.Preset);
    CompileSession S(BVSource, bvBindings(), SO);

    QwertyCompiler Shim;
    CompileResult Legacy = Shim.compile(BVSource, bvBindings(), C.Legacy);
    ASSERT_TRUE(Legacy.Ok) << Legacy.ErrorMessage;

    // The Qwerty IR must match textually in every configuration.
    Module *QW = S.qwertyIR();
    ASSERT_NE(QW, nullptr) << C.Preset << ": " << S.errorMessage();
    EXPECT_EQ(QW->str(), Legacy.QwertyIR->str()) << C.Preset;

    // Inlining presets also produce a flat circuit; compare the QASM.
    if (SO.Plan.producesFlatCircuit()) {
      Circuit *Flat = S.flatCircuit();
      ASSERT_NE(Flat, nullptr) << C.Preset << ": " << S.errorMessage();
      EXPECT_EQ(emitOpenQasm3(*Flat), emitOpenQasm3(Legacy.FlatCircuit))
          << C.Preset;
    } else {
      Module *QC = S.qcircIR();
      ASSERT_NE(QC, nullptr) << C.Preset << ": " << S.errorMessage();
      EXPECT_EQ(QC->str(), Legacy.QCircIR->str()) << C.Preset;
    }
  }
}

//===----------------------------------------------------------------------===//
// Artifact cache
//===----------------------------------------------------------------------===//

TEST(PassManagerTest, ArtifactGettersAreCached) {
  CompileSession S(BVSource, bvBindings());
  Circuit *Flat1 = S.flatCircuit();
  ASSERT_NE(Flat1, nullptr) << S.errorMessage();
  // Same pointers on re-query: no recompilation.
  EXPECT_EQ(S.flatCircuit(), Flat1);
  Module *QW = S.qwertyIR();
  ASSERT_NE(QW, nullptr);
  EXPECT_EQ(S.qwertyIR(), QW);
  // The preserved Qwerty IR is the *pre-conversion* module: it still
  // contains Qwerty-dialect ops, while the QCirc module does not.
  EXPECT_NE(QW->str().find("qbprep"), std::string::npos);
  EXPECT_EQ(S.qcircIR()->str().find("qbprep"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// --verify-each catches a deliberately broken pass
//===----------------------------------------------------------------------===//

TEST(PassManagerTest, VerifyEachCatchesBrokenPass) {
  // Register a pass that breaks the linearity invariant: it materializes a
  // qubit bundle and never consumes it.
  PassRegistry::instance().registerPass(
      PipelineStage::Qwerty, "break-ir", "deliberately leaks a qbundle",
      PassRegistry::ModuleFactory([] {
        return std::unique_ptr<Pass<Module>>(new LambdaPass<Module>(
            "break-ir", "", [](Module &M, PassContext &) {
              if (M.Functions.empty())
                return false;
              Block &Body = M.Functions.front()->Body;
              Builder B(&Body, Body.terminator());
              B.qbprep(PrimitiveBasis::Std, false, 1); // Leaked: never used.
              return true;
            }));
      }));

  SessionOptions SO;
  SO.VerifyEach = true;
  SO.Plan.Qwerty = {"lift-lambdas", "inline", "dce", "break-ir"};
  CompileSession S(BVSource, bvBindings(), SO);
  EXPECT_EQ(S.qwertyIR(), nullptr);
  EXPECT_FALSE(S.ok());
  // The error names the offending pass, the stage, and the linearity
  // violation the verifier found.
  EXPECT_NE(S.errorMessage().find("break-ir"), std::string::npos)
      << S.errorMessage();
  EXPECT_NE(S.errorMessage().find("qwerty"), std::string::npos);
  EXPECT_NE(S.errorMessage().find("never used"), std::string::npos);

  // The same broken pipeline *without* --verify-each is only caught by a
  // trailing verify pass (or not at all) — the point of the flag.
  SessionOptions Loose;
  Loose.Plan.Qwerty = {"lift-lambdas", "inline", "dce", "break-ir"};
  CompileSession S2(BVSource, bvBindings(), Loose);
  EXPECT_NE(S2.qwertyIR(), nullptr) << S2.errorMessage();
}

//===----------------------------------------------------------------------===//
// Timing and printing instrumentation
//===----------------------------------------------------------------------===//

TEST(PassManagerTest, TimingsCoverEveryPassAndTransition) {
  SessionOptions SO;
  SO.CollectTimings = true;
  CompileSession S(BVSource, bvBindings(), SO);
  ASSERT_NE(S.flatCircuit(), nullptr) << S.errorMessage();

  std::vector<std::string> Names;
  for (const PassTiming &T : S.timings())
    Names.push_back(std::string(pipelineStageName(T.Stage)) + ":" +
                    T.PassName);
  // Transitions and passes, in pipeline order.
  const char *Expected[] = {"ast:parse",      "ast:expand",
                            "qwerty:lower",   "qwerty:inline",
                            "qcirc:convert",  "qcirc:peephole",
                            "circuit:flatten"};
  int Last = -1;
  for (const char *E : Expected) {
    int At = indexOf(Names, E);
    EXPECT_GT(At, Last) << E << " missing or out of order";
    Last = At;
  }
  // The report renders and mentions a pass plus the IR-size columns.
  std::string Report = S.timingReport();
  EXPECT_NE(Report.find("Pass execution timing report"), std::string::npos);
  EXPECT_NE(Report.find("qwerty:inline"), std::string::npos);
  EXPECT_NE(Report.find("Total Execution Time"), std::string::npos);

  // The inline pass collapses the module to one function: its recorded
  // before/after statistics must reflect a change.
  for (const PassTiming &T : S.timings())
    if (T.PassName == "inline")
      EXPECT_TRUE(T.changedIR());
}

TEST(PassManagerTest, PrintAfterSelectsOnePass) {
  std::vector<std::pair<std::string, std::string>> Dumps;
  SessionOptions SO;
  SO.PrintAfter = "inline";
  SO.PrintSink = [&](const std::string &Banner, const std::string &IR) {
    Dumps.push_back({Banner, IR});
  };
  CompileSession S(BVSource, bvBindings(), SO);
  ASSERT_NE(S.flatCircuit(), nullptr) << S.errorMessage();
  ASSERT_EQ(Dumps.size(), 1u);
  EXPECT_NE(Dumps[0].first.find("IR Dump After inline"), std::string::npos);
  EXPECT_NE(Dumps[0].second.find("func @kernel"), std::string::npos);
}

TEST(PassManagerTest, PrintAfterAllDumpsEveryPass) {
  std::vector<std::string> Banners;
  SessionOptions SO;
  SO.PrintAfter = std::string(); // Empty selector = every pass.
  SO.PrintSink = [&](const std::string &Banner, const std::string &) {
    Banners.push_back(Banner);
  };
  CompileSession S(BVSource, bvBindings(), SO);
  ASSERT_NE(S.flatCircuit(), nullptr) << S.errorMessage();
  // One dump per transition + per plan pass (default plan).
  PipelinePlan Plan = presetPlan("default");
  size_t Want = 4 /*parse,lower,convert,flatten*/ + Plan.Ast.size() +
                Plan.Qwerty.size() + Plan.QCirc.size() + Plan.Circuit.size();
  EXPECT_EQ(Banners.size(), Want);
}

//===----------------------------------------------------------------------===//
// asdfc CLI smoke (exit codes, usage hints, instrumentation goldens)
//===----------------------------------------------------------------------===//

#ifdef ASDF_ASDFC_PATH

/// Runs a shell command, captures combined stdout+stderr, returns the exit
/// code.
int runCommand(const std::string &Cmd, std::string &Output) {
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  Output.clear();
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Output.append(Buf, N);
  int Status = pclose(P);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

class AsdfcCli : public ::testing::Test {
protected:
  void SetUp() override {
    Program = ::testing::TempDir() + "asdfc_cli_bv.qw";
    std::ofstream Out(Program, std::ios::trunc);
    ASSERT_TRUE(Out.good());
    Out << BVSource;
    Out.close();
    Base = std::string(ASDF_ASDFC_PATH) + " " + Program +
           " --capture f.secret=1101 --capture kernel.f=@f";
  }
  std::string Program, Base;
};

TEST_F(AsdfcCli, HelpExitsZero) {
  std::string Out;
  EXPECT_EQ(runCommand(std::string(ASDF_ASDFC_PATH) + " --help", Out), 0);
  EXPECT_NE(Out.find("usage: asdfc"), std::string::npos);
  EXPECT_NE(Out.find("--pipeline"), std::string::npos);
}

TEST_F(AsdfcCli, UnknownFlagExitsTwoWithHint) {
  std::string Out;
  EXPECT_EQ(runCommand(Base + " --frobnicate", Out), 2);
  EXPECT_NE(Out.find("unknown option '--frobnicate'"), std::string::npos);
  EXPECT_NE(Out.find("--help"), std::string::npos);
}

TEST_F(AsdfcCli, UnknownEmitExitsTwoWithHint) {
  std::string Out;
  EXPECT_EQ(runCommand(Base + " --emit mlir", Out), 2);
  EXPECT_NE(Out.find("unknown --emit value 'mlir'"), std::string::npos);
}

TEST_F(AsdfcCli, DuplicateBindAndCaptureDiagnosed) {
  std::string Out;
  EXPECT_EQ(runCommand(Base + " --bind N=4 --bind N=5", Out), 2);
  EXPECT_NE(Out.find("duplicate --bind"), std::string::npos);
  EXPECT_EQ(runCommand(Base + " --capture f.secret=0000", Out), 2);
  EXPECT_NE(Out.find("duplicate --capture"), std::string::npos);
}

TEST_F(AsdfcCli, BadPipelineExitsTwoNamingAlternatives) {
  std::string Out;
  EXPECT_EQ(runCommand(Base + " --pipeline turbo", Out), 2);
  EXPECT_NE(Out.find("unknown pipeline preset 'turbo'"), std::string::npos);
  EXPECT_EQ(runCommand(Base + " --pipeline no-opt --no-inline", Out), 2);
  EXPECT_NE(Out.find("cannot be combined"), std::string::npos);
}

TEST_F(AsdfcCli, InstrumentationDoesNotPerturbStdout) {
  // Golden smoke: qasm output must be byte-identical with --pipeline
  // default, --pass-timings, --print-after, and --verify-each attached,
  // and the instrumentation must land on stderr with its banners.
  // Subshells keep runCommand's trailing 2>&1 from re-capturing the
  // stream each command already redirected away.
  std::string Plain, Out;
  ASSERT_EQ(runCommand("( " + Base + " --emit qasm 2>/dev/null )", Plain),
            0);
  ASSERT_NE(Plain.find("OPENQASM 3"), std::string::npos);

  ASSERT_EQ(runCommand("( " + Base + " --pipeline default --emit qasm "
                                     "2>/dev/null )",
                       Out),
            0);
  EXPECT_EQ(Out, Plain) << "--pipeline default diverges from legacy";

  ASSERT_EQ(runCommand("( " + Base + " --pass-timings --verify-each "
                                     "--emit qasm 2>/dev/null )",
                       Out),
            0);
  EXPECT_EQ(Out, Plain) << "--pass-timings/--verify-each perturb stdout";

  // Subshell so runCommand's trailing 2>&1 captures stderr alone.
  ASSERT_EQ(runCommand("( " + Base + " --pass-timings --emit qasm "
                                     ">/dev/null )",
                       Out),
            0);
  EXPECT_NE(Out.find("Pass execution timing report"), std::string::npos);
  EXPECT_NE(Out.find("circuit:flatten"), std::string::npos);

  ASSERT_EQ(runCommand("( " + Base + " --print-after=peephole --emit qasm "
                                     ">/dev/null )",
                       Out),
            0);
  EXPECT_NE(Out.find("IR Dump After peephole (qcirc)"), std::string::npos);
}

TEST_F(AsdfcCli, ExplicitSpecMatchesPreset) {
  std::string Spec, Preset;
  PipelinePlan Plan = presetPlan("default");
  ASSERT_EQ(runCommand("( " + Base + " --pipeline \"" + Plan.str() +
                           "\" --emit qasm 2>/dev/null )",
                       Spec),
            0);
  ASSERT_EQ(runCommand("( " + Base + " --pipeline default --emit qasm "
                                     "2>/dev/null )",
                       Preset),
            0);
  EXPECT_EQ(Spec, Preset);
}

#endif // ASDF_ASDFC_PATH

} // namespace
