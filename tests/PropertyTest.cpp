//===- PropertyTest.cpp - Cross-cutting property-based tests --------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests tying multiple subsystems together through the simulator:
///
///   - ~t composed with t is the identity for random translations (the
///     adjoint transform of §5.2 really inverts synthesized circuits);
///   - predication acts as identity outside the predicate span and as the
///     base function inside it, for random predicates (§5.3 + §6.3);
///   - the synthesized QFT matches the DFT matrix;
///   - span checking agrees with a brute-force span comparison on random
///     small bases (Algorithms B1-B4 vs ground truth);
///   - Selinger- and naive-decomposed circuits are unitarily equivalent.
///
//===----------------------------------------------------------------------===//

#include "basis/SpanCheck.h"
#include "compiler/CompileSession.h"
#include "qcirc/Flatten.h"
#include "qcirc/Peephole.h"
#include "sim/Simulator.h"
#include "synth/BasisSynth.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

using namespace asdf;

namespace {

using Matrix = std::vector<std::vector<Amplitude>>;

/// Random std basis literal over Dim qubits with Count vectors.
BasisLiteral randomLiteral(std::mt19937_64 &Rng, unsigned Dim,
                           unsigned Count) {
  std::vector<uint64_t> All(uint64_t(1) << Dim);
  for (uint64_t I = 0; I < All.size(); ++I)
    All[I] = I;
  std::shuffle(All.begin(), All.end(), Rng);
  std::vector<BasisVector> Vecs;
  for (unsigned I = 0; I < Count; ++I)
    Vecs.push_back(BasisVector(PrimitiveBasis::Std, Dim, All[I]));
  return BasisLiteral(std::move(Vecs));
}

Circuit synthesize(const Basis &In, const Basis &Out) {
  Module M;
  IRFunction *F = M.create("t");
  Builder B(&F->Body);
  std::vector<Value *> Qs;
  for (unsigned I = 0; I < In.dim(); ++I)
    Qs.push_back(B.qalloc());
  GateEmitter E(B, Qs);
  EXPECT_TRUE(synthesizeTranslation(E, In, Out));
  for (unsigned I = 0; I < In.dim(); ++I)
    B.qfreez(E.wire(I));
  B.ret({});
  DiagnosticEngine Diags;
  std::optional<Circuit> C = flattenToCircuit(M, "t", Diags);
  EXPECT_TRUE(C.has_value()) << Diags.str();
  return C ? std::move(*C) : Circuit();
}

Matrix identity(uint64_t Dim) {
  Matrix I(Dim, std::vector<Amplitude>(Dim, Amplitude(0)));
  for (uint64_t K = 0; K < Dim; ++K)
    I[K][K] = Amplitude(1);
  return I;
}

//===----------------------------------------------------------------------===//
// Adjoint round trips
//===----------------------------------------------------------------------===//

class AdjointRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdjointRoundTrip, TranslationThenAdjointIsIdentity) {
  std::mt19937_64 Rng(GetParam() * 31 + 5);
  unsigned Dim = 2 + GetParam() % 2;
  unsigned Count = 2 + Rng() % ((1u << Dim) - 1);
  BasisLiteral LIn = randomLiteral(Rng, Dim, Count);
  BasisLiteral LOut = LIn;
  std::shuffle(LOut.Vectors.begin(), LOut.Vectors.end(), Rng);
  Basis In = Basis::literal(LIn), Out = Basis::literal(LOut);

  // t = In >> Out followed by its adjoint Out >> In.
  Circuit Fwd = synthesize(In, Out);
  Circuit Bwd = synthesize(Out, In);
  // Compose: pad to the wider of the two (ancilla counts may differ).
  unsigned W = std::max(Fwd.NumQubits, Bwd.NumQubits);
  Circuit Both;
  Both.NumQubits = W;
  for (const CircuitInstr &I : Fwd.Instrs)
    Both.append(I);
  for (const CircuitInstr &I : Bwd.Instrs)
    Both.append(I);
  ASSERT_LE(W, 10u);
  Matrix U = circuitUnitary(Both);
  EXPECT_TRUE(unitariesEquivalent(U, identity(U.size()), 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Property, AdjointRoundTrip,
                         ::testing::Range(0u, 12u));

//===----------------------------------------------------------------------===//
// Predication identity outside the span
//===----------------------------------------------------------------------===//

class PredicationProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PredicationProperty, IdentityOutsidePredicateSpan) {
  std::mt19937_64 Rng(GetParam() * 67 + 11);
  // Predicate: a random 1- or 2-vector literal on 2 qubits; body: X on one
  // qubit.
  unsigned PredCount = 1 + Rng() % 2;
  BasisLiteral Pred = randomLiteral(Rng, 2, PredCount);
  BasisVector V0(PrimitiveBasis::Std, 1, 0), V1(PrimitiveBasis::Std, 1, 1);
  Basis In = Basis::literal(Pred).tensor(
      Basis::literal(BasisLiteral({V0, V1})));
  Basis Out = Basis::literal(Pred).tensor(
      Basis::literal(BasisLiteral({V1, V0})));
  Circuit C = synthesize(In, Out);
  ASSERT_LE(C.NumQubits, 10u);
  Matrix U = circuitUnitary(C);

  uint64_t AncBits = C.NumQubits - 3;
  for (uint64_t X = 0; X < 8; ++X) {
    uint64_t PredState = X >> 1;
    bool InSpan = false;
    for (const BasisVector &V : Pred.Vectors)
      InSpan |= uint64_t(V.Eigenbits) == PredState;
    uint64_t WantX = InSpan ? (X ^ 1) : X;
    double Amp = std::abs(U[WantX << AncBits][X << AncBits]);
    EXPECT_NEAR(Amp, 1.0, 1e-9)
        << "pred " << Pred.str() << " input " << X;
  }
}

INSTANTIATE_TEST_SUITE_P(Property, PredicationProperty,
                         ::testing::Range(0u, 10u));

//===----------------------------------------------------------------------===//
// QFT vs the DFT matrix
//===----------------------------------------------------------------------===//

class QftProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(QftProperty, MatchesDftMatrix) {
  unsigned N = GetParam();
  Circuit C = synthesize(Basis::builtin(PrimitiveBasis::Std, N),
                         Basis::builtin(PrimitiveBasis::Fourier, N));
  Matrix U = circuitUnitary(C);
  uint64_t Dim = uint64_t(1) << N;
  double Norm = 1.0 / std::sqrt(double(Dim));
  for (uint64_t R = 0; R < Dim; ++R)
    for (uint64_t K = 0; K < Dim; ++K) {
      double Ang = 2.0 * M_PI * double(R) * double(K) / double(Dim);
      Amplitude Want = Norm * Amplitude(std::cos(Ang), std::sin(Ang));
      EXPECT_NEAR(std::abs(U[R][K] - Want), 0.0, 1e-9)
          << "N=" << N << " row " << R << " col " << K;
    }
}

INSTANTIATE_TEST_SUITE_P(Property, QftProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

//===----------------------------------------------------------------------===//
// Span checking vs brute force
//===----------------------------------------------------------------------===//

/// Ground truth: compares spans by row-reducing the stacked vectors.
bool bruteForceSpansEqual(const BasisLiteral &A, const BasisLiteral &B) {
  // std literals: spans are equal iff the *sets* of eigenbits are equal.
  std::vector<uint64_t> SA, SB;
  for (const BasisVector &V : A.Vectors)
    SA.push_back(uint64_t(V.Eigenbits));
  for (const BasisVector &V : B.Vectors)
    SB.push_back(uint64_t(V.Eigenbits));
  std::sort(SA.begin(), SA.end());
  std::sort(SB.begin(), SB.end());
  return SA == SB;
}

class SpanVsBruteForce : public ::testing::TestWithParam<unsigned> {};

TEST_P(SpanVsBruteForce, AgreesOnRandomStdBases) {
  std::mt19937_64 Rng(GetParam() * 101 + 7);
  unsigned Dim = 2 + GetParam() % 3;
  unsigned CountA = 1 + Rng() % (1u << Dim);
  BasisLiteral A = randomLiteral(Rng, Dim, CountA);
  // Half the time, B spans the same set (shuffled); otherwise random.
  BasisLiteral B = A;
  if (Rng() % 2) {
    std::shuffle(B.Vectors.begin(), B.Vectors.end(), Rng);
  } else {
    B = randomLiteral(Rng, Dim, 1 + Rng() % (1u << Dim));
  }
  bool Want = bruteForceSpansEqual(A, B);
  bool Got = spansEquivalent(Basis::literal(A), Basis::literal(B));
  EXPECT_EQ(Got, Want) << A.str() << " vs " << B.str();
}

INSTANTIATE_TEST_SUITE_P(Property, SpanVsBruteForce,
                         ::testing::Range(0u, 30u));

//===----------------------------------------------------------------------===//
// Decomposition equivalence
//===----------------------------------------------------------------------===//

class DecompositionEquivalence : public ::testing::TestWithParam<unsigned> {
};

TEST_P(DecompositionEquivalence, SelingerAndNaiveAgree) {
  unsigned Controls = 2 + GetParam();
  auto Build = [&](McDecompose Mode) {
    Module M;
    IRFunction *F = M.create("mcx");
    Builder B(&F->Body);
    std::vector<Value *> Qs;
    for (unsigned I = 0; I < Controls + 1; ++I)
      Qs.push_back(B.qalloc());
    std::vector<Value *> Ctls(Qs.begin(), Qs.end() - 1);
    std::vector<Value *> Out = B.gate(GateKind::X, Ctls, {Qs.back()});
    for (Value *V : Out)
      B.qfreez(V);
    B.ret({});
    decomposeMultiControls(M, Mode);
    DiagnosticEngine Diags;
    return *flattenToCircuit(M, "mcx", Diags);
  };
  Circuit Sel = Build(McDecompose::Selinger);
  Circuit Naive = Build(McDecompose::Naive);
  unsigned W = std::max(Sel.NumQubits, Naive.NumQubits);
  ASSERT_LE(W, 10u);
  Sel.NumQubits = Naive.NumQubits = W;
  Matrix A = circuitUnitary(Sel);
  Matrix B = circuitUnitary(Naive);
  EXPECT_TRUE(unitariesEquivalent(A, B, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Property, DecompositionEquivalence,
                         ::testing::Range(0u, 4u));

//===----------------------------------------------------------------------===//
// Peepholes preserve semantics
//===----------------------------------------------------------------------===//

TEST(PeepholeProperty, PreservesBVSemantics) {
  const char *Source = R"(
classical f[N](secret: bit[N], x: bit[N]) -> bit {
    return (secret & x).xor_reduce()
}
qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
    return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
}
)";
  for (bool Peephole : {false, true}) {
    ProgramBindings B;
    B.Captures["f"]["secret"] = CaptureValue::bitsFromString("10011");
    B.Captures["kernel"]["f"] = CaptureValue::classicalFunc("f");
    SessionOptions Opts;
    if (!Peephole)
      Opts.Plan = presetPlan("no-peephole");
    CompileSession S(Source, B, Opts);
    Circuit *C = S.flatCircuit();
    ASSERT_NE(C, nullptr) << S.errorMessage();
    ShotResult Shot = simulate(*C, 9);
    std::string Out;
    for (int Bit : C->OutputBits)
      Out.push_back(Bit >= 0 && Shot.Bits[unsigned(Bit)] ? '1' : '0');
    EXPECT_EQ(Out, "10011") << "peephole=" << Peephole;
  }
}

} // namespace
